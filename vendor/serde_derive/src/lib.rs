//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! `vendor/serde` value-tree data model without `syn`/`quote`: the derive
//! input is walked as raw `proc_macro::TokenTree`s (we only need item kind,
//! names, field names/arities, and `#[serde(skip)]` markers — never field
//! types), and the trait impls are emitted as source strings re-parsed into
//! a `TokenStream`. Shapes follow real serde: named structs are maps, tuple
//! structs are sequences, newtype structs are transparent, enums are
//! externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<bool>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

/// True when the token is the given punctuation character.
fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Consumes leading attributes, returning whether any was `#[serde(skip)]`.
fn eat_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    while let Some(tt) = tokens.peek() {
        if !is_punct(tt, '#') {
            break;
        }
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(g.stream());
            }
            other => panic!("expected [...] after # in derive input, got {other:?}"),
        }
    }
    skip
}

/// Recognizes the body of a `#[serde(skip)]` attribute.
fn attr_is_serde_skip(body: TokenStream) -> bool {
    let mut it = body.into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|tt| matches!(&tt, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes a leading visibility qualifier (`pub`, `pub(crate)`, ...).
fn eat_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Consumes tokens through the next comma that is outside `<...>` nesting
/// (so types like `BTreeMap<String, u64>` read as one field type).
fn eat_to_toplevel_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tt in tokens.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

/// Parses `{ name: Type, ... }` struct or variant bodies.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let skip = eat_attrs(&mut tokens);
        eat_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => panic!("expected `:` after field {name}, got {other:?}"),
        }
        eat_to_toplevel_comma(&mut tokens);
        fields.push(Field { name, skip });
    }
    fields
}

/// Parses `( Type, ... )` tuple bodies into per-field skip flags.
fn parse_tuple_fields(stream: TokenStream) -> Vec<bool> {
    let mut tokens = stream.into_iter().peekable();
    let mut skips = Vec::new();
    while tokens.peek().is_some() {
        let skip = eat_attrs(&mut tokens);
        eat_visibility(&mut tokens);
        eat_to_toplevel_comma(&mut tokens);
        skips.push(skip);
    }
    skips
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while tokens.peek().is_some() {
        eat_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_fields(g.stream()).len();
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip any explicit discriminant, then the separating comma.
        eat_to_toplevel_comma(&mut tokens);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    eat_attrs(&mut tokens);
    eat_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(tt) if is_punct(tt, '<')) {
        panic!("vendored serde_derive does not support generic type {name}");
    }
    let body = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(parse_tuple_fields(g.stream()))
            }
            Some(tt) if is_punct(&tt, ';') => Body::UnitStruct,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for {other} {name}"),
    };
    Input { name, body }
}

fn serialize_named_fields(fields: &[Field], accessor: &str) -> String {
    let mut out = String::from("{ let mut m: Vec<(String, ::serde::Value)> = Vec::new(); ");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "m.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&{accessor}{n}))); ",
            n = f.name
        ));
    }
    out.push_str("::serde::Value::Map(m) }");
    out
}

fn deserialize_named_fields(fields: &[Field], map_var: &str, type_label: &str) -> String {
    let mut out = String::from("{ ");
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::std::default::Default::default(), ", f.name));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::deserialize(::serde::map_get({map_var}, \"{n}\")\
                 .ok_or_else(|| ::serde::Error::msg(\"missing field {type_label}.{n}\"))?)?, ",
                n = f.name
            ));
        }
    }
    out.push('}');
    out
}

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => serialize_named_fields(fields, "self."),
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
            if live.len() == 1 && skips.len() == 1 {
                format!("::serde::Serialize::serialize(&self.{})", live[0])
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()), "
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::serialize(__f0))]), "
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]), ",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = serialize_named_fields(fields, "*");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\"\
                             .to_string(), {inner})]), ",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => format!(
            "let m = v.as_map().ok_or_else(|| ::serde::Error::msg(\"expected map for \
             {name}\"))?; ::std::result::Result::Ok({name} {fields})",
            fields = deserialize_named_fields(fields, "m", name)
        ),
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::TupleStruct(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
            if live.len() == 1 && skips.len() == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
            } else {
                let mut items = Vec::new();
                let mut next_seq = 0usize;
                for skip in skips {
                    if *skip {
                        items.push("::std::default::Default::default()".to_string());
                    } else {
                        items.push(format!(
                            "::serde::Deserialize::deserialize(&s[{next_seq}])?"
                        ));
                        next_seq += 1;
                    }
                }
                format!(
                    "let s = v.as_seq().ok_or_else(|| ::serde::Error::msg(\"expected seq for \
                     {name}\"))?; if s.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::msg(\"wrong arity for {name}\")); }} \
                     ::std::result::Result::Ok({name}({items}))",
                    n = next_seq,
                    items = items.join(", ")
                )
            }
        }
        Body::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => str_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}), "
                    )),
                    VariantKind::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(__body)?)), "
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ let s = __body.as_seq().ok_or_else(|| \
                             ::serde::Error::msg(\"expected seq for {name}::{vn}\"))?; \
                             if s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::msg(\"wrong arity for {name}::{vn}\")); }} \
                             ::std::result::Result::Ok({name}::{vn}({items})) }} ",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => map_arms.push_str(&format!(
                        "\"{vn}\" => {{ let m = __body.as_map().ok_or_else(|| \
                         ::serde::Error::msg(\"expected map for {name}::{vn}\"))?; \
                         ::std::result::Result::Ok({name}::{vn} {fields}) }} ",
                        fields = deserialize_named_fields(fields, "m", &format!("{name}::{vn}"))
                    )),
                }
            }
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ {str_arms} other => \
                 ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} \
                 variant {{other}}\"))) }}, \
                 ::serde::Value::Map(m) if m.len() == 1 => {{ let (__tag, __body) = &m[0]; \
                 match __tag.as_str() {{ {map_arms} other => ::std::result::Result::Err(\
                 ::serde::Error::msg(format!(\"unknown {name} variant {{other}}\"))) }} }}, \
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"expected {name} \
                 variant tag\")) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
}

/// Derives `serde::Serialize` for plain (non-generic) structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for plain (non-generic) structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
