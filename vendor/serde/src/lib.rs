//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The real serde decouples data structures from formats through the
//! `Serializer`/`Deserializer` trait pair. This vendored subset collapses
//! that indirection into one self-describing [`Value`] tree — every
//! `#[derive(Serialize)]` produces a `Value`, and `serde_json` renders or
//! parses that tree. The API *names* (`Serialize`, `Deserialize`, the
//! derive macros, `#[serde(skip)]`) match real serde so workspace code is
//! source-compatible; the wire behaviour matches for the JSON subset the
//! workspace uses (structs, enums, sequences, maps, integers up to
//! `u128`/`i128`, floats, strings, `Option`, IP addresses).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the serde data model, flattened).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / unit / `None`.
    Null,
    /// Booleans.
    Bool(bool),
    /// Non-negative integers (everything a JSON parser reads unsigned).
    UInt(u128),
    /// Negative integers.
    Int(i128),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Sequences.
    Seq(Vec<Value>),
    /// Maps with string keys, in insertion order (struct fields, JSON
    /// objects). Non-string-keyed maps serialize as [`Value::Seq`] of
    /// `[key, value]` pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as a map, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a sequence, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in a [`Value::Map`] body by name.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, failing on shape mismatches.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::msg(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => type_err("unsigned integer", other),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i128;
                if n < 0 {
                    Value::Int(n)
                } else {
                    Value::UInt(n as u128)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::deserialize).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected {N} elements, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::msg("expected tuple sequence"))?;
                let expect = [$($idx),+].len();
                if s.len() != expect {
                    return Err(Error::msg(format!(
                        "expected {expect}-tuple, got {} elements",
                        s.len()
                    )));
                }
                Ok(($($name::deserialize(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

fn serialize_pairs<'a, K: Serialize + 'a, V: Serialize + 'a>(
    pairs: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        pairs
            .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
            .collect(),
    )
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    let entries = v.as_seq().ok_or_else(|| Error::msg("expected map pairs"))?;
    entries
        .iter()
        .map(|e| {
            let pair = e
                .as_seq()
                .ok_or_else(|| Error::msg("expected [key, value]"))?;
            if pair.len() != 2 {
                return Err(Error::msg("expected [key, value]"));
            }
            Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs(v)?.into_iter().collect())
    }
}

macro_rules! impl_display_fromstr {
    ($($t:ty => $name:literal),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Str(self.to_string())
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Str(s) => s
                        .parse()
                        .map_err(|e| Error::msg(format!("bad {}: {e}", $name))),
                    other => type_err($name, other),
                }
            }
        }
    )*};
}

impl_display_fromstr! {
    std::net::Ipv6Addr => "IPv6 address",
    std::net::Ipv4Addr => "IPv4 address",
    std::net::IpAddr => "IP address"
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(
            u128::deserialize(&u128::MAX.serialize()).unwrap(),
            u128::MAX
        );
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".serialize()).unwrap(),
            "hi".to_string()
        );
        assert!(!bool::deserialize(&false.serialize()).unwrap());
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let m: BTreeMap<u8, String> = [(1, "a".to_string()), (2, "b".to_string())].into();
        assert_eq!(BTreeMap::deserialize(&m.serialize()).unwrap(), m);
        let t = (1u8, -2i16, "x".to_string());
        assert_eq!(<(u8, i16, String)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn ip_addresses_as_strings() {
        let a: std::net::Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(a.serialize(), Value::Str("2001:db8::1".to_string()));
        assert_eq!(std::net::Ipv6Addr::deserialize(&a.serialize()).unwrap(), a);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::deserialize(&300u32.serialize()).is_err());
        assert!(u64::deserialize(&(-1i8).serialize()).is_err());
    }
}
