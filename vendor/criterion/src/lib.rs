//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Supports the subset the workspace benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and `black_box`. Each benchmark warms up
//! briefly, sizes an iteration count to a small time budget, and prints
//! the mean time per iteration — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// How batched setup cost relates to the measured routine (accepted for
/// API compatibility; this harness times only the routine either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f` repeatedly, recording total time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = Duration::from_millis(20);
        // One warmup pass also yields a first timing to size the run with.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Measures `f` over fresh inputs from `setup`; only `f` is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let budget = Duration::from_millis(20);
        let input = setup();
        let start = Instant::now();
        black_box(f(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = iters;
    }
}

/// The benchmark registry/runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the stub sizes iterations by a
    /// fixed time budget instead of a sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "{name:<50} {:>14} /iter ({} iters)",
            fmt_ns(mean_ns),
            b.iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        c.bench_function("sum_batched", |b| {
            b.iter_batched(
                || (0..100u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
