//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Renders and parses the `vendor/serde` [`Value`] tree as JSON. The
//! supported surface is what the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. Integers round-trip exactly up
//! to `u128`/`i128`; maps with non-string keys appear as arrays of
//! `[key, value]` pairs (the shape `vendor/serde` produces for them).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` keeps a decimal point or exponent so the value
                // re-parses as a float, matching real serde_json output.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            render_delimited(items.iter(), indent, depth, out, '[', ']', |item, out| {
                render(item, indent, depth + 1, out)
            })
        }
        Value::Map(entries) => render_delimited(
            entries.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, v), out| {
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out);
            },
        ),
    }
}

fn render_delimited<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (depth + 1)));
        }
        each(item, out);
    }
    if !empty {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * depth));
        }
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        other => return Err(Error::msg(format!("bad escape \\{}", other as char))),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number {text}")))
        } else if let Some(neg) = text.strip_prefix('-') {
            // Negative integers parse through u128 first so `-i128::MIN`'s
            // magnitude is representable, then negate into i128.
            let mag: u128 = neg
                .parse()
                .map_err(|_| Error::msg(format!("bad number {text}")))?;
            if mag > i128::MAX as u128 + 1 {
                return Err(Error::msg(format!("integer {text} out of range")));
            }
            Ok(Value::Int((mag as i128).wrapping_neg()))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad number {text}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":[true,null]}");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_numbers_exactly() {
        let v: Value = from_str("340282366920938463463374607431768211455").unwrap();
        assert_eq!(v, Value::UInt(u128::MAX));
        let v: Value = from_str("-42").unwrap();
        assert_eq!(v, Value::Int(-42));
        let v: Value = from_str("2.5e3").unwrap();
        assert_eq!(v, Value::Float(2500.0));
    }

    #[test]
    fn floats_round_trip_textually() {
        let s = to_string(&1.5f64).unwrap();
        assert_eq!(s, "1.5");
        let x: f64 = from_str(&s).unwrap();
        assert_eq!(x, 1.5);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\n\"quoted\"\tsnowman ☃ \u{1F600}".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
        let from_escape: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(from_escape, "\u{1F600}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
