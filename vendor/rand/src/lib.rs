//! Empty offline placeholder for `rand` (see `vendor/README.md`).
//!
//! No code in this workspace uses `rand`: all randomness flows through the
//! deterministic in-crate PRNG (`v6netsim::rng`), as DESIGN.md requires for
//! cross-version reproducibility. The dependency edge is kept so existing
//! manifests resolve offline.
