//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the *API subset it uses* of each external dependency
//! (see `vendor/README.md`). This crate maps `parking_lot`'s panic-free
//! lock API onto `std::sync`; poisoning is swallowed (`into_inner`), which
//! matches parking_lot's semantics of not poisoning on panic.

/// Guard types are std's; parking_lot's extra methods are not provided.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// See [`RwLockReadGuard`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// See [`RwLockReadGuard`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
