//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! Provides cheaply-cloneable [`Bytes`], growable [`BytesMut`], and the
//! big-endian [`Buf`]/[`BufMut`] accessor subset the NTP and ICMPv6 codecs
//! use. Semantics match the real crate for that subset: `get_*` advance the
//! cursor and panic when the buffer is too short, `put_*` append.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied here; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a new `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian read access that advances a cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one `u8`.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads one `i8`.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut raw = [0u8; 16];
        raw.copy_from_slice(&self.chunk()[..16]);
        self.advance(16);
        u128::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian append access.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_buf_traits() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xab);
        w.put_i8(-2);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_i8(), -2);
        assert_eq!(r.get_u16(), 0xbeef);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r, b"y");
    }

    #[test]
    fn bytes_constructors_agree() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::copy_from_slice(b"abc").to_vec(), b"abc");
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
