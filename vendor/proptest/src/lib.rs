//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Provides the `proptest!` macro, `any::<T>()`, range and tuple
//! strategies, `prop::collection::vec`, and `prop_map` over a deterministic
//! splitmix64 generator. Each test function derives its seed from its own
//! name, so runs are reproducible; failing inputs are reported through the
//! panic message rather than shrunk. Case count defaults to 64 and is
//! overridable via `PROPTEST_CASES`.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test-name hash and a case index.
    pub fn deterministic(name_hash: u64, case: u64) -> Self {
        TestRng {
            state: name_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash used to derive per-test seeds from test names.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values spanning a wide magnitude range.
        let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e18;
        mag * rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f64::arbitrary_value(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        char::from_u32(rng.next_u64() as u32 % 0xd800).unwrap()
    }
}

// Integer ranges draw through the type's unsigned counterpart so wrapping
// subtraction measures the span correctly for signed bounds.
macro_rules! range_strategies {
    ($($t:ty => $ut:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $ut).wrapping_sub(self.start as $ut);
                let off = (rng.next_u128() % span as u128) as $ut;
                self.start.wrapping_add(off as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as $ut).wrapping_sub(start as $ut);
                let off = if span == <$ut>::MAX {
                    rng.next_u128() as $ut
                } else {
                    (rng.next_u128() % (span as u128 + 1)) as $ut
                };
                start.wrapping_add(off as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

range_strategies! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
}

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }

        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                ($($name::arbitrary_value(rng),)+)
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds accepted by [`vec`].
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-generated values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Defines seeded property tests: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `PROPTEST_CASES` (default 64) cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cases: u64 = ::std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            for __case in 0..cases {
                let mut __rng =
                    $crate::TestRng::deterministic($crate::fnv(stringify!($name)), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic(1, 2);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10u8..20), &mut rng);
            assert!((10..20).contains(&v));
            let v = crate::Strategy::generate(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&v));
            let v = crate::Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&v));
            let v = crate::Strategy::generate(&(250u8..), &mut rng);
            assert!(v >= 250);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic(7, 3);
        let mut b = crate::TestRng::deterministic(7, 3);
        let strat = prop::collection::vec(any::<u64>(), 0..50);
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::generate(&strat, &mut a),
                crate::Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        #[test]
        fn macro_generates_and_asserts(
            x in any::<u32>(),
            len in prop::collection::vec(any::<u8>(), 1..8),
            scaled in (0u16..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(len.len() < 8, "len was {}", len.len());
            prop_assert_eq!(x, x);
            prop_assert!(scaled % 2 == 0);
        }
    }
}
