//! Offline stand-in for `crossbeam`, providing the MPMC channel subset the
//! workspace uses (see `vendor/README.md` for the vendoring rationale).
//!
//! [`channel::bounded`] gives a fixed-capacity queue with blocking-send
//! backpressure; [`channel::unbounded`] never blocks senders. Both ends are
//! cloneable (multi-producer *and* multi-consumer, like crossbeam and unlike
//! `std::sync::mpsc`), and disconnection follows crossbeam's rules: `recv`
//! fails once the queue is empty and all senders are gone; `send` fails once
//! all receivers are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] on an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`], giving the message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity (receivers still connected).
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel that holds at most `cap` messages; `send` blocks
    /// while the channel is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Creates a channel with no capacity limit; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is at capacity.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking: fails with `Full` at capacity and
        /// `Disconnected` when all receivers are gone, returning the
        /// message either way.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.inner.capacity {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_backpressure_and_order() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until one recv
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        h.join().unwrap();
        assert!(rx.recv().is_err()); // all senders dropped
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = channel::bounded(64);
        let rx2 = rx.clone();
        for i in 0..64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a: Vec<i32> = rx.iter().collect();
        let b: Vec<i32> = rx2.iter().collect();
        assert_eq!(a.len() + b.len(), 64);
    }

    #[test]
    fn send_fails_when_no_receivers() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }
}
