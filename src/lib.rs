//! # ipv6-hitlists
//!
//! A full reproduction of *IPv6 Hitlists at Scale: Be Careful What You
//! Wish For* (Rye & Levin, SIGCOMM 2023) as a Rust workspace:
//!
//! * [`addr`] (`v6addr`) — IPv6 address mechanics: prefixes, IIDs,
//!   entropy, EUI-64/MAC/OUI, IPv4 embeddings, address sets, tries.
//! * [`netsim`] (`v6netsim`) — the deterministic synthetic Internet the
//!   study runs against.
//! * [`ntp`] (`v6ntp`) — RFC 5905 NTP and the NTP Pool model.
//! * [`scan`] (`v6scan`) — ZMap6/Yarrp-style active measurement, alias
//!   detection, target generation, campaign baselines.
//! * [`geo`] (`v6geo`) — MaxMind-like and wardriving-like geolocation
//!   substrates.
//! * [`par`] (`v6par`) — the work-stealing scoped thread pool and stage
//!   DAG behind the parallel pipeline; deterministic by construction
//!   (bit-identical artifacts at any thread count, `V6_THREADS` knob).
//! * [`hitlist`] (`v6hitlist`) — the paper's contribution: passive NTP
//!   corpus collection, dataset comparison, entropy/lifetime/pattern
//!   analyses, backscanning, EUI-64 tracking, the geolocation attack,
//!   and the ethical /48 release.
//! * [`serve`] (`v6serve`) — the serving half of a hitlist service:
//!   sharded immutable snapshots, epoch-swapped publication, concurrent
//!   ingestion, a typed query API, and a deterministic load harness.
//! * [`store`] (`v6store`) — durable epoch persistence behind the
//!   serving store: an append-only checksummed delta log with compacted
//!   checkpoints, torn-tail/bit-rot classifying crash recovery, and
//!   read-only time travel to any logged epoch (`V6_DATA_DIR` knob).
//! * [`chaos`] (`v6chaos`) — seeded deterministic fault injection for
//!   the pipeline and the serving path, plus the loss-report accounting
//!   the chaos test suite pins (`V6_CHAOS_SEED` knob).
//! * [`wire`] (`v6wire`) — the service front door: a versioned,
//!   checksummed binary wire protocol over in-repo byte transports,
//!   with admission control (per-client token buckets, global
//!   load-shedding, behavioral classification of abusive clients) and
//!   a fuzz/golden-pinned codec.
//! * [`cluster`] (`v6cluster`) — multi-node cluster simulation: a
//!   consistent-hash ring (virtual nodes, replication factor R) over
//!   the /48 space, leader→follower epoch replication streaming the
//!   `v6store` delta log over the `v6wire` transport, hedged reads
//!   with degraded labeling, and node-granularity chaos (kill/restart,
//!   loss, partitions) with a byte-identical convergence invariant.
//! * [`stream`] (`v6stream`) — incremental O(Δ) analytics over the
//!   epoch stream: per-epoch operators (density, entropy profiles,
//!   EUI-64 device tracking, rotation estimation) folding `v6store`
//!   delta records with a pinned streaming ≡ batch equivalence
//!   invariant, replay-gap/duplicate detection, and explicit
//!   snapshot resync — replacing whole-corpus batch re-analysis.
//! * [`obs`] (`v6obs`) — the observability layer: a metrics registry
//!   (counters, gauges, latency histograms, deterministic exposition)
//!   and hierarchical span tracing (`V6_TRACE` knob); data-derived
//!   counters are thread-count invariant like every other artifact.
//!
//! Quick start:
//!
//! ```no_run
//! use ipv6_hitlists::hitlist::{Experiment, ExperimentConfig};
//!
//! let experiment = Experiment::run(ExperimentConfig::tiny(42));
//! println!("collected {} unique IPv6 addresses", experiment.ntp.len());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use v6addr as addr;
pub use v6chaos as chaos;
pub use v6cluster as cluster;
pub use v6geo as geo;
pub use v6hitlist as hitlist;
pub use v6netsim as netsim;
pub use v6ntp as ntp;
pub use v6obs as obs;
pub use v6par as par;
pub use v6scan as scan;
pub use v6serve as serve;
pub use v6store as store;
pub use v6stream as stream;
pub use v6wire as wire;
