//! Ethical dataset release: /48 truncation (§3 Ethics, §6).
//!
//! The paper concludes that full addresses in a client-rich hitlist are
//! themselves sensitive — lower-order bits enable tracking and
//! geolocation — and releases only /48 prefixes, as agreed with the NTP
//! Pool operators. This module produces that release artifact and checks
//! the invariant that no IID information survives.

use serde::{Deserialize, Serialize};

use v6addr::{AddrSet, Prefix};

/// The /48-truncated public release of a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Release48 {
    /// Release name.
    pub name: String,
    /// Active /48s, ascending; counts deliberately *omitted* per-prefix
    /// granularity finer than "active".
    pub prefixes: Vec<Prefix>,
    /// Total unique addresses that went in (aggregate only).
    pub source_addresses: u64,
}

impl Release48 {
    /// Builds the release from a full-address set.
    pub fn from_addr_set(name: impl Into<String>, set: &AddrSet) -> Self {
        let prefixes = set.aggregate(48).into_iter().map(|(p, _)| p).collect();
        Release48 {
            name: name.into(),
            prefixes,
            source_addresses: set.len() as u64,
        }
    }

    /// Number of released prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True when the release is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Renders the release as the published text format (one prefix per
    /// line, with a provenance header).
    pub fn render(&self) -> String {
        let mut out = format!(
            "# {} — active /48 prefixes (addresses truncated for privacy)\n# source addresses: {}\n",
            self.name, self.source_addresses
        );
        for p in &self.prefixes {
            out.push_str(&p.to_string());
            out.push('\n');
        }
        out
    }

    /// The release invariant: every entry is exactly a /48 with zero
    /// host bits — no lower-order address information escapes.
    pub fn verify_privacy_invariant(&self) -> bool {
        self.prefixes
            .iter()
            .all(|p| p.len() == 48 && p.bits() & !Prefix::mask(48) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_addrs(addrs.iter().map(|s| s.parse::<Ipv6Addr>().unwrap()))
    }

    #[test]
    fn truncates_and_dedups() {
        let s = set(&[
            "2a00:1:2:3::dead:beef",
            "2a00:1:2:4::1",
            "2a00:1:2:3:1234:5678:9abc:def0",
        ]);
        let r = Release48::from_addr_set("NTP Pool", &s);
        assert_eq!(r.len(), 1); // all three share 2a00:1:2::/48
        assert_eq!(r.prefixes[0].to_string(), "2a00:1:2::/48");
        assert_eq!(r.source_addresses, 3);
        assert!(r.verify_privacy_invariant());
    }

    #[test]
    fn render_contains_no_full_addresses() {
        let s = set(&["2a00:1:2:3::dead:beef", "2a00:9:8:7::42"]);
        let r = Release48::from_addr_set("test", &s);
        let text = r.render();
        assert!(!text.contains("dead:beef"));
        assert!(!text.contains("::42"));
        assert!(text.contains("2a00:1:2::/48"));
        assert!(text.contains("2a00:9:8::/48"));
    }

    #[test]
    fn prefixes_sorted_ascending() {
        let s = set(&["2a00:9::1", "2a00:1::1", "2a00:5::1"]);
        let r = Release48::from_addr_set("test", &s);
        for w in r.prefixes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn empty_release() {
        let r = Release48::from_addr_set("empty", &AddrSet::new());
        assert!(r.is_empty());
        assert!(r.verify_privacy_invariant());
    }
}
