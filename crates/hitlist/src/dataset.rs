//! Address datasets: the unit every analysis operates on.
//!
//! A [`Dataset`] is a named bag of timestamped address observations —
//! the NTP corpus, the IPv6 Hitlist emulation, the CAIDA emulation — with
//! the aggregations Table 1 and Figures 1–6 need: unique addresses,
//! per-address first/last/count, distinct ASNs and /48s, densities and
//! pairwise intersections.

use std::collections::BTreeSet;
use std::net::Ipv6Addr;

use v6addr::{AddrSet, Iid};
use v6netsim::{Asn, SimTime, World};

/// One timestamped observation of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The observed address.
    pub addr: Ipv6Addr,
    /// When it was observed.
    pub t: SimTime,
}

/// Per-address aggregate over all observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRecord {
    /// The address.
    pub addr: Ipv6Addr,
    /// First time observed.
    pub first: SimTime,
    /// Last time observed.
    pub last: SimTime,
    /// Number of observations.
    pub count: u64,
}

impl AddrRecord {
    /// Observation span ("lifetime"): 0 when seen only once (Fig. 2a).
    pub fn lifetime(&self) -> v6netsim::SimDuration {
        self.last.since(self.first)
    }

    /// The address's IID.
    pub fn iid(&self) -> Iid {
        Iid::from_addr(self.addr)
    }
}

/// A named collection of address observations.
///
/// ```
/// use v6hitlist::{Dataset, Observation};
/// use v6netsim::SimTime;
///
/// let d = Dataset::from_observations(
///     "demo",
///     [(100u64, "2001:db8::1"), (500, "2001:db8::1"), (100, "2001:db8::2")]
///         .map(|(t, a)| Observation { addr: a.parse().unwrap(), t: SimTime(t) }),
/// );
/// assert_eq!(d.len(), 2);
/// let r = d.record("2001:db8::1".parse().unwrap()).unwrap();
/// assert_eq!(r.count, 2);
/// assert_eq!(r.lifetime().as_secs(), 400);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name ("NTP Pool", "IPv6 Hitlist", …).
    pub name: String,
    /// Per-address aggregates, sorted by address.
    records: Vec<AddrRecord>,
    /// Total raw observations folded in.
    observations: u64,
}

impl Dataset {
    /// Builds a dataset from raw observations (any order, duplicates fine).
    pub fn from_observations<I>(name: impl Into<String>, obs: I) -> Self
    where
        I: IntoIterator<Item = Observation>,
    {
        Self::from_observations_with_threads(name, obs, 1)
    }

    /// [`Dataset::from_observations`] with the dedup/sort pass sharded
    /// across `threads` workers (in-place chunk sorts + one tournament
    /// move-merge; nothing is cloned, and small inputs sort inline via
    /// the adaptive cutoff).
    ///
    /// Sorting `(addr, t)` integer pairs has no distinguishable
    /// duplicates, so the parallel merge sort and `sort_unstable`
    /// produce the same sequence — records are bit-identical at any
    /// thread count.
    pub fn from_observations_with_threads<I>(
        name: impl Into<String>,
        obs: I,
        threads: usize,
    ) -> Self
    where
        I: IntoIterator<Item = Observation>,
    {
        let mut raw: Vec<(u128, u64)> = obs
            .into_iter()
            .map(|o| (u128::from(o.addr), o.t.as_secs()))
            .collect();
        v6par::par_radix_sort(threads, &mut raw, |&(bits, t)| (bits, t));
        let observations = raw.len() as u64;
        let mut records: Vec<AddrRecord> = Vec::new();
        for (bits, t) in raw {
            match records.last_mut() {
                Some(r) if u128::from(r.addr) == bits => {
                    r.count += 1;
                    // raw is sorted by (addr, t): t is non-decreasing.
                    r.last = SimTime(t);
                }
                _ => records.push(AddrRecord {
                    addr: Ipv6Addr::from(bits),
                    first: SimTime(t),
                    last: SimTime(t),
                    count: 1,
                }),
            }
        }
        Dataset {
            name: name.into(),
            records,
            observations,
        }
    }

    /// Builds from bare addresses (each seen once at `t`).
    pub fn from_addresses<I>(name: impl Into<String>, addrs: I, t: SimTime) -> Self
    where
        I: IntoIterator<Item = Ipv6Addr>,
    {
        Self::from_observations(name, addrs.into_iter().map(|addr| Observation { addr, t }))
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of unique addresses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset has no addresses.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total raw observations.
    pub fn observation_count(&self) -> u64 {
        self.observations
    }

    /// Per-address records, sorted by address.
    pub fn records(&self) -> &[AddrRecord] {
        &self.records
    }

    /// The unique addresses as an [`AddrSet`].
    pub fn addr_set(&self) -> AddrSet {
        AddrSet::from_bits(self.records.iter().map(|r| u128::from(r.addr)).collect())
    }

    /// Membership test.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.records
            .binary_search_by_key(&u128::from(addr), |r| u128::from(r.addr))
            .is_ok()
    }

    /// The record for one address.
    pub fn record(&self, addr: Ipv6Addr) -> Option<&AddrRecord> {
        self.records
            .binary_search_by_key(&u128::from(addr), |r| u128::from(r.addr))
            .ok()
            .map(|i| &self.records[i])
    }

    /// Distinct origin ASNs (Table 1's "ASNs" column).
    pub fn distinct_asns(&self, world: &World) -> BTreeSet<Asn> {
        self.records
            .iter()
            .filter_map(|r| world.asn_of(r.addr))
            .collect()
    }

    /// Distinct /48s (Table 1's "/48s" column).
    pub fn distinct_48s(&self) -> u64 {
        self.addr_set().distinct_prefixes(48)
    }

    /// Mean addresses per /48 (Table 1's density column).
    pub fn density_per_48(&self) -> f64 {
        self.addr_set().density(48)
    }

    /// Unique addresses shared with another dataset.
    pub fn common_addresses(&self, other: &Dataset) -> u64 {
        self.addr_set().intersection_count(&other.addr_set())
    }

    /// ASNs shared with another dataset.
    pub fn common_asns(&self, other: &Dataset, world: &World) -> u64 {
        self.distinct_asns(world)
            .intersection(&other.distinct_asns(world))
            .count() as u64
    }

    /// /48s shared with another dataset.
    pub fn common_48s(&self, other: &Dataset) -> u64 {
        let a = self.addr_set().aggregate(48);
        let b = other.addr_set().aggregate(48);
        let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// A time-slice: addresses whose observations intersect
    /// `[from, to)`, with counts restricted to that window's endpoints.
    pub fn slice(&self, name: impl Into<String>, from: SimTime, to: SimTime) -> Dataset {
        let records: Vec<AddrRecord> = self
            .records
            .iter()
            .filter(|r| r.first < to && r.last >= from)
            .copied()
            .collect();
        let observations = records.iter().map(|r| r.count).sum();
        Dataset {
            name: name.into(),
            records,
            observations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::{SimDuration, WorldConfig};

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn obs(addr: &str, t: u64) -> Observation {
        Observation {
            addr: a(addr),
            t: SimTime(t),
        }
    }

    #[test]
    fn aggregates_per_address() {
        let d = Dataset::from_observations(
            "test",
            vec![
                obs("2a00:1::1", 100),
                obs("2a00:1::2", 50),
                obs("2a00:1::1", 400),
                obs("2a00:1::1", 200),
            ],
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d.observation_count(), 4);
        let r = d.record(a("2a00:1::1")).unwrap();
        assert_eq!(r.count, 3);
        assert_eq!(r.first, SimTime(100));
        assert_eq!(r.last, SimTime(400));
        assert_eq!(r.lifetime(), SimDuration(300));
        let once = d.record(a("2a00:1::2")).unwrap();
        assert_eq!(once.lifetime(), SimDuration::ZERO);
    }

    #[test]
    fn contains_and_missing() {
        let d = Dataset::from_observations("t", vec![obs("2a00:1::1", 0)]);
        assert!(d.contains(a("2a00:1::1")));
        assert!(!d.contains(a("2a00:1::2")));
        assert!(d.record(a("2a00:9::9")).is_none());
    }

    #[test]
    fn distinct_48s_and_density() {
        let d = Dataset::from_observations(
            "t",
            vec![
                obs("2a00:1:0:1::1", 0),
                obs("2a00:1:0:1::2", 0),
                obs("2a00:1:1::1", 0),
                obs("2a00:1:1::1", 5),
            ],
        );
        assert_eq!(d.distinct_48s(), 2);
        assert!((d.density_per_48() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn common_counters() {
        let x = Dataset::from_observations(
            "x",
            vec![
                obs("2a00:1::1", 0),
                obs("2a00:2::1", 0),
                obs("2a00:1:0:1::9", 0),
            ],
        );
        let y = Dataset::from_observations("y", vec![obs("2a00:1::1", 9), obs("2a00:3::1", 9)]);
        assert_eq!(x.common_addresses(&y), 1);
        assert_eq!(x.common_48s(&y), 1);
    }

    #[test]
    fn asn_annotation_against_world() {
        let w = World::build(WorldConfig::tiny(), 1);
        let a0 = w.ases[0].router48().offset(1);
        let a1 = w.ases[1].router48().offset(1);
        let d = Dataset::from_addresses("t", vec![a0, a1, a0], SimTime(0));
        let asns = d.distinct_asns(&w);
        assert_eq!(asns.len(), 2);
        assert!(asns.contains(&w.ases[0].info.asn));
    }

    #[test]
    fn time_slice() {
        let d = Dataset::from_observations(
            "t",
            vec![
                obs("2a00:1::1", 100),
                obs("2a00:1::2", 900),
                obs("2a00:1::3", 500),
            ],
        );
        let s = d.slice("s", SimTime(400), SimTime(600));
        assert_eq!(s.len(), 1);
        assert!(s.contains(a("2a00:1::3")));
        // A record spanning the window edge is included.
        let d2 =
            Dataset::from_observations("t", vec![obs("2a00:1::1", 100), obs("2a00:1::1", 700)]);
        assert_eq!(d2.slice("s", SimTime(400), SimTime(600)).len(), 1);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_observations("e", Vec::new());
        assert!(d.is_empty());
        assert_eq!(d.distinct_48s(), 0);
        assert_eq!(d.density_per_48(), 0.0);
    }
}
