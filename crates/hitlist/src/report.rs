//! Paper-vs-measured experiment records and rendering.
//!
//! The bench harness regenerates every table and figure; each run emits
//! [`ExperimentRecord`]s comparing the paper's published value with the
//! reproduction's measurement, which `run_all` assembles into
//! EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id ("Table 1", "Figure 2a", "§5.2", …).
    pub experiment: String,
    /// What is being compared.
    pub metric: String,
    /// The paper's published value, as text (may be a ratio or range).
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the qualitative shape holds (who wins / direction /
    /// order of magnitude), judged by the generating harness.
    pub shape_holds: bool,
    /// Free-form note (scale factors, caveats).
    pub note: String,
}

impl ExperimentRecord {
    /// Convenience constructor.
    pub fn new(
        experiment: impl Into<String>,
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        shape_holds: bool,
        note: impl Into<String>,
    ) -> Self {
        ExperimentRecord {
            experiment: experiment.into(),
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
            shape_holds,
            note: note.into(),
        }
    }
}

/// Renders records as a Markdown table grouped by experiment.
pub fn render_markdown(records: &[ExperimentRecord]) -> String {
    let mut out = String::from(
        "| Experiment | Metric | Paper | Measured | Shape holds | Note |\n|---|---|---|---|---|---|\n",
    );
    for r in records {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.experiment,
            r.metric,
            r.paper,
            r.measured,
            if r.shape_holds { "yes" } else { "NO" },
            r.note
        ));
    }
    out
}

/// Renders a plottable series as aligned text (x, y per line).
pub fn render_series(title: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n");
    for (x, y) in series {
        out.push_str(&format!("{x:10.4} {y:8.4}\n"));
    }
    out
}

/// Renders one or more CDF series as an ASCII plot (terminal "figure").
///
/// Each series is drawn with its own glyph; x spans `[lo, hi]`, y spans
/// `[0, 1]`. Good enough to eyeball the orderings the paper's figures
/// show without leaving the terminal.
pub fn ascii_cdf_plot(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.max(16);
    let height = height.max(6);
    let (lo, hi) = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(x, _)| x))
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), x| {
            (a.min(x), b.max(x))
        });
    if !lo.is_finite() || hi <= lo {
        return format!("# {title}\n(no data)\n");
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts {
            let col = (((x - lo) / (hi - lo)) * (width - 1) as f64).round() as usize;
            let row = ((1.0 - y.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }
    let mut out = format!("# {title}\n");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.0"
        } else if i == height - 1 {
            "0.0"
        } else {
            "   "
        };
        out.push_str(label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "   +{}\n    {:<10.3}{:>width$.3}\n",
        "-".repeat(width),
        lo,
        hi,
        width = width - 10
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], name));
    }
    out
}

/// Formats a count with thousands separators (readability in reports).
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let recs = vec![ExperimentRecord::new(
            "Table 1",
            "NTP / Hitlist address ratio",
            "370x",
            "212x",
            true,
            "scaled world",
        )];
        let md = render_markdown(&recs);
        assert!(md.contains("| Table 1 |"));
        assert!(md.contains("| yes |"));
    }

    #[test]
    fn failed_shape_is_loud() {
        let recs = vec![ExperimentRecord::new("X", "m", "1", "2", false, "")];
        assert!(render_markdown(&recs).contains("| NO |"));
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(7_914_066_999), "7,914,066,999");
    }

    #[test]
    fn ascii_plot_shape() {
        let s1: Vec<(f64, f64)> = (0..=10)
            .map(|i| (i as f64 / 10.0, i as f64 / 10.0))
            .collect();
        let s2: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64 / 10.0, 1.0)).collect();
        let plot = ascii_cdf_plot("demo", &[("diag", s1), ("flat", s2)], 40, 10);
        assert!(plot.contains("# demo"));
        assert!(plot.contains("1.0|"));
        assert!(plot.contains("* diag"));
        assert!(plot.contains("o flat"));
        // Empty input degrades gracefully.
        assert!(ascii_cdf_plot("x", &[], 40, 10).contains("no data"));
    }

    #[test]
    fn series_rendering() {
        let s = render_series("cdf", &[(0.0, 0.0), (1.0, 1.0)]);
        assert!(s.starts_with("# cdf\n"));
        assert_eq!(s.lines().count(), 3);
    }
}
