//! End-to-end experiment orchestration.
//!
//! One [`ExperimentConfig`] fixes the world, the passive collection, both
//! active baselines and every analysis threshold; [`Experiment::run`]
//! executes the whole study — the programmatic equivalent of the paper's
//! seven months plus the backscan week — and returns everything the bench
//! harness needs to regenerate each table and figure.

use serde::{Deserialize, Serialize};

use v6geo::WardriveDb;
use v6netsim::{SimTime, World, WorldConfig};
use v6scan::{AliasList, CaidaCampaignConfig, HitlistCampaignConfig};

use crate::analysis::backscan::{
    alias_findings, backscan, AliasFindings, BackscanConfig, BackscanResult,
};
use crate::analysis::geoloc::{geolocate, GeolocConfig, GeolocationReport};
use crate::analysis::patterns::Ipv4Acceptance;
use crate::analysis::tracking::{analyze as analyze_tracking, TrackingAnalysis};
use crate::collect::active::{collect_caida, collect_hitlist, ActiveDataset};
use crate::collect::ntp_passive::NtpCorpus;
use crate::dataset::Dataset;

/// Everything that parameterizes one full study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// World scale.
    pub world: WorldConfig,
    /// Master seed.
    pub seed: u64,
    /// Hitlist-campaign knobs.
    #[serde(skip)]
    pub hitlist: HitlistCampaignConfig,
    /// CAIDA-campaign knobs.
    #[serde(skip)]
    pub caida: CaidaCampaignConfig,
    /// Backscan knobs.
    pub backscan: BackscanConfig,
    /// IPv4-mapped acceptance thresholds.
    pub ipv4_accept: Ipv4Acceptance,
    /// §5.2 transition threshold ("high" when > this; paper: 10).
    pub transition_threshold: u64,
    /// Geolocation-attack knobs.
    pub geoloc: GeolocConfig,
}

impl ExperimentConfig {
    /// A fast configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        ExperimentConfig {
            world: with_standard_outage(WorldConfig::tiny()),
            seed,
            hitlist: HitlistCampaignConfig {
                weeks: 2,
                ..Default::default()
            },
            caida: CaidaCampaignConfig {
                stride: 512,
                ..Default::default()
            },
            backscan: BackscanConfig::default(),
            ipv4_accept: Ipv4Acceptance {
                min_instances: 5,
                ..Default::default()
            },
            transition_threshold: 10,
            geoloc: GeolocConfig {
                // Tiny worlds have only a dozen German homes; the
                // threshold scales with the world.
                min_pairs: 4,
                ..Default::default()
            },
        }
    }

    /// The configuration the bench harness uses to regenerate the paper.
    pub fn paper(seed: u64) -> Self {
        ExperimentConfig {
            world: with_standard_outage(WorldConfig::paper_scale()),
            seed,
            hitlist: HitlistCampaignConfig {
                weeks: 28, // Feb 16 – Aug 29 in the paper
                ..Default::default()
            },
            caida: CaidaCampaignConfig::default(),
            backscan: BackscanConfig::default(),
            ipv4_accept: Ipv4Acceptance::default(),
            transition_threshold: 10,
            geoloc: GeolocConfig::default(),
        }
    }
}

/// Injects the standard ground-truth event every preset carries: a
/// three-day ChinaNet outage in late May (study day 120), which the
/// outage-detection extension must find.
fn with_standard_outage(mut cfg: WorldConfig) -> WorldConfig {
    cfg.outages.push(v6netsim::config::OutageSpec {
        as_name: "ChinaNet".into(),
        start_day: 120,
        duration_days: 3,
    });
    cfg
}

/// All artifacts of one full study run.
pub struct Experiment {
    /// The configuration used.
    pub config: ExperimentConfig,
    /// The synthetic Internet.
    pub world: World,
    /// The passive NTP corpus (raw observations).
    pub corpus: NtpCorpus,
    /// The NTP corpus as a dataset.
    pub ntp: Dataset,
    /// The emulated IPv6 Hitlist.
    pub hitlist: ActiveDataset,
    /// The emulated CAIDA routed-/48 dataset.
    pub caida: ActiveDataset,
    /// Backscan results (§4.2 / Fig. 3).
    pub backscan: BackscanResult,
    /// Alias cross-references (§4.2).
    pub alias_findings: AliasFindings,
    /// EUI-64 tracking analysis (§5.1–5.2, Table 2, Fig. 6–7).
    pub tracking: TrackingAnalysis,
    /// Geolocation attack (§5.3).
    pub geolocation: GeolocationReport,
    /// The wardriving DB the attack used.
    pub wardrive: WardriveDb,
}

impl Experiment {
    /// Runs the entire study.
    pub fn run(config: ExperimentConfig) -> Experiment {
        let world = World::build(config.world.clone(), config.seed);

        // Passive collection over the study window.
        let corpus = NtpCorpus::collect_study(&world);
        let ntp = corpus.dataset();

        // Active baselines.
        let hitlist = collect_hitlist(&world, 0, &config.hitlist);
        let caida = collect_caida(&world, 1, &config.caida);

        // Backscan + alias cross-reference.
        let backscan_result = backscan(&world, &config.backscan);
        let hl_aliases = AliasList::from_prefixes(hitlist.campaign.aliased.iter().copied());
        let findings = alias_findings(
            &world,
            &backscan_result,
            &hl_aliases,
            &ntp.addr_set(),
            &hitlist.dataset.addr_set(),
        );

        // Tracking.
        let tracking = analyze_tracking(&world, &corpus, config.transition_threshold);

        // Geolocation attack on all leaked MACs.
        let wardrive = WardriveDb::collect(&world);
        let leaked: Vec<v6addr::Mac> = tracking.tracks.iter().map(|t| t.mac).collect();
        let geolocation = geolocate(&leaked, &wardrive, &config.geoloc);

        Experiment {
            config,
            world,
            corpus,
            ntp,
            hitlist,
            caida,
            backscan: backscan_result,
            alias_findings: findings,
            tracking,
            geolocation,
            wardrive,
        }
    }

    /// The single-day slice of the corpus used by Figures 4b and 5
    /// (the paper picked 1 July 2022 ≈ study day 157).
    pub fn one_day_slice(&self, day: u64) -> Dataset {
        let from = SimTime(day * 86_400);
        let to = SimTime((day + 1) * 86_400);
        self.ntp.slice(format!("NTP Pool (day {day})"), from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_runs_and_is_coherent() {
        let e = Experiment::run(ExperimentConfig::tiny(2024));
        // The three datasets exist and have the paper's size ordering.
        assert!(e.ntp.len() > e.hitlist.dataset.len());
        assert!(!e.caida.dataset.is_empty());
        // Backscan probed someone.
        assert!(e.backscan.clients_probed > 0);
        // Tracking found EUI-64 devices.
        assert!(e.tracking.stats.unique_macs > 0);
        // The one-day slice is a strict subset.
        let day = e.one_day_slice(100);
        assert!(day.len() < e.ntp.len());
    }
}
