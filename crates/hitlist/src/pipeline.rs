//! End-to-end experiment orchestration.
//!
//! One [`ExperimentConfig`] fixes the world, the passive collection, both
//! active baselines and every analysis threshold; [`Experiment::run`]
//! executes the whole study — the programmatic equivalent of the paper's
//! seven months plus the backscan week — and returns everything the bench
//! harness needs to regenerate each table and figure.

use serde::{Deserialize, Serialize};

use v6chaos::{Chaos, DagInjector, LossReport};
use v6geo::WardriveDb;
use v6netsim::{SimTime, World, WorldConfig};
use v6par::{StageFailure, StageTiming};
use v6scan::{AliasList, CaidaCampaignConfig, HitlistCampaignConfig};

use crate::analysis::backscan::{
    alias_findings, backscan, AliasFindings, BackscanConfig, BackscanResult,
};
use crate::analysis::geoloc::{geolocate, GeolocConfig, GeolocationReport};
use crate::analysis::patterns::Ipv4Acceptance;
use crate::analysis::tracking::{analyze as analyze_tracking, TrackingAnalysis};
use crate::collect::active::{
    collect_caida_with_threads, collect_hitlist_with_threads, ActiveDataset,
};
use crate::collect::ntp_passive::NtpCorpus;
use crate::dataset::Dataset;

/// Everything that parameterizes one full study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// World scale.
    pub world: WorldConfig,
    /// Master seed.
    pub seed: u64,
    /// Hitlist-campaign knobs.
    pub hitlist: HitlistCampaignConfig,
    /// CAIDA-campaign knobs.
    pub caida: CaidaCampaignConfig,
    /// Backscan knobs.
    pub backscan: BackscanConfig,
    /// IPv4-mapped acceptance thresholds.
    pub ipv4_accept: Ipv4Acceptance,
    /// §5.2 transition threshold ("high" when > this; paper: 10).
    pub transition_threshold: u64,
    /// Geolocation-attack knobs.
    pub geoloc: GeolocConfig,
}

impl ExperimentConfig {
    /// A fast configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        ExperimentConfig {
            world: with_standard_outage(WorldConfig::tiny()),
            seed,
            hitlist: HitlistCampaignConfig {
                weeks: 2,
                ..Default::default()
            },
            caida: CaidaCampaignConfig {
                stride: 512,
                ..Default::default()
            },
            backscan: BackscanConfig::default(),
            ipv4_accept: Ipv4Acceptance {
                min_instances: 5,
                ..Default::default()
            },
            transition_threshold: 10,
            geoloc: GeolocConfig {
                // Tiny worlds have only a dozen German homes; the
                // threshold scales with the world.
                min_pairs: 4,
                ..Default::default()
            },
        }
    }

    /// The configuration the bench harness uses to regenerate the paper.
    pub fn paper(seed: u64) -> Self {
        ExperimentConfig {
            world: with_standard_outage(WorldConfig::paper_scale()),
            seed,
            hitlist: HitlistCampaignConfig {
                weeks: 28, // Feb 16 – Aug 29 in the paper
                ..Default::default()
            },
            caida: CaidaCampaignConfig::default(),
            backscan: BackscanConfig::default(),
            ipv4_accept: Ipv4Acceptance::default(),
            transition_threshold: 10,
            geoloc: GeolocConfig::default(),
        }
    }
}

/// Injects the standard ground-truth event every preset carries: a
/// three-day ChinaNet outage in late May (study day 120), which the
/// outage-detection extension must find.
fn with_standard_outage(mut cfg: WorldConfig) -> WorldConfig {
    cfg.outages.push(v6netsim::config::OutageSpec {
        as_name: "ChinaNet".into(),
        start_day: 120,
        duration_days: 3,
    });
    cfg
}

/// All artifacts of one full study run.
pub struct Experiment {
    /// The configuration used.
    pub config: ExperimentConfig,
    /// The synthetic Internet.
    pub world: World,
    /// The passive NTP corpus (raw observations).
    pub corpus: NtpCorpus,
    /// The NTP corpus as a dataset.
    pub ntp: Dataset,
    /// The emulated IPv6 Hitlist.
    pub hitlist: ActiveDataset,
    /// The emulated CAIDA routed-/48 dataset.
    pub caida: ActiveDataset,
    /// Backscan results (§4.2 / Fig. 3).
    pub backscan: BackscanResult,
    /// Alias cross-references (§4.2).
    pub alias_findings: AliasFindings,
    /// EUI-64 tracking analysis (§5.1–5.2, Table 2, Fig. 6–7).
    pub tracking: TrackingAnalysis,
    /// Geolocation attack (§5.3).
    pub geolocation: GeolocationReport,
    /// The wardriving DB the attack used.
    pub wardrive: WardriveDb,
    /// Per-stage wall-clock times of this run ("world" first, then the
    /// DAG stages in insertion order).
    pub timings: Vec<StageTiming>,
}

impl Experiment {
    /// Runs the entire study at the ambient thread count
    /// ([`v6par::threads`], i.e. `V6_THREADS` or the machine's
    /// parallelism).
    pub fn run(config: ExperimentConfig) -> Experiment {
        Self::run_with_threads(config, v6par::threads())
    }

    /// Runs the entire study with up to `threads` workers.
    ///
    /// The stages form an explicit dependency DAG (executed by
    /// [`v6par::Dag`]) instead of straight-line code:
    ///
    /// ```text
    /// corpus ──► ntp ─────────┐
    ///    │                    ▼
    ///    └─► tracking    alias_findings ◄── backscan
    ///            │            ▲
    ///            ▼            │
    ///       geolocation    hitlist        caida
    ///            ▲
    ///        wardrive
    /// ```
    ///
    /// Independent stages run concurrently and the hot stages shard
    /// internally; every artifact is bit-identical at any thread count.
    pub fn run_with_threads(config: ExperimentConfig, threads: usize) -> Experiment {
        let started = std::time::Instant::now();
        let world = {
            let _span = v6obs::span("world");
            World::build(config.world.clone(), config.seed)
        };
        let world_wall = started.elapsed();

        let mut out = stage_dag(&config, &world, threads, None).run(threads);
        let mut timings = vec![StageTiming {
            name: "world",
            wall: world_wall,
        }];
        timings.extend(out.timings.iter().copied());

        Experiment {
            corpus: out.take("corpus"),
            ntp: out.take("ntp"),
            hitlist: out.take("hitlist"),
            caida: out.take("caida"),
            backscan: out.take("backscan"),
            alias_findings: out.take("alias_findings"),
            tracking: out.take("tracking"),
            geolocation: out.take("geolocation"),
            wardrive: out.take("wardrive"),
            config,
            world,
            timings,
        }
    }

    /// Runs the study under fault injection (the tentpole entry point of
    /// the chaos suite).
    ///
    /// Every DAG stage attempt consults its `dag.stage.<name>` chaos
    /// site through a [`DagInjector`], with a retry policy sized to the
    /// plan's [`Chaos::retry_budget`]; the passive-collection stage runs
    /// [`NtpCorpus::collect_study_chaos`], so per-day `collect.day.<d>`
    /// faults are skipped and backfilled inside the stage.
    ///
    /// The contract (pinned by `tests/parallel_equivalence.rs`):
    ///
    /// * all faults transient ⇒ [`ChaosRun::experiment`] is `Some`, the
    ///   loss report is empty, and [`ChaosRun::digest`] equals the
    ///   fault-free [`Experiment::artifact_digest`] at any thread count;
    /// * any permanent fault ⇒ the loss report names exactly the lost
    ///   stages (plus their cascaded dependents) and lost collection
    ///   days — never a silently truncated artifact.
    pub fn run_chaos(config: ExperimentConfig, threads: usize, chaos: &dyn Chaos) -> ChaosRun {
        let started = std::time::Instant::now();
        let world = {
            let _span = v6obs::span("world");
            World::build(config.world.clone(), config.seed)
        };
        let world_wall = started.elapsed();

        let policy = v6par::RetryPolicy::retries(chaos.retry_budget());
        let injector = DagInjector::new(chaos);
        let mut run =
            stage_dag(&config, &world, threads, Some(chaos)).run_with(threads, &policy, &injector);

        let mut timings = vec![StageTiming {
            name: "world",
            wall: world_wall,
        }];
        timings.extend(run.outputs.timings.iter().copied());

        let mut loss = LossReport::new();
        for f in &run.failures {
            let reason = if f.attempts == 0 {
                f.reason.to_string()
            } else {
                format!("{} after {} attempt(s)", f.reason, f.attempts)
            };
            loss.record(DagInjector::stage_site(f.name), reason);
        }

        let experiment = if run.is_complete() {
            let out = &mut run.outputs;
            Some(Experiment {
                corpus: out.take("corpus"),
                ntp: out.take("ntp"),
                hitlist: out.take("hitlist"),
                caida: out.take("caida"),
                backscan: out.take("backscan"),
                alias_findings: out.take("alias_findings"),
                tracking: out.take("tracking"),
                geolocation: out.take("geolocation"),
                wardrive: out.take("wardrive"),
                config,
                world,
                timings: timings.clone(),
            })
        } else {
            None
        };

        // Account the collection days the corpus stage had to drop —
        // whether or not the rest of the pipeline completed.
        let lost_days = match &experiment {
            Some(e) => e.corpus.lost_days.clone(),
            None => run
                .outputs
                .try_take::<NtpCorpus>("corpus")
                .map(|c| c.lost_days)
                .unwrap_or_default(),
        };
        for &d in &lost_days {
            loss.record(
                NtpCorpus::day_site(d),
                "permanent collection fault; day skipped after backfill",
            );
        }

        // Definitive loss accounting for this run: `chaos.lost_units` is
        // bumped exactly once per lost unit, here (not inside LossReport,
        // whose merge/rebuild paths would double-count).
        v6obs::counter("chaos.lost_units").add(loss.len() as u64);

        ChaosRun {
            experiment,
            loss,
            failures: run.failures,
            timings,
        }
    }
    /// The single-day slice of the corpus used by Figures 4b and 5
    /// (the paper picked 1 July 2022 ≈ study day 157).
    pub fn one_day_slice(&self, day: u64) -> Dataset {
        let from = SimTime(day * 86_400);
        let to = SimTime((day + 1) * 86_400);
        self.ntp.slice(format!("NTP Pool (day {day})"), from, to)
    }

    /// An order-sensitive FNV-1a digest over every major artifact of the
    /// run: corpus observations, dataset records, campaign discoveries
    /// and alias lists, backscan counts, tracking tracks and geolocation
    /// output.
    ///
    /// Two runs of the same config produce the same digest **at any
    /// thread count** — this is the determinism contract the parallel
    /// pipeline is held to (see `tests/parallel_equivalence.rs` and the
    /// `pipeline` bench).
    pub fn artifact_digest(&self) -> u64 {
        let mut d = Fnv::new();
        for o in &self.corpus.observations {
            d.u128(o.addr);
            d.u64(o.t as u64);
            d.u64(o.as_index as u64);
            d.u64(o.server as u64);
        }
        for &n in &self.corpus.served_per_vp {
            d.u64(n);
        }
        d.u64(self.corpus.protocol_failures);
        for ds in [&self.ntp, &self.hitlist.dataset, &self.caida.dataset] {
            d.u64(ds.observation_count());
            for r in ds.records() {
                d.u128(u128::from(r.addr));
                d.u64(r.first.as_secs());
                d.u64(r.last.as_secs());
                d.u64(r.count);
            }
        }
        for c in [&self.hitlist.campaign, &self.caida.campaign] {
            d.u64(c.probes_sent);
            for disc in &c.discoveries {
                d.u128(u128::from(disc.addr));
                d.u64(disc.t.as_secs());
            }
            for p in &c.aliased {
                d.u128(p.bits());
                d.u64(p.len() as u64);
            }
            for &n in &c.weekly_new {
                d.u64(n);
            }
        }
        let b = &self.backscan;
        for n in [
            b.clients_probed,
            b.clients_responsive,
            b.random_probed,
            b.random_responsive,
        ] {
            d.u64(n);
        }
        for p in &b.aliased_64s {
            d.u128(p.bits());
        }
        let f = &self.alias_findings;
        for n in [
            f.known_to_hitlist,
            f.new_aliased,
            f.ntp_clients_in_aliased,
            f.client_ases,
            f.hitlist_clients_in_aliased,
        ] {
            d.u64(n);
        }
        let t = &self.tracking;
        d.u64(t.stats.corpus_addresses);
        d.u64(t.stats.eui64_addresses);
        d.u64(t.stats.unique_macs);
        d.u64(t.multi_prefix_macs);
        for track in &t.tracks {
            d.u64(track.mac.as_u64());
            d.u64(track.first);
            d.u64(track.last);
            d.u64(track.transitions);
            for &p in &track.prefixes64 {
                d.u128(p);
            }
        }
        let g = &self.geolocation;
        d.u64(g.input_macs);
        for o in &g.offsets {
            d.u64(u64::from_be_bytes([
                0, 0, 0, 0, 0, o.oui.0[0], o.oui.0[1], o.oui.0[2],
            ]));
            d.u64(o.offset as u64);
            d.u64(o.votes);
            d.u64(o.pairs);
        }
        for m in &g.geolocated {
            d.u64(m.mac.as_u64());
            d.u64(m.bssid.as_u64());
            d.u64(m.location.lat.to_bits());
            d.u64(m.location.lon.to_bits());
        }
        d.finish()
    }
}

/// Builds the nine-stage study DAG over `w`. With `chaos` set, the
/// corpus stage collects under per-day fault injection; every other
/// stage body is identical — stage-level faults are injected by the DAG
/// runner itself, so they never change what a successful stage computes.
fn stage_dag<'e>(
    cfg: &'e ExperimentConfig,
    w: &'e World,
    threads: usize,
    chaos: Option<&'e dyn Chaos>,
) -> v6par::Dag<'e> {
    let mut dag = v6par::Dag::new();

    // Passive collection over the study window.
    dag.add("corpus", &[], move |_| match chaos {
        Some(c) => NtpCorpus::collect_study_chaos(w, threads, c),
        None => NtpCorpus::collect_study_with_threads(w, threads),
    });
    dag.add("ntp", &["corpus"], move |o| {
        o.get::<NtpCorpus>("corpus").dataset_with_threads(threads)
    });

    // Active baselines, concurrent with collection.
    dag.add("hitlist", &[], move |_| {
        collect_hitlist_with_threads(w, 0, &cfg.hitlist, threads)
    });
    dag.add("caida", &[], move |_| {
        collect_caida_with_threads(w, 1, &cfg.caida, threads)
    });

    // Analyses, each released as soon as its inputs exist.
    dag.add("backscan", &[], move |_| backscan(w, &cfg.backscan));
    dag.add("wardrive", &[], move |_| WardriveDb::collect(w));
    dag.add(
        "alias_findings",
        &["backscan", "hitlist", "ntp"],
        move |o| {
            let hitlist = o.get::<ActiveDataset>("hitlist");
            let hl_aliases = AliasList::from_prefixes(hitlist.campaign.aliased.iter().copied());
            alias_findings(
                w,
                o.get::<BackscanResult>("backscan"),
                &hl_aliases,
                &o.get::<Dataset>("ntp").addr_set(),
                &hitlist.dataset.addr_set(),
            )
        },
    );
    dag.add("tracking", &["corpus"], move |o| {
        analyze_tracking(w, o.get::<NtpCorpus>("corpus"), cfg.transition_threshold)
    });
    dag.add("geolocation", &["tracking", "wardrive"], move |o| {
        let leaked: Vec<v6addr::Mac> = o
            .get::<TrackingAnalysis>("tracking")
            .tracks
            .iter()
            .map(|t| t.mac)
            .collect();
        geolocate(&leaked, o.get::<WardriveDb>("wardrive"), &cfg.geoloc)
    });
    dag
}

/// The outcome of one fault-injected study run
/// ([`Experiment::run_chaos`]).
pub struct ChaosRun {
    /// The full experiment — `Some` iff every DAG stage completed
    /// (possibly after retries). Present even when collection days were
    /// permanently lost; check [`ChaosRun::loss`] before trusting the
    /// artifacts.
    pub experiment: Option<Experiment>,
    /// Exactly which units of work were permanently lost: failed DAG
    /// stages (and their cascaded dependents) as `dag.stage.<name>`,
    /// dropped collection days as `collect.day.<d>`. Empty is the
    /// convergence certificate of a transient-only run.
    pub loss: LossReport,
    /// Per-stage failures as the DAG runner reported them, in stage
    /// insertion order.
    pub failures: Vec<StageFailure>,
    /// Wall-clock timings of the successful stages ("world" first).
    pub timings: Vec<StageTiming>,
}

impl ChaosRun {
    /// True when the run converged to complete, trustworthy artifacts:
    /// every stage completed and nothing was lost. Guaranteed whenever
    /// every injected fault was transient.
    pub fn converged(&self) -> bool {
        self.experiment.is_some() && self.loss.is_empty()
    }

    /// The artifact digest, when the pipeline completed. Equal to the
    /// fault-free digest iff the run [`converged`](ChaosRun::converged).
    pub fn digest(&self) -> Option<u64> {
        self.experiment.as_ref().map(Experiment::artifact_digest)
    }
}

/// Minimal FNV-1a accumulator for [`Experiment::artifact_digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_be_bytes() {
            self.0 = (self.0 ^ byte as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u128(&mut self, v: u128) {
        self.u64((v >> 64) as u64);
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_runs_and_is_coherent() {
        let e = Experiment::run(ExperimentConfig::tiny(2024));
        // The three datasets exist and have the paper's size ordering.
        assert!(e.ntp.len() > e.hitlist.dataset.len());
        assert!(!e.caida.dataset.is_empty());
        // Backscan probed someone.
        assert!(e.backscan.clients_probed > 0);
        // Tracking found EUI-64 devices.
        assert!(e.tracking.stats.unique_macs > 0);
        // The one-day slice is a strict subset.
        let day = e.one_day_slice(100);
        assert!(day.len() < e.ntp.len());
        // Every stage reported a wall time ("world" + 9 DAG stages).
        assert_eq!(e.timings.len(), 10);
        assert_eq!(e.timings[0].name, "world");
        assert!(e.timings.iter().any(|t| t.name == "corpus"));
        assert!(e.timings.iter().any(|t| t.name == "geolocation"));
    }

    #[test]
    fn permanent_stage_fault_cascades_and_is_accounted() {
        use v6chaos::{ScriptedChaos, SiteScript};
        // Kill the corpus stage permanently: the injected failure
        // replaces the task body, so the expensive collection never
        // runs, and ntp / tracking / alias_findings / geolocation all
        // cascade without running.
        let chaos = ScriptedChaos::new()
            .with("dag.stage.corpus", SiteScript::permanent())
            .with("dag.stage.backscan", SiteScript::transient(1));
        let run = Experiment::run_chaos(ExperimentConfig::tiny(2024), 4, &chaos);
        assert!(run.experiment.is_none());
        assert!(!run.converged());
        assert_eq!(run.digest(), None);
        assert_eq!(
            run.loss.unit_names(),
            vec![
                "dag.stage.alias_findings",
                "dag.stage.corpus",
                "dag.stage.geolocation",
                "dag.stage.ntp",
                "dag.stage.tracking",
            ]
        );
        // The cascaded stages never executed an attempt.
        for f in &run.failures {
            if f.name != "corpus" {
                assert_eq!(f.attempts, 0, "stage {} ran", f.name);
            }
        }
        // The transient backscan fault cleared: backscan is not lost and
        // its wall time was recorded.
        assert!(run.timings.iter().any(|t| t.name == "backscan"));
        assert!(run.timings.iter().any(|t| t.name == "caida"));
    }

    #[test]
    fn config_round_trips_through_serde() {
        // Regression: `hitlist`/`caida` used to be #[serde(skip)], so a
        // saved config silently lost its campaign knobs on reload.
        let mut cfg = ExperimentConfig::tiny(7);
        cfg.hitlist.weeks = 23;
        cfg.hitlist.low_iid_per_as = 17;
        cfg.caida.stride = 99;
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.hitlist, cfg.hitlist);
        assert_eq!(back.caida, cfg.caida);
        assert_eq!(back.seed, cfg.seed);
        // And the reloaded config serializes identically.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
