//! Population estimation by capture–recapture.
//!
//! How complete is a hitlist? The paper can only bound this ("our list is
//! not comprehensive", §1); in simulation we can do better. Classic
//! mark–recapture (Lincoln–Petersen, with the Chapman correction) treats
//! two collection windows as independent samples of the *device*
//! population: the overlap ratio estimates the total — and the simulator
//! knows the true count, so the estimator validates end to end.
//!
//! The unit of capture is the **EUI-64 MAC** (a stable device identity);
//! ephemeral privacy addresses make address-level recapture meaningless,
//! which is itself a finding the paper's entropy analysis implies.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use v6addr::Iid;
use v6netsim::World;

use crate::collect::ntp_passive::NtpCorpus;

/// A Chapman-corrected Lincoln–Petersen estimate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PopulationEstimate {
    /// Devices captured in the first window.
    pub first_capture: u64,
    /// Devices captured in the second window.
    pub second_capture: u64,
    /// Devices seen in both windows.
    pub recaptured: u64,
    /// The estimated total population.
    pub estimate: f64,
}

impl PopulationEstimate {
    /// Chapman estimator: `(n1+1)(n2+1)/(m+1) − 1` (unbiased for m > 0).
    pub fn chapman(n1: u64, n2: u64, m: u64) -> PopulationEstimate {
        let estimate = ((n1 + 1) as f64 * (n2 + 1) as f64) / (m + 1) as f64 - 1.0;
        PopulationEstimate {
            first_capture: n1,
            second_capture: n2,
            recaptured: m,
            estimate,
        }
    }
}

/// Estimates the EUI-64 device population from two disjoint corpus
/// windows `[a0, a1)` and `[b0, b1)` (study seconds).
pub fn estimate_eui64_population(
    corpus: &NtpCorpus,
    a: (u32, u32),
    b: (u32, u32),
) -> PopulationEstimate {
    let capture = |lo: u32, hi: u32| -> BTreeSet<u64> {
        corpus
            .observations
            .iter()
            .filter(|o| o.t >= lo && o.t < hi)
            .filter_map(|o| Iid::new(o.addr as u64).to_mac())
            .map(|m| m.as_u64())
            .collect()
    };
    let sa = capture(a.0, a.1);
    let sb = capture(b.0, b.1);
    let m = sa.intersection(&sb).count() as u64;
    PopulationEstimate::chapman(sa.len() as u64, sb.len() as u64, m)
}

/// Ground truth for validation: pool-using devices whose addressing
/// strategy leaks EUI-64 (the population the estimator samples).
pub fn true_eui64_population(world: &World) -> u64 {
    world
        .devices
        .iter()
        .filter(|d| d.uses_pool)
        .filter(|d| d.strategy == v6netsim::addressing::IidStrategy::Eui64)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::time::STUDY_DURATION;
    use v6netsim::{SimTime, WorldConfig};

    #[test]
    fn chapman_basic() {
        // Classic textbook numbers: n1=n2=100, m=25 → N̂ ≈ 391.7.
        let e = PopulationEstimate::chapman(100, 100, 25);
        assert!((e.estimate - 392.0).abs() < 1.0, "{}", e.estimate);
        // Degenerate: no recapture → huge estimate, but finite.
        let e = PopulationEstimate::chapman(10, 10, 0);
        assert!(e.estimate.is_finite());
        assert!(e.estimate > 100.0);
    }

    #[test]
    fn estimates_true_population_within_factor_two() {
        let w = World::build(WorldConfig::tiny(), 1001);
        let corpus = NtpCorpus::collect(&w, SimTime::START, STUDY_DURATION);
        // Two one-month windows, far apart.
        let month = 30 * 86_400u32;
        let e = estimate_eui64_population(&corpus, (0, month), (3 * month, 4 * month));
        let truth = true_eui64_population(&w);
        assert!(e.recaptured > 0, "no recaptures — windows too small");
        // EUI-64 devices are mostly always-on IoT/CPE: captures are rich
        // and the estimate should land near the truth.
        assert!(
            e.estimate > truth as f64 * 0.5 && e.estimate < truth as f64 * 2.0,
            "estimate {:.0} vs truth {truth}",
            e.estimate
        );
    }

    #[test]
    fn address_level_recapture_fails_for_privacy_clients() {
        // The contrast the paper's entropy analysis implies: recapture on
        // *addresses* wildly overestimates, because privacy addresses
        // never recur across far-apart windows.
        let w = World::build(WorldConfig::tiny(), 1001);
        let corpus = NtpCorpus::collect(&w, SimTime::START, STUDY_DURATION);
        let month = 30 * 86_400u32;
        let capture = |lo: u32, hi: u32| -> BTreeSet<u128> {
            corpus
                .observations
                .iter()
                .filter(|o| o.t >= lo && o.t < hi)
                .map(|o| o.addr)
                .collect()
        };
        let sa = capture(0, month);
        let sb = capture(3 * month, 4 * month);
        let m = sa.intersection(&sb).count() as u64;
        let addr_est = PopulationEstimate::chapman(sa.len() as u64, sb.len() as u64, m);
        let device_truth = w.devices.iter().filter(|d| d.uses_pool).count() as f64;
        assert!(
            addr_est.estimate > 3.0 * device_truth,
            "address-level estimate {:.0} should blow past device truth {device_truth}",
            addr_est.estimate
        );
    }
}
