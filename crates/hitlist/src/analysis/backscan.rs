//! Backscanning — §3 methodology, §4.2 results, Figure 3.
//!
//! For one week, five of the 27 NTP servers record their clients in
//! ten-minute batches; at the end of each batch the server probes back
//! (ICMPv6 only) every client address **plus one random address in the
//! same /64**. Client responses measure how scannable the passive corpus
//! is (the paper: ~⅔ respond); *random* responses are alias middleboxes
//! (the paper: 3.5%), exposing aliased /64s — including ones the IPv6
//! Hitlist's alias list does not know.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use v6addr::{iid_entropy, Prefix};
use v6netsim::rng::hash64;
use v6netsim::time::{BACKSCAN_DURATION, BACKSCAN_INTERVAL, BACKSCAN_START};
use v6netsim::{NtpEventStream, SimDuration, SimTime, World};
use v6ntp::NtpPool;
use v6scan::AliasList;

use crate::cdf::Cdf;

/// Backscan experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackscanConfig {
    /// How many of the 27 servers participate (paper: 5).
    pub servers: usize,
    /// Window start.
    pub start: SimTime,
    /// Window length (paper: one week).
    pub duration: SimDuration,
    /// Batch interval (paper: ten minutes).
    pub interval: SimDuration,
}

impl Default for BackscanConfig {
    fn default() -> Self {
        BackscanConfig {
            servers: 5,
            start: BACKSCAN_START,
            duration: BACKSCAN_DURATION,
            interval: BACKSCAN_INTERVAL,
        }
    }
}

/// Results of the backscanning experiment.
#[derive(Debug)]
pub struct BackscanResult {
    /// Distinct NTP client addresses probed back.
    pub clients_probed: u64,
    /// Clients that answered the echo.
    pub clients_responsive: u64,
    /// Random same-/64 addresses probed.
    pub random_probed: u64,
    /// Random addresses that answered (alias signal).
    pub random_responsive: u64,
    /// Entropy CDF of responsive clients ("NTP hit", Fig. 3).
    pub hit_entropy: Cdf,
    /// Entropy CDF of unresponsive clients ("NTP miss").
    pub miss_entropy: Cdf,
    /// Entropy CDF of responsive random addresses ("Random").
    pub random_entropy: Cdf,
    /// Distinct /64s inferred aliased from random responses.
    pub aliased_64s: Vec<Prefix>,
}

impl BackscanResult {
    /// Client responsiveness fraction (paper: ≈ 2/3).
    pub fn client_response_rate(&self) -> f64 {
        if self.clients_probed == 0 {
            0.0
        } else {
            self.clients_responsive as f64 / self.clients_probed as f64
        }
    }

    /// Random-address responsiveness (paper: 3.5%).
    pub fn random_response_rate(&self) -> f64 {
        if self.random_probed == 0 {
            0.0
        } else {
            self.random_responsive as f64 / self.random_probed as f64
        }
    }
}

/// Runs the backscan experiment.
pub fn backscan(world: &World, cfg: &BackscanConfig) -> BackscanResult {
    let pool = NtpPool::new(
        world.vantage_points.clone(),
        v6netsim::CountryRegistry::builtin(),
    );
    // The participating servers: spread across regions so the probed
    // client population spans the corpus the way the paper's five
    // servers' clients did. Prefer one server each in the heavyweight
    // client regions, then fill with remaining distinct countries.
    let mut chosen: BTreeSet<u16> = BTreeSet::new();
    let mut seen_countries: BTreeSet<v6netsim::Country> = BTreeSet::new();
    for cc in ["US", "JP", "DE", "BR", "IN"] {
        if chosen.len() >= cfg.servers {
            break;
        }
        if let Some(vp) = world
            .vantage_points
            .iter()
            .find(|v| v.country == v6netsim::Country::new(cc))
        {
            if seen_countries.insert(vp.country) {
                chosen.insert(vp.id);
            }
        }
    }
    for vp in &world.vantage_points {
        if chosen.len() >= cfg.servers {
            break;
        }
        if seen_countries.insert(vp.country) {
            chosen.insert(vp.id);
        }
    }
    let vp_as: BTreeMap<u16, u16> = world
        .vantage_points
        .iter()
        .map(|v| (v.id, v.as_index))
        .collect();

    // Batch clients per (interval, server).
    let mut batches: BTreeMap<(u64, u16), BTreeSet<u128>> = BTreeMap::new();
    for ev in NtpEventStream::new(world, cfg.start, cfg.duration) {
        let Some(vp) = pool.select(ev.country, ev.device.0 as u64, ev.t) else {
            continue;
        };
        if !chosen.contains(&vp.id) {
            continue;
        }
        let interval = ev.t.as_secs() / cfg.interval.as_secs();
        batches
            .entry((interval, vp.id))
            .or_default()
            .insert(u128::from(ev.src));
    }

    let mut probed: BTreeSet<u128> = BTreeSet::new();
    let mut hit_e = Vec::new();
    let mut miss_e = Vec::new();
    let mut random_e = Vec::new();
    let mut random_probed = 0u64;
    let mut random_hits = 0u64;
    let mut aliased: BTreeSet<u128> = BTreeSet::new();
    let mut clients_responsive = 0u64;

    for ((interval, vp_id), clients) in &batches {
        // Probe at the end of the ten-minute interval.
        let t = SimTime((interval + 1) * cfg.interval.as_secs());
        let src_as = vp_as[vp_id];
        for &bits in clients {
            let addr = Ipv6Addr::from(bits);
            // No address probed more than once (across the experiment we
            // also dedupe, since each probe is deterministic anyway).
            if !probed.insert(bits) {
                continue;
            }
            let h = iid_entropy(v6addr::iid(addr));
            if world.probe_echo(src_as, addr, t).is_echo() {
                clients_responsive += 1;
                hit_e.push(h);
            } else {
                miss_e.push(h);
            }
            // One random address in the same /64.
            let p64 = Prefix::of(addr, 64);
            let rand_off = hash64(world.seed ^ 0xba5c, &bits.to_be_bytes()) as u128;
            let random = p64.offset(rand_off.max(2)); // avoid ::0/::1
            if random != addr {
                random_probed += 1;
                if world.probe_echo(src_as, random, t).is_echo() {
                    random_hits += 1;
                    random_e.push(iid_entropy(v6addr::iid(random)));
                    aliased.insert(p64.bits());
                }
            }
        }
    }

    BackscanResult {
        clients_probed: probed.len() as u64,
        clients_responsive,
        random_probed,
        random_responsive: random_hits,
        hit_entropy: Cdf::new(hit_e),
        miss_entropy: Cdf::new(miss_e),
        random_entropy: Cdf::new(random_e),
        aliased_64s: aliased
            .into_iter()
            .map(|b| Prefix::from_bits(b, 64))
            .collect(),
    }
}

/// §4.2's alias cross-checks against the Hitlist's published alias list
/// and the passive corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AliasFindings {
    /// Backscan-inferred aliased /64s also in the Hitlist alias list.
    pub known_to_hitlist: u64,
    /// Backscan-inferred aliased /64s the Hitlist does *not* list.
    pub new_aliased: u64,
    /// NTP corpus client addresses inside backscan-aliased /64s.
    pub ntp_clients_in_aliased: u64,
    /// Distinct ASes those clients originate from.
    pub client_ases: u64,
    /// How many of those client addresses a Hitlist-style dataset
    /// contains (the paper found just 23 of 3.8 M).
    pub hitlist_clients_in_aliased: u64,
}

/// Cross-references backscan alias discoveries with the Hitlist alias
/// list, the passive corpus, and the Hitlist dataset (§4.2).
pub fn alias_findings(
    world: &World,
    result: &BackscanResult,
    hitlist_aliases: &AliasList,
    ntp_corpus_addrs: &v6addr::AddrSet,
    hitlist_addrs: &v6addr::AddrSet,
) -> AliasFindings {
    let mut known = 0;
    let mut new = 0;
    for p in &result.aliased_64s {
        if hitlist_aliases.covers_prefix(p) {
            known += 1;
        } else {
            new += 1;
        }
    }
    let backscan_list = AliasList::from_prefixes(result.aliased_64s.iter().copied());
    let mut clients = 0u64;
    let mut ases: BTreeSet<u16> = BTreeSet::new();
    for &bits in ntp_corpus_addrs.as_bits() {
        let addr = Ipv6Addr::from(bits);
        if backscan_list.contains(addr) {
            clients += 1;
            if let Some(ai) = world.as_index_of(addr) {
                ases.insert(ai);
            }
        }
    }
    let hitlist_clients = hitlist_addrs
        .as_bits()
        .iter()
        .filter(|&&b| backscan_list.contains(Ipv6Addr::from(b)))
        .count() as u64;
    AliasFindings {
        known_to_hitlist: known,
        new_aliased: new,
        ntp_clients_in_aliased: clients,
        client_ases: ases.len() as u64,
        hitlist_clients_in_aliased: hitlist_clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::WorldConfig;

    fn run() -> (World, BackscanResult) {
        let w = World::build(WorldConfig::tiny(), 111);
        let cfg = BackscanConfig {
            duration: SimDuration::days(2),
            ..Default::default()
        };
        let r = backscan(&w, &cfg);
        (w, r)
    }

    #[test]
    fn clients_mostly_respond() {
        let (_w, r) = run();
        assert!(r.clients_probed > 50, "only {} clients", r.clients_probed);
        let rate = r.client_response_rate();
        // The paper's ~2/3; accept a generous band at tiny scale.
        assert!(
            (0.40..=0.90).contains(&rate),
            "client response rate {rate:.2}"
        );
    }

    #[test]
    fn random_rate_far_below_client_rate() {
        let (_w, r) = run();
        assert!(r.random_probed > 50);
        let rr = r.random_response_rate();
        let cr = r.client_response_rate();
        assert!(rr < cr / 3.0, "random {rr:.3} vs client {cr:.3}");
    }

    #[test]
    fn random_hits_imply_aliased_64s() {
        let (w, r) = run();
        assert_eq!(r.random_responsive as usize, r.random_entropy.len());
        // Every inferred aliased /64 must in truth be alias-fronted.
        for p in &r.aliased_64s {
            let ai = w.as_index_of(p.network()).unwrap() as usize;
            let asr = &w.ases[ai];
            let truly =
                asr.info.clients_aliased() || asr.alias_48s.iter().any(|a| a.contains_prefix(p));
            assert!(truly, "{p} is not actually aliased");
        }
    }

    #[test]
    fn alias_findings_cross_reference() {
        let (w, r) = run();
        let hitlist_aliases = AliasList::from_prefixes(w.aliased_prefixes());
        // Tiny synthetic corpora: all NTP clients + all hitlist-ish addrs.
        let corpus = v6addr::AddrSet::from_bits(
            NtpEventStream::new(&w, SimTime::START, SimDuration::days(3))
                .map(|e| u128::from(e.src))
                .collect(),
        );
        let hl = v6addr::AddrSet::from_addrs(w.public_servers());
        let f = alias_findings(&w, &r, &hitlist_aliases, &corpus, &hl);
        assert_eq!(
            f.known_to_hitlist + f.new_aliased,
            r.aliased_64s.len() as u64
        );
        // The client-aliased ASes are NOT in the hosting ground-truth
        // alias list, so discoveries there are "new".
        if !r.aliased_64s.is_empty() {
            assert!(f.new_aliased > 0);
        }
        // Hitlist (servers) has essentially no presence in aliased
        // client /64s — the paper's "only 23 addresses" phenomenon.
        assert!(f.hitlist_clients_in_aliased <= f.ntp_clients_in_aliased);
    }

    #[test]
    fn no_duplicate_probes() {
        let (_w, r) = run();
        let set: BTreeSet<u128> = r.aliased_64s.iter().map(|p| p.bits()).collect();
        assert_eq!(set.len(), r.aliased_64s.len());
        assert!(r.clients_responsive <= r.clients_probed);
        assert!(r.random_responsive <= r.random_probed);
    }
}
