//! Dataset comparison — the paper's Table 1.
//!
//! For each dataset: unique addresses, intersection with the NTP corpus,
//! distinct origin ASNs (and common), distinct /48s (and common), and the
//! mean addresses per /48. The paper's headline shape: the NTP corpus is
//! orders of magnitude larger and denser per /48, yet sees *fewer* ASes
//! than the traceroute-based campaigns.

use serde::{Deserialize, Serialize};

use v6netsim::World;

use crate::dataset::Dataset;

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Unique IPv6 addresses.
    pub addresses: u64,
    /// Addresses shared with the reference (NTP) dataset; `None` for the
    /// reference row itself.
    pub common_addresses: Option<u64>,
    /// Distinct origin ASNs.
    pub asns: u64,
    /// ASNs shared with the reference.
    pub common_asns: Option<u64>,
    /// Distinct /48 prefixes.
    pub prefixes_48: u64,
    /// /48s shared with the reference.
    pub common_48s: Option<u64>,
    /// Mean addresses per /48.
    pub avg_addrs_per_48: f64,
}

/// The computed Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows: reference (NTP) first, then each comparison dataset.
    pub rows: Vec<Table1Row>,
}

/// Computes Table 1 with `reference` as the first row (the NTP corpus in
/// the paper) and each of `others` compared against it.
pub fn table1(world: &World, reference: &Dataset, others: &[&Dataset]) -> Table1 {
    let mut rows = Vec::with_capacity(1 + others.len());
    rows.push(Table1Row {
        dataset: reference.name().to_string(),
        addresses: reference.len() as u64,
        common_addresses: None,
        asns: reference.distinct_asns(world).len() as u64,
        common_asns: None,
        prefixes_48: reference.distinct_48s(),
        common_48s: None,
        avg_addrs_per_48: reference.density_per_48(),
    });
    for d in others {
        rows.push(Table1Row {
            dataset: d.name().to_string(),
            addresses: d.len() as u64,
            common_addresses: Some(reference.common_addresses(d)),
            asns: d.distinct_asns(world).len() as u64,
            common_asns: Some(reference.common_asns(d, world)),
            prefixes_48: d.distinct_48s(),
            common_48s: Some(reference.common_48s(d)),
            avg_addrs_per_48: d.density_per_48(),
        });
    }
    Table1 { rows }
}

impl Table1 {
    /// Renders the table as aligned text, one row per dataset.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>10} {:>7} {:>7} {:>10} {:>9} {:>12}\n",
            "Dataset", "Addresses", "Common", "ASNs", "Common", "/48s", "Common", "Avg per /48"
        ));
        for r in &self.rows {
            let c = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<20} {:>12} {:>10} {:>7} {:>7} {:>10} {:>9} {:>12.1}\n",
                r.dataset,
                r.addresses,
                c(r.common_addresses),
                r.asns,
                c(r.common_asns),
                r.prefixes_48,
                c(r.common_48s),
                r.avg_addrs_per_48,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Observation;
    use v6netsim::{SimTime, WorldConfig};

    #[test]
    fn table_shape_and_counts() {
        let w = World::build(WorldConfig::tiny(), 105);
        let a0 = w.ases[0].router48().offset(1);
        let a1 = w.ases[1].router48().offset(1);
        let a2 = w.ases[2].router48().offset(1);
        let ntp = Dataset::from_observations(
            "NTP Pool",
            [a0, a1].map(|addr| Observation {
                addr,
                t: SimTime(0),
            }),
        );
        let hl = Dataset::from_observations(
            "IPv6 Hitlist",
            [a1, a2].map(|addr| Observation {
                addr,
                t: SimTime(0),
            }),
        );
        let t = table1(&w, &ntp, &[&hl]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].addresses, 2);
        assert_eq!(t.rows[0].common_addresses, None);
        assert_eq!(t.rows[1].common_addresses, Some(1));
        assert_eq!(t.rows[1].common_asns, Some(1));
        assert_eq!(t.rows[1].common_48s, Some(1));
        let text = t.render();
        assert!(text.contains("NTP Pool"));
        assert!(text.contains("IPv6 Hitlist"));
    }
}
