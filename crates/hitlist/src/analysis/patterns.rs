//! Addressing-pattern classification — Figure 5 (§4.3).
//!
//! Buckets every unique address of a dataset into the paper's seven
//! classes. The IPv4-mapped class applies the paper's two-step AS-level
//! acceptance: a decode only counts if the embedded IPv4 address lies in
//! the same AS, and an AS's IPv4-mapped candidates are only accepted when
//! there are at least `min_instances` of them *and* they exceed 10% of
//! the AS's addresses — killing random-IID false decodes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use v6addr::pattern::{classify_structural, AddressClass};
use v6addr::{ipv4_embed, Iid};
use v6netsim::World;

use crate::dataset::Dataset;

/// Acceptance thresholds for the IPv4-mapped class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ipv4Acceptance {
    /// Minimum same-AS embedded-IPv4 instances in the AS (paper: 100;
    /// scaled worlds use less).
    pub min_instances: u64,
    /// Minimum fraction of the AS's addresses (paper: 0.10).
    pub min_fraction: f64,
}

impl Default for Ipv4Acceptance {
    fn default() -> Self {
        Ipv4Acceptance {
            min_instances: 25,
            min_fraction: 0.10,
        }
    }
}

/// Per-class address fractions for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// Dataset name.
    pub dataset: String,
    /// Unique addresses classified.
    pub total: u64,
    /// `(class, count)` in [`AddressClass::ALL`] order.
    pub counts: Vec<(AddressClass, u64)>,
}

impl ClassBreakdown {
    /// The fraction of addresses in one class.
    pub fn fraction(&self, class: AddressClass) -> f64 {
        let c = self
            .counts
            .iter()
            .find(|(k, _)| *k == class)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        if self.total == 0 {
            0.0
        } else {
            c as f64 / self.total as f64
        }
    }
}

/// Classifies a dataset's unique addresses (Figure 5, one bar group).
pub fn classify_dataset(
    world: &World,
    dataset: &Dataset,
    accept: &Ipv4Acceptance,
) -> ClassBreakdown {
    // Pass 1: structural classes + per-AS same-AS IPv4 candidate tally.
    struct Pending {
        as_index: Option<u16>,
        class: AddressClass,
        v4_same_as: bool,
    }
    let mut pending: Vec<Pending> = Vec::with_capacity(dataset.len());
    let mut per_as_total: HashMap<u16, u64> = HashMap::new();
    let mut per_as_v4: HashMap<u16, u64> = HashMap::new();

    for r in dataset.records() {
        let as_index = world.as_index_of(r.addr);
        let sc = classify_structural(Iid::from_addr(r.addr));
        let mut v4_same_as = false;
        if sc.v4_candidate {
            if let Some(ai) = as_index {
                let (base, len) = world.ases[ai as usize].v4_block();
                let mask = u32::MAX << (32 - len);
                v4_same_as = ipv4_embed::decode_all(Iid::from_addr(r.addr))
                    .iter()
                    .any(|e| (u32::from(e.v4) & mask) == base);
            }
        }
        if let Some(ai) = as_index {
            *per_as_total.entry(ai).or_insert(0) += 1;
            if v4_same_as {
                *per_as_v4.entry(ai).or_insert(0) += 1;
            }
        }
        pending.push(Pending {
            as_index,
            class: sc.without_v4,
            v4_same_as,
        });
    }

    // Which ASes pass the acceptance filter?
    let accepted: HashMap<u16, bool> = per_as_v4
        .iter()
        .map(|(&ai, &v4)| {
            let total = per_as_total[&ai];
            (
                ai,
                v4 >= accept.min_instances && v4 as f64 / total as f64 > accept.min_fraction,
            )
        })
        .collect();

    // Pass 2: final classes.
    let mut counts: HashMap<AddressClass, u64> = HashMap::new();
    for p in &pending {
        let class = if p.v4_same_as
            && p.as_index
                .map(|ai| *accepted.get(&ai).unwrap_or(&false))
                .unwrap_or(false)
        {
            AddressClass::Ipv4Mapped
        } else {
            p.class
        };
        *counts.entry(class).or_insert(0) += 1;
    }

    ClassBreakdown {
        dataset: dataset.name().to_string(),
        total: dataset.len() as u64,
        counts: AddressClass::ALL
            .iter()
            .map(|&c| (c, *counts.get(&c).unwrap_or(&0)))
            .collect(),
    }
}

/// Figure 5: the NTP corpus vs the Hitlist, one day's snapshot each.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5 {
    /// One breakdown per dataset.
    pub breakdowns: Vec<ClassBreakdown>,
}

impl Figure5 {
    /// Renders as a per-class fraction table.
    pub fn render(&self) -> String {
        let mut out = format!("{:<22}", "Class");
        for b in &self.breakdowns {
            out.push_str(&format!(" {:>16}", b.dataset));
        }
        out.push('\n');
        for class in AddressClass::ALL {
            out.push_str(&format!("{:<22}", class.label()));
            for b in &self.breakdowns {
                out.push_str(&format!(" {:>15.4}%", b.fraction(class) * 100.0));
            }
            out.push('\n');
        }
        out
    }
}

/// Computes Figure 5 over any number of datasets.
pub fn figure5(world: &World, datasets: &[&Dataset], accept: &Ipv4Acceptance) -> Figure5 {
    Figure5 {
        breakdowns: datasets
            .iter()
            .map(|d| classify_dataset(world, d, accept))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Observation;
    use v6addr::ipv4_embed::Ipv4Encoding;
    use v6netsim::{SimTime, WorldConfig};

    fn world() -> World {
        World::build(WorldConfig::tiny(), 109)
    }

    fn obs(addr: std::net::Ipv6Addr) -> Observation {
        Observation {
            addr,
            t: SimTime(0),
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let w = world();
        let addrs: Vec<Observation> = w.ases[0..6]
            .iter()
            .map(|a| obs(a.router48().offset(1)))
            .collect();
        let d = Dataset::from_observations("t", addrs);
        let b = classify_dataset(&w, &d, &Ipv4Acceptance::default());
        let total: u64 = b.counts.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, b.total);
        let sum: f64 = AddressClass::ALL.iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Router ::1 interfaces are Low Byte.
        assert!(b.fraction(AddressClass::LowByte) > 0.9);
    }

    #[test]
    fn ipv4_acceptance_requires_both_thresholds() {
        let w = world();
        let asr = &w.ases[0];
        let (base, _) = asr.v4_block();
        // 30 addresses with same-AS embedded IPv4 out of 40 total in the
        // AS: passes min_instances=25 and >10%.
        let mut addrs = Vec::new();
        for i in 0..30u32 {
            let v4 = std::net::Ipv4Addr::from(base | i);
            let iid = Ipv4Encoding::LowHex.encode(v4);
            addrs.push(obs(v6addr::join(
                (asr.customer33().bits() >> 64) as u64 + i as u64,
                iid,
            )));
        }
        for i in 0..10u64 {
            addrs.push(obs(v6addr::join(
                (asr.customer33().bits() >> 64) as u64,
                v6addr::Iid::new(0xdead_0000_0000_0000 + i),
            )));
        }
        let d = Dataset::from_observations("t", addrs.clone());
        let b = classify_dataset(&w, &d, &Ipv4Acceptance::default());
        assert_eq!(
            b.counts
                .iter()
                .find(|(c, _)| *c == AddressClass::Ipv4Mapped)
                .unwrap()
                .1,
            30
        );
        // Stricter minimum: rejected, falls back to entropy classes.
        let strict = Ipv4Acceptance {
            min_instances: 100,
            min_fraction: 0.10,
        };
        let b2 = classify_dataset(&w, &d, &strict);
        assert_eq!(b2.fraction(AddressClass::Ipv4Mapped), 0.0);
    }

    #[test]
    fn foreign_v4_embeddings_rejected() {
        let w = world();
        let asr = &w.ases[0];
        // Embedded IPv4s from a *different* AS's block never count.
        let (other_base, _) = w.ases[5].v4_block();
        let mut addrs = Vec::new();
        for i in 0..40u32 {
            let v4 = std::net::Ipv4Addr::from(other_base | i);
            addrs.push(obs(v6addr::join(
                (asr.customer33().bits() >> 64) as u64 + i as u64,
                Ipv4Encoding::LowHex.encode(v4),
            )));
        }
        let d = Dataset::from_observations("t", addrs);
        let b = classify_dataset(&w, &d, &Ipv4Acceptance::default());
        assert_eq!(b.fraction(AddressClass::Ipv4Mapped), 0.0);
    }

    #[test]
    fn figure5_render() {
        let w = world();
        let d1 = Dataset::from_observations("NTP Pool", vec![obs(w.ases[0].router48().offset(1))]);
        let d2 =
            Dataset::from_observations("IPv6 Hitlist", vec![obs(w.ases[1].router48().offset(2))]);
        let f = figure5(&w, &[&d1, &d2], &Ipv4Acceptance::default());
        let text = f.render();
        assert!(text.contains("Low Byte"));
        assert!(text.contains("NTP Pool"));
        assert_eq!(f.breakdowns.len(), 2);
    }
}
