//! AS-type composition of a dataset (§4.1's ASdb analysis).
//!
//! The paper classifies the origin ASes of each dataset with ASdb and
//! finds the passive corpus is mobile-heavy: 14% of NTP addresses
//! originate from "Phone Provider" ASes versus only 2% of the Hitlist —
//! direct evidence that the datasets see different device populations.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use v6netsim::World;

use crate::dataset::Dataset;

/// One AS-subtype row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubtypeRow {
    /// ASdb subtype label.
    pub subtype: String,
    /// Unique addresses originating from ASes of this subtype.
    pub addresses: u64,
    /// Fraction of the dataset.
    pub fraction: f64,
}

/// The ASdb-style subtype breakdown of one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsTypeBreakdown {
    /// Dataset name.
    pub dataset: String,
    /// Rows, largest first.
    pub rows: Vec<SubtypeRow>,
}

impl AsTypeBreakdown {
    /// The fraction for one subtype (0 when absent).
    pub fn fraction(&self, subtype: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.subtype == subtype)
            .map(|r| r.fraction)
            .unwrap_or(0.0)
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!("-- {} --\n", self.dataset);
        for r in &self.rows {
            out.push_str(&format!(
                "{:<36} {:>10} ({:.1}%)\n",
                r.subtype,
                r.addresses,
                r.fraction * 100.0
            ));
        }
        out
    }
}

/// Computes the subtype breakdown of a dataset's unique addresses.
pub fn subtype_breakdown(world: &World, dataset: &Dataset) -> AsTypeBreakdown {
    let mut counts: HashMap<&'static str, u64> = HashMap::new();
    let mut total = 0u64;
    for r in dataset.records() {
        if let Some(ai) = world.as_index_of(r.addr) {
            *counts
                .entry(world.ases[ai as usize].info.kind.asdb_subtype())
                .or_insert(0) += 1;
            total += 1;
        }
    }
    let mut rows: Vec<SubtypeRow> = counts
        .into_iter()
        .map(|(subtype, addresses)| SubtypeRow {
            subtype: subtype.to_string(),
            addresses,
            fraction: addresses as f64 / total.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.addresses
            .cmp(&a.addresses)
            .then(a.subtype.cmp(&b.subtype))
    });
    AsTypeBreakdown {
        dataset: dataset.name().to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::ntp_passive::NtpCorpus;
    use v6netsim::{SimDuration, SimTime, WorldConfig};

    #[test]
    fn passive_corpus_is_phone_provider_heavy() {
        let w = World::build(WorldConfig::tiny(), 202);
        let corpus = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(14));
        let b = subtype_breakdown(&w, &corpus.dataset());
        let phone = b.fraction("Phone Provider");
        // Mobile subscribers dominate the tiny world's client population;
        // the paper reports 14% for its NTP corpus vs 2% for the Hitlist.
        assert!(phone > 0.10, "phone-provider share {phone:.2}");
        let total: f64 = b.rows.iter().map(|r| r.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infrastructure_dataset_is_not() {
        let w = World::build(WorldConfig::tiny(), 202);
        // A router-only dataset has zero phone-provider *client* share
        // only if no mobile-AS routers are in it; routers exist in every
        // AS, so instead check ISP subtypes dominate a server dataset.
        let servers = Dataset::from_addresses("servers", w.public_servers(), SimTime::START);
        let b = subtype_breakdown(&w, &servers);
        assert!(
            b.fraction("Hosting and Cloud Provider") > 0.9,
            "{}",
            b.render()
        );
    }

    #[test]
    fn render_contains_rows() {
        let w = World::build(WorldConfig::tiny(), 202);
        let servers = Dataset::from_addresses("s", w.public_servers(), SimTime::START);
        let text = subtype_breakdown(&w, &servers).render();
        assert!(text.contains("Hosting"));
    }
}
