//! The §5.3 geolocation attack: EUI-64 MACs × wardriving databases.
//!
//! Rye & Beverly's IPvSeeYou technique, applied passively: a device's
//! wired MAC leaks through its EUI-64 IPv6 address; its WiFi BSSID — a
//! sibling MAC a small vendor-constant away — sits geolocated in public
//! wardriving databases. The attack (1) infers the per-OUI wired→wireless
//! offset from pair statistics, then (2) joins every leaked MAC through
//! that offset into the BSSID database, yielding street-level locations.
//!
//! Nothing in this module touches the simulator's hidden ground-truth
//! offsets; inference works purely from the observed MAC sets, exactly
//! as the real attack must.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use v6addr::mac::Oui;
use v6addr::Mac;
use v6geo::{LatLon, WardriveDb};
use v6netsim::{Country, World};

/// Attack configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeolocConfig {
    /// Minimum wired-MAC-to-BSSID pairs in an OUI before its inferred
    /// offset is trusted (paper: 500; scaled worlds use less).
    pub min_pairs: u64,
    /// Offsets with |Δ| beyond this are ignored as noise (vendor
    /// constants are small).
    pub max_abs_offset: i64,
}

impl Default for GeolocConfig {
    fn default() -> Self {
        GeolocConfig {
            min_pairs: 30,
            max_abs_offset: 4096,
        }
    }
}

/// An inferred per-OUI wired→wireless offset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InferredOffset {
    /// The OUI.
    pub oui: Oui,
    /// The winning offset.
    pub offset: i64,
    /// Number of pairs voting for it.
    pub votes: u64,
    /// Total pairs tallied in the OUI.
    pub pairs: u64,
}

/// One geolocated device.
#[derive(Debug, Clone, Copy)]
pub struct GeolocatedMac {
    /// The wired MAC recovered from the EUI-64 IID.
    pub mac: Mac,
    /// The matched BSSID.
    pub bssid: Mac,
    /// Location from the wardriving database.
    pub location: LatLon,
}

/// Attack output.
#[derive(Debug)]
pub struct GeolocationReport {
    /// OUIs with trusted inferred offsets.
    pub offsets: Vec<InferredOffset>,
    /// Every geolocated device.
    pub geolocated: Vec<GeolocatedMac>,
    /// Distinct wired MACs given to the attack.
    pub input_macs: u64,
}

/// Infers per-OUI offsets from the observed wired MACs and the BSSID
/// database (step 1 of the attack).
pub fn infer_offsets(
    wired_macs: &[Mac],
    db: &WardriveDb,
    cfg: &GeolocConfig,
) -> Vec<InferredOffset> {
    // Group wired MACs per OUI.
    let mut per_oui: HashMap<Oui, Vec<Mac>> = HashMap::new();
    for &m in wired_macs {
        per_oui.entry(m.oui()).or_default().push(m);
    }
    let mut out = Vec::new();
    for (oui, wired) in per_oui {
        let bssids = db.bssids_in_oui(oui);
        if bssids.is_empty() {
            continue;
        }
        let mut votes: HashMap<i64, u64> = HashMap::new();
        let mut pairs = 0u64;
        for w in &wired {
            for b in &bssids {
                if let Some(d) = w.nic_offset_to(*b) {
                    if d != 0 && d.abs() <= cfg.max_abs_offset {
                        *votes.entry(d).or_insert(0) += 1;
                        pairs += 1;
                    }
                }
            }
        }
        if pairs < cfg.min_pairs {
            continue;
        }
        // Plain argmax over the tallied offsets, as the paper does; ties
        // prefer the smaller |offset| (vendor constants are small). A
        // floor of 3 votes rejects pure-noise winners in sparse OUIs.
        if let Some((&offset, &n)) = votes.iter().max_by_key(|&(&d, &n)| (n, -d.abs())) {
            if n >= 3 {
                out.push(InferredOffset {
                    oui,
                    offset,
                    votes: n,
                    pairs,
                });
            }
        }
    }
    out.sort_by_key(|o| o.oui);
    out
}

/// Runs the full attack: infer offsets, then join every wired MAC whose
/// OUI has a trusted offset against the BSSID database.
pub fn geolocate(wired_macs: &[Mac], db: &WardriveDb, cfg: &GeolocConfig) -> GeolocationReport {
    let offsets = infer_offsets(wired_macs, db, cfg);
    let by_oui: HashMap<Oui, i64> = offsets.iter().map(|o| (o.oui, o.offset)).collect();
    let mut geolocated = Vec::new();
    let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for &mac in wired_macs {
        if !seen.insert(mac.as_u64()) {
            continue;
        }
        let Some(&off) = by_oui.get(&mac.oui()) else {
            continue;
        };
        let bssid = mac.wrapping_add_nic(off);
        if let Some(location) = db.lookup(bssid) {
            geolocated.push(GeolocatedMac {
                mac,
                bssid,
                location,
            });
        }
    }
    GeolocationReport {
        offsets,
        geolocated,
        input_macs: seen.len() as u64,
    }
}

impl GeolocationReport {
    /// Per-country share of geolocated devices, by nearest registry
    /// centroid (descending). The paper's version of this table is 75%
    /// Germany.
    pub fn country_histogram(&self, world: &World) -> Vec<(Country, u64)> {
        let mut counts: HashMap<Country, u64> = HashMap::new();
        for g in &self.geolocated {
            let nearest = world
                .countries
                .all()
                .iter()
                .min_by(|a, b| {
                    let da = LatLon::new(a.centroid.0, a.centroid.1).distance_km(&g.location);
                    let db = LatLon::new(b.centroid.0, b.centroid.1).distance_km(&g.location);
                    da.partial_cmp(&db).unwrap()
                })
                .map(|c| c.code);
            if let Some(c) = nearest {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(Country, u64)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Fraction of geolocated devices whose MAC belongs to a vendor name
    /// (e.g. "AVM GmbH"), via the world's OUI registry.
    pub fn vendor_share(&self, world: &World, vendor: &str) -> f64 {
        if self.geolocated.is_empty() {
            return 0.0;
        }
        let n = self
            .geolocated
            .iter()
            .filter(|g| world.oui_db.name_or_unlisted(g.mac.oui()) == vendor)
            .count();
        n as f64 / self.geolocated.len() as f64
    }

    /// The full distance-error distribution against ground truth (km),
    /// for error-CDF reporting.
    pub fn error_cdf(&self, world: &World) -> crate::cdf::Cdf {
        let mut truth: HashMap<u64, LatLon> = HashMap::new();
        for net in &world.networks {
            let cpe = world.device(net.cpe);
            truth.insert(cpe.mac.as_u64(), v6geo::network_location(world, net.id));
        }
        crate::cdf::Cdf::new(
            self.geolocated
                .iter()
                .filter_map(|g| {
                    truth
                        .get(&g.mac.as_u64())
                        .map(|t| t.distance_km(&g.location))
                })
                .collect(),
        )
    }

    /// Validates geolocations against simulator ground truth: the median
    /// error (km) between the claimed location and the device's true
    /// home-network location. Only available in simulation (the paper
    /// validated against one US ISP's ground truth).
    pub fn validate(&self, world: &World) -> Option<f64> {
        // Map CPE wired MAC → network location.
        let mut truth: HashMap<u64, LatLon> = HashMap::new();
        for net in &world.networks {
            let cpe = world.device(net.cpe);
            truth.insert(cpe.mac.as_u64(), v6geo::network_location(world, net.id));
        }
        let mut errors: Vec<f64> = self
            .geolocated
            .iter()
            .filter_map(|g| {
                truth
                    .get(&g.mac.as_u64())
                    .map(|t| t.distance_km(&g.location))
            })
            .collect();
        if errors.is_empty() {
            return None;
        }
        v6par::radix_sort_f64(&mut errors);
        Some(errors[errors.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6geo::wardrive::{bssid_for_wired, ground_truth_offset};
    use v6netsim::{DeviceKind, WorldConfig};

    /// Builds a wired population + DB where the hidden offset is honored.
    fn synthetic(oui_str: &str, n: u32) -> (Vec<Mac>, WardriveDb, i64) {
        let oui: Oui = oui_str.parse().unwrap();
        let truth = ground_truth_offset(oui);
        let mut db = WardriveDb::new();
        let mut wired = Vec::new();
        for i in 0..n {
            let w = oui.mac(i * 7 + 5);
            wired.push(w);
            db.insert(bssid_for_wired(w), LatLon::new(50.0, 10.0));
        }
        (wired, db, truth)
    }

    #[test]
    fn infers_the_hidden_offset() {
        let (wired, db, truth) = synthetic("3c:a6:2f", 60);
        let cfg = GeolocConfig::default();
        let offs = infer_offsets(&wired, &db, &cfg);
        assert_eq!(offs.len(), 1);
        assert_eq!(offs[0].offset, truth);
        assert!(offs[0].votes >= 60);
    }

    #[test]
    fn too_few_pairs_rejected() {
        let (wired, db, _) = synthetic("3c:a6:2f", 3);
        let cfg = GeolocConfig {
            min_pairs: 500,
            ..Default::default()
        };
        assert!(infer_offsets(&wired, &db, &cfg).is_empty());
    }

    #[test]
    fn geolocates_through_inferred_offset() {
        let (wired, db, _) = synthetic("3c:a6:2f", 60);
        let r = geolocate(&wired, &db, &GeolocConfig::default());
        assert_eq!(r.geolocated.len(), 60);
        assert_eq!(r.input_macs, 60);
        for g in &r.geolocated {
            assert_eq!(g.bssid, bssid_for_wired(g.mac));
        }
    }

    #[test]
    fn full_attack_against_world() {
        let w = World::build(WorldConfig::tiny(), 115);
        let db = WardriveDb::collect(&w);
        // The attacker's input: every CPE wired MAC that leaks via EUI-64.
        let leaked: Vec<Mac> = w
            .networks
            .iter()
            .map(|n| w.device(n.cpe))
            .filter(|d| {
                d.kind == DeviceKind::CpeRouter
                    && d.strategy == v6netsim::addressing::IidStrategy::Eui64
            })
            .map(|d| d.mac)
            .collect();
        assert!(leaked.len() > 50, "only {} leaked CPE", leaked.len());
        let cfg = GeolocConfig {
            min_pairs: 10,
            ..Default::default()
        };
        let r = geolocate(&leaked, &db, &cfg);
        assert!(
            !r.geolocated.is_empty(),
            "attack produced no geolocations ({} offsets)",
            r.offsets.len()
        );
        // Validation: claimed locations are the true AP locations.
        let med = r.validate(&w).expect("validation set empty");
        assert!(med < 50.0, "median error {med} km");
        // Germany should be heavily represented (AVM + coverage).
        let hist = r.country_histogram(&w);
        let de = hist
            .iter()
            .find(|(c, _)| *c == Country::new("DE"))
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(
            de as f64 / r.geolocated.len() as f64 > 0.3,
            "DE share {de}/{}",
            r.geolocated.len()
        );
    }

    #[test]
    fn unknown_oui_macs_not_geolocated() {
        let (wired, db, _) = synthetic("3c:a6:2f", 60);
        let mut input = wired.clone();
        let stranger: Mac = "00:de:ad:00:00:01".parse().unwrap();
        input.push(stranger);
        let r = geolocate(&input, &db, &GeolocConfig::default());
        assert!(r.geolocated.iter().all(|g| g.mac != stranger));
    }
}
