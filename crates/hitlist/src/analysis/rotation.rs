//! Prefix-rotation period inference from EUI-64 tracks.
//!
//! An extension in the spirit of Rye, Beverly & claffy's *Follow the
//! Scent* \[64\], which the paper builds on: because an EUI-64 IID is a
//! stable device identifier, the time between a device's /64 changes
//! reveals its ISP's **prefix-rotation policy** — a provider-level
//! privacy property inferred entirely from passive data. The simulator
//! knows the ground-truth policy, so the inference validates end to end.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use v6netsim::addressing::RotationPolicy;
use v6netsim::World;

use crate::analysis::tracking::TrackingAnalysis;

/// Inferred rotation behaviour of one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RotationEstimate {
    /// AS organization name.
    pub as_name: String,
    /// Devices (EUI-64 MACs) the estimate is based on.
    pub devices: u64,
    /// /64-change intervals observed (days), pooled over devices.
    pub samples: u64,
    /// Median interval between /64 changes, days.
    pub median_interval_days: f64,
    /// Ground-truth policy period in days (`None` = never rotates).
    pub truth_days: Option<f64>,
}

impl RotationEstimate {
    /// True when the estimate is within a factor of two of the truth.
    pub fn is_accurate(&self) -> bool {
        match self.truth_days {
            None => false, // nothing to rotate; estimate is spurious
            Some(t) => self.median_interval_days >= t / 2.0 && self.median_interval_days <= t * 2.0,
        }
    }
}

/// Infers per-AS rotation periods from EUI-64 movement timelines.
///
/// Only single-AS tracks vote (multi-AS tracks mix policies), and an AS
/// needs at least `min_samples` intervals to be reported.
pub fn infer_rotation_periods(
    world: &World,
    tracking: &TrackingAnalysis,
    min_samples: u64,
) -> Vec<RotationEstimate> {
    // Pool /64-change intervals per AS.
    let mut per_as: HashMap<u16, (u64, Vec<f64>)> = HashMap::new();
    for t in &tracking.tracks {
        if t.ases.len() != 1 || t.prefixes64.len() < 2 {
            continue;
        }
        let as_index = *t.ases.iter().next().expect("len checked");
        let entry = per_as.entry(as_index).or_insert((0, Vec::new()));
        entry.0 += 1;
        // Walk the timeline; record day gaps at /64 changes.
        let mut last: Option<(u64, u128)> = None;
        for &(day, p64, _) in &t.timeline {
            if let Some((lday, lp64)) = last {
                if lp64 != p64 && day > lday {
                    entry.1.push((day - lday) as f64);
                }
            }
            last = Some((day, p64));
        }
    }

    let mut out = Vec::new();
    for (as_index, (devices, mut intervals)) in per_as {
        if (intervals.len() as u64) < min_samples {
            continue;
        }
        v6par::radix_sort_f64(&mut intervals);
        let median = intervals[intervals.len() / 2];
        let info = &world.ases[as_index as usize].info;
        let truth_days = match info.profile.rotation {
            RotationPolicy::Never => None,
            RotationPolicy::Every(d) => Some(d.as_days()),
        };
        out.push(RotationEstimate {
            as_name: info.name.clone(),
            devices,
            samples: intervals.len() as u64,
            median_interval_days: median,
            truth_days,
        });
    }
    out.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.as_name.cmp(&b.as_name)));
    out
}

/// Renders estimates as aligned text with ground-truth comparison.
pub fn render(estimates: &[RotationEstimate]) -> String {
    let mut out = format!(
        "{:<26} {:>8} {:>8} {:>14} {:>12} {:>6}\n",
        "AS", "devices", "samples", "inferred (d)", "truth (d)", "ok"
    );
    for e in estimates {
        out.push_str(&format!(
            "{:<26} {:>8} {:>8} {:>14.1} {:>12} {:>6}\n",
            e.as_name,
            e.devices,
            e.samples,
            e.median_interval_days,
            e.truth_days
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "never".into()),
            if e.is_accurate() { "yes" } else { "~" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::tracking::analyze;
    use crate::collect::ntp_passive::NtpCorpus;
    use v6netsim::WorldConfig;

    fn estimates() -> Vec<RotationEstimate> {
        let w = World::build(WorldConfig::tiny(), 303);
        let corpus = NtpCorpus::collect_study(&w);
        let tracking = analyze(&w, &corpus, 10);
        infer_rotation_periods(&w, &tracking, 8)
    }

    #[test]
    fn daily_rotators_inferred_accurately() {
        let ests = estimates();
        assert!(!ests.is_empty(), "no AS had enough EUI-64 samples");
        // German ISPs rotate daily; with daily-queried CPE the inference
        // must land within 2x.
        let daily: Vec<&RotationEstimate> =
            ests.iter().filter(|e| e.truth_days == Some(1.0)).collect();
        assert!(!daily.is_empty(), "no daily-rotation AS measured: {ests:?}");
        let accurate = daily.iter().filter(|e| e.is_accurate()).count();
        assert!(
            accurate * 2 >= daily.len(),
            "daily rotation mis-inferred: {:?}",
            daily
        );
    }

    #[test]
    fn inferred_periods_track_truth_ordering() {
        let ests = estimates();
        // Average inferred interval for fast rotators (≤ 2 d truth) must
        // be below that of slow rotators (≥ 30 d truth).
        let mean = |f: &dyn Fn(&RotationEstimate) -> bool| -> Option<f64> {
            let xs: Vec<f64> = ests
                .iter()
                .filter(|e| f(e))
                .map(|e| e.median_interval_days)
                .collect();
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        };
        let fast = mean(&|e: &RotationEstimate| e.truth_days.map(|d| d <= 2.0).unwrap_or(false));
        let slow = mean(&|e: &RotationEstimate| e.truth_days.map(|d| d >= 30.0).unwrap_or(false));
        if let (Some(fast), Some(slow)) = (fast, slow) {
            assert!(fast < slow, "fast {fast:.1} ≥ slow {slow:.1}");
        }
    }

    #[test]
    fn render_shape() {
        let text = render(&estimates());
        assert!(text.contains("inferred"));
    }
}
