//! The paper's analyses, one module per result family.

pub mod asdb;
pub mod backscan;
pub mod compare;
pub mod entropy_dist;
pub mod geoloc;
pub mod lifetime;
pub mod outage;
pub mod patterns;
pub mod population;
pub mod rotation;
pub mod tga_eval;
pub mod tracking;
