//! Target-generation-algorithm evaluation: what is a hitlist *worth* as
//! TGA training data?
//!
//! The paper's motivation (§1): TGAs "must be trained on *some* hitlist
//! and are biased to the types of addresses contained in their training
//! data". This module measures that bias directly, in the spirit of
//! Steger et al.'s *Target Acquired?* \[68\]: train the same pattern-mining
//! TGA on different corpora, emit equal candidate budgets, probe them
//! against the same world, and compare hit rates.
//!
//! The punchline mirrors the paper: the giant passive corpus is
//! *terrible* TGA food — its addresses are ephemeral and random, so
//! patterns mined from it don't generalize — while the small active
//! hitlist's stable infrastructure addresses extrapolate well. Bigger is
//! not better for every purpose.

use serde::{Deserialize, Serialize};

use v6netsim::{SimTime, World};
use v6scan::{scan, PatternTga, Prober, RangeTga, WorldProber, Zmap6Config};

use crate::dataset::Dataset;

/// Result of evaluating one training corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TgaEval {
    /// Name of the training dataset.
    pub trained_on: String,
    /// Seed addresses the model saw.
    pub training_size: u64,
    /// Candidates emitted (≤ budget).
    pub candidates: u64,
    /// Candidates that were responsive when probed.
    pub hits: u64,
    /// Responsive candidates *not already in the training data* (the
    /// only ones that matter: a TGA that re-emits its input is useless).
    pub novel_hits: u64,
}

impl TgaEval {
    /// Hit rate over emitted candidates.
    pub fn hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.hits as f64 / self.candidates as f64
        }
    }

    /// Novel-hit rate over emitted candidates.
    pub fn novel_hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.novel_hits as f64 / self.candidates as f64
        }
    }
}

/// Which TGA family to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TgaKind {
    /// Exact-recurrence pattern mining (Entropy/IP-flavoured).
    Pattern,
    /// 6Gen-style nibble-range clustering.
    Range,
}

/// Trains a TGA of `kind` on `training`, emits up to `budget` candidates,
/// probes them from vantage point `vp_id` at time `t`.
pub fn evaluate_tga_kind(
    world: &World,
    training: &Dataset,
    kind: TgaKind,
    budget: usize,
    vp_id: u16,
    t: SimTime,
    sample_cap: usize,
) -> TgaEval {
    // Cap the training sample so corpora of wildly different sizes get
    // comparable model-fitting effort (and runtime stays bounded).
    let step = (training.len() / sample_cap.max(1)).max(1);
    let sample = training.records().iter().step_by(step).map(|r| r.addr);
    let (candidates, seeds) = match kind {
        TgaKind::Pattern => {
            let mut tga = PatternTga::new();
            tga.observe_all(sample);
            (tga.generate(budget), tga.seed_count())
        }
        TgaKind::Range => {
            let mut tga = RangeTga::new();
            tga.observe_all(sample);
            (tga.generate(budget), tga.seed_count())
        }
    };
    probe_candidates(world, training, kind, seeds, candidates, vp_id, t)
}

/// Back-compat wrapper: the pattern TGA.
pub fn evaluate_tga(
    world: &World,
    training: &Dataset,
    budget: usize,
    vp_id: u16,
    t: SimTime,
    sample_cap: usize,
) -> TgaEval {
    evaluate_tga_kind(
        world,
        training,
        TgaKind::Pattern,
        budget,
        vp_id,
        t,
        sample_cap,
    )
}

fn probe_candidates(
    world: &World,
    training: &Dataset,
    kind: TgaKind,
    seeds: u64,
    candidates: Vec<std::net::Ipv6Addr>,
    vp_id: u16,
    t: SimTime,
) -> TgaEval {
    let prober = WorldProber::new(world, vp_id);
    let cfg = Zmap6Config {
        seed: 0x76a_e7a1,
        rate_pps: 1_000_000,
        start: t,
        ..Default::default()
    };
    let result = scan(&prober, &candidates, &cfg);
    let mut hits = 0u64;
    let mut novel = 0u64;
    for r in &result.responsive {
        hits += 1;
        if !training.contains(r.target) {
            novel += 1;
        }
    }
    TgaEval {
        trained_on: format!("{} ({kind:?})", training.name()),
        training_size: seeds,
        candidates: candidates.len() as u64,
        hits,
        novel_hits: novel,
    }
}

/// Renders a comparison table.
pub fn render(evals: &[TgaEval]) -> String {
    let mut out = format!(
        "{:<20} {:>9} {:>10} {:>7} {:>9} {:>9} {:>11}\n",
        "Trained on", "seeds", "candidates", "hits", "hit rate", "novel", "novel rate"
    );
    for e in evals {
        out.push_str(&format!(
            "{:<20} {:>9} {:>10} {:>7} {:>8.1}% {:>9} {:>10.1}%\n",
            e.trained_on,
            e.training_size,
            e.candidates,
            e.hits,
            e.hit_rate() * 100.0,
            e.novel_hits,
            e.novel_hit_rate() * 100.0
        ));
    }
    out
}

/// Convenience: evaluate several corpora with the same budget.
pub fn compare_training_corpora(
    world: &World,
    corpora: &[&Dataset],
    budget: usize,
    vp_id: u16,
    t: SimTime,
) -> Vec<TgaEval> {
    corpora
        .iter()
        .flat_map(|d| {
            [TgaKind::Pattern, TgaKind::Range]
                .map(|k| evaluate_tga_kind(world, d, k, budget, vp_id, t, 50_000))
        })
        .collect()
}

/// A sanity probe helper for tests: is this address responsive right now?
pub fn responsive(world: &World, vp_id: u16, addr: std::net::Ipv6Addr, t: SimTime) -> bool {
    WorldProber::new(world, vp_id).probe(addr, 64, t).is_echo()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::active::collect_hitlist;
    use crate::collect::ntp_passive::NtpCorpus;
    use v6netsim::{SimDuration, WorldConfig};
    use v6scan::HitlistCampaignConfig;

    #[test]
    fn hitlist_trained_tga_beats_ntp_trained() {
        let w = World::build(WorldConfig::tiny(), 404);
        let corpus = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(30));
        let ntp = corpus.dataset();
        let hl = collect_hitlist(
            &w,
            0,
            &HitlistCampaignConfig {
                weeks: 2,
                ..Default::default()
            },
        );
        let t = SimTime(SimDuration::days(31).as_secs());
        let evals = compare_training_corpora(&w, &[&hl.dataset, &ntp], 2_000, 2, t);
        assert_eq!(evals.len(), 4);
        let hl_eval = &evals[0]; // hitlist-trained, pattern TGA
        let ntp_eval = &evals[2]; // NTP-trained, pattern TGA
                                  // The paper's bias point: stable infrastructure seeds generalize;
                                  // ephemeral random client seeds do not.
        assert!(
            hl_eval.hit_rate() > ntp_eval.hit_rate(),
            "hitlist-trained {:.3} ≤ ntp-trained {:.3}",
            hl_eval.hit_rate(),
            ntp_eval.hit_rate()
        );
        assert!(hl_eval.hits > 0, "hitlist-trained TGA found nothing");
    }

    #[test]
    fn empty_training_yields_nothing() {
        let w = World::build(WorldConfig::tiny(), 404);
        let empty = Dataset::from_observations("empty", Vec::new());
        let e = evaluate_tga(&w, &empty, 1_000, 0, SimTime::START, 1_000);
        assert_eq!(e.candidates, 0);
        assert_eq!(e.hit_rate(), 0.0);
    }

    #[test]
    fn render_shape() {
        let e = TgaEval {
            trained_on: "x".into(),
            training_size: 10,
            candidates: 100,
            hits: 5,
            novel_hits: 3,
        };
        let text = render(&[e]);
        assert!(text.contains("novel rate"));
        assert!(text.contains("5.0%"));
    }
}
