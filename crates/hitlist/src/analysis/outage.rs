//! Outage detection from the passive corpus.
//!
//! One of the applications the paper's introduction motivates for live-
//! address knowledge [20, 39, 53, 59]: a longitudinal passive corpus
//! doubles as an outage sensor — when an AS goes dark, its NTP queries
//! stop. This module builds per-AS daily activity series and flags days
//! whose query volume collapses relative to the AS's own baseline.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use v6netsim::World;

use crate::collect::ntp_passive::NtpCorpus;

/// Detector parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OutageDetectorConfig {
    /// A day is anomalous when volume < `dip_fraction` × median.
    pub dip_fraction: f64,
    /// Minimum median daily queries for an AS to be monitored at all
    /// (tiny ASes are too noisy to alarm on).
    pub min_median: u64,
    /// Minimum consecutive anomalous days to report an outage.
    pub min_days: u64,
}

impl Default for OutageDetectorConfig {
    fn default() -> Self {
        OutageDetectorConfig {
            dip_fraction: 0.25,
            min_median: 20,
            min_days: 1,
        }
    }
}

/// One detected outage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectedOutage {
    /// AS organization name.
    pub as_name: String,
    /// First dark day.
    pub start_day: u64,
    /// Number of consecutive dark days.
    pub duration_days: u64,
    /// The AS's median daily query volume (baseline).
    pub baseline: u64,
}

/// Per-AS daily query-count series.
pub fn daily_series(corpus: &NtpCorpus) -> HashMap<u16, Vec<u64>> {
    let days = (corpus.window.as_secs() / 86_400).max(1) as usize;
    let start_day = corpus.start.as_secs() / 86_400;
    let mut out: HashMap<u16, Vec<u64>> = HashMap::new();
    for o in &corpus.observations {
        let day = (o.t as u64 / 86_400).saturating_sub(start_day) as usize;
        let series = out.entry(o.as_index).or_insert_with(|| vec![0; days]);
        if day < series.len() {
            series[day] += 1;
        }
    }
    out
}

/// Runs the detector over a corpus.
pub fn detect_outages(
    world: &World,
    corpus: &NtpCorpus,
    cfg: &OutageDetectorConfig,
) -> Vec<DetectedOutage> {
    let mut outages = Vec::new();
    for (as_index, series) in daily_series(corpus) {
        let mut sorted: Vec<u64> = series.clone();
        v6par::radix_sort_by_key(&mut sorted, |&v| (u128::from(v), 0));
        let median = sorted[sorted.len() / 2];
        if median < cfg.min_median {
            continue;
        }
        let threshold = (median as f64 * cfg.dip_fraction) as u64;
        let mut run_start: Option<u64> = None;
        let flush = |start: Option<u64>, end: u64, outages: &mut Vec<DetectedOutage>| {
            if let Some(s) = start {
                if end - s >= cfg.min_days {
                    outages.push(DetectedOutage {
                        as_name: world.ases[as_index as usize].info.name.clone(),
                        start_day: s,
                        duration_days: end - s,
                        baseline: median,
                    });
                }
            }
        };
        for (day, &n) in series.iter().enumerate() {
            if n <= threshold {
                if run_start.is_none() {
                    run_start = Some(day as u64);
                }
            } else {
                flush(run_start.take(), day as u64, &mut outages);
            }
        }
        flush(run_start.take(), series.len() as u64, &mut outages);
    }
    outages.sort_by(|a, b| {
        a.as_name
            .cmp(&b.as_name)
            .then(a.start_day.cmp(&b.start_day))
    });
    outages
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::config::OutageSpec;
    use v6netsim::{SimDuration, SimTime, WorldConfig};

    fn world_with_outage() -> World {
        let mut cfg = WorldConfig::tiny();
        cfg.outages.push(OutageSpec {
            as_name: "Reliance Jio".into(),
            start_day: 20,
            duration_days: 4,
        });
        World::build(cfg, 505)
    }

    #[test]
    fn injected_outage_is_detected() {
        let w = world_with_outage();
        let corpus = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(40));
        let found = detect_outages(&w, &corpus, &OutageDetectorConfig::default());
        let jio: Vec<&DetectedOutage> = found
            .iter()
            .filter(|o| o.as_name == "Reliance Jio")
            .collect();
        assert!(!jio.is_empty(), "injected outage missed: {found:?}");
        let o = jio[0];
        assert!(o.start_day >= 19 && o.start_day <= 21, "{o:?}");
        assert!(o.duration_days >= 3 && o.duration_days <= 6, "{o:?}");
    }

    #[test]
    fn no_false_alarms_without_outage() {
        let w = World::build(WorldConfig::tiny(), 505);
        let corpus = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(40));
        let found = detect_outages(&w, &corpus, &OutageDetectorConfig::default());
        assert!(
            found.is_empty(),
            "false alarms on a healthy world: {found:?}"
        );
    }

    #[test]
    fn dark_as_answers_no_probes() {
        let w = world_with_outage();
        let jio = w
            .ases
            .iter()
            .find(|a| a.info.name == "Reliance Jio")
            .unwrap();
        let sub = jio.subscriber_ids[0];
        let during = SimTime(SimDuration::days(21).as_secs());
        let after = SimTime(SimDuration::days(30).as_secs());
        let addr_during = w.cellular_addr_at(sub, during).unwrap();
        assert_eq!(
            w.probe_echo(0, addr_during, during),
            v6netsim::ProbeOutcome::NoResponse
        );
        // After the outage the same subscriber is probeable again (modulo
        // the usual respond probability — try several subscribers).
        let any_responds = jio.subscriber_ids.iter().take(40).any(|&s| {
            w.cellular_addr_at(s, after)
                .map(|a| w.probe_echo(0, a, after).is_echo())
                .unwrap_or(false)
        });
        assert!(any_responds, "Jio still dark after the outage window");
    }

    #[test]
    fn series_totals_match_corpus() {
        let w = World::build(WorldConfig::tiny(), 505);
        let corpus = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(10));
        let series = daily_series(&corpus);
        let total: u64 = series.values().flat_map(|s| s.iter()).sum();
        assert_eq!(total, corpus.len() as u64);
    }
}
