//! IID-entropy distributions — Figures 1, 3 and 4.
//!
//! The paper's device-type lens: a dataset's CDF of normalized IID
//! entropy separates manually addressed infrastructure (CAIDA ≈ 0),
//! mixed infrastructure+CPE (Hitlist, median ≈ 0.7) and random client
//! addresses (NTP corpus, median ≈ 0.8). Per-AS CDFs (Fig. 4) expose
//! operator addressing schemes like Reliance Jio's low-4-byte pattern.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use v6addr::iid_entropy;
use v6netsim::World;

use crate::cdf::Cdf;
use crate::collect::ntp_passive::NtpCorpus;
use crate::dataset::Dataset;

/// The entropy CDF of a dataset's unique addresses.
pub fn entropy_cdf(dataset: &Dataset) -> Cdf {
    Cdf::new(
        dataset
            .records()
            .iter()
            .map(|r| iid_entropy(r.iid()))
            .collect(),
    )
}

/// Figure 1: per-dataset entropy CDFs plus pairwise intersections with
/// the reference.
#[derive(Debug)]
pub struct Figure1 {
    /// `(name, cdf)` per dataset, reference first.
    pub datasets: Vec<(String, Cdf)>,
    /// `(name, cdf)` for each reference ∩ other intersection.
    pub intersections: Vec<(String, Cdf)>,
}

/// Computes Figure 1.
pub fn figure1(reference: &Dataset, others: &[&Dataset]) -> Figure1 {
    let mut datasets = vec![(reference.name().to_string(), entropy_cdf(reference))];
    let mut intersections = Vec::new();
    let ref_set = reference.addr_set();
    for d in others {
        datasets.push((d.name().to_string(), entropy_cdf(d)));
        let inter = ref_set.intersection(&d.addr_set());
        let cdf = Cdf::new(inter.iter().map(|a| iid_entropy(v6addr::iid(a))).collect());
        intersections.push((format!("{} ∩ {}", reference.name(), d.name()), cdf));
    }
    Figure1 {
        datasets,
        intersections,
    }
}

/// One AS's entropy distribution (Figure 4 rows).
#[derive(Debug, Serialize, Deserialize)]
pub struct AsEntropyRow {
    /// AS organization name.
    pub name: String,
    /// Unique addresses observed from it.
    pub addresses: u64,
    /// Median normalized entropy.
    pub median_entropy: f64,
    /// Fraction with entropy ≥ 0.75.
    pub high_fraction: f64,
    /// Fraction with entropy < 0.25.
    pub low_fraction: f64,
}

/// Figure 4: entropy CDFs of the top-`k` ASes of a corpus over a window.
#[derive(Debug)]
pub struct Figure4 {
    /// Per-AS rows, largest AS first.
    pub rows: Vec<AsEntropyRow>,
    /// The CDFs backing the rows, same order.
    pub cdfs: Vec<(String, Cdf)>,
}

/// Computes Figure 4 over a sub-window of the corpus
/// (`[from, to)` in study seconds; the full study for 4a, one day for 4b).
pub fn figure4(world: &World, corpus: &NtpCorpus, from: u32, to: u32, k: usize) -> Figure4 {
    // Unique addresses per AS within the window.
    let mut per_as: HashMap<u16, Vec<u128>> = HashMap::new();
    for o in &corpus.observations {
        if o.t >= from && o.t < to {
            per_as.entry(o.as_index).or_default().push(o.addr);
        }
    }
    let mut sized: Vec<(u16, Vec<u128>)> = per_as
        .into_iter()
        .map(|(a, mut v)| {
            v6par::radix_sort_by_key(&mut v, |&b| (b, 0));
            v.dedup();
            (a, v)
        })
        .collect();
    sized.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    sized.truncate(k);

    let mut rows = Vec::new();
    let mut cdfs = Vec::new();
    for (as_index, addrs) in sized {
        let name = world.ases[as_index as usize].info.name.clone();
        let hs: Vec<f64> = addrs
            .iter()
            .map(|&b| iid_entropy(v6addr::iid(std::net::Ipv6Addr::from(b))))
            .collect();
        let n = hs.len() as f64;
        let high = hs.iter().filter(|&&h| h >= 0.75).count() as f64 / n;
        let low = hs.iter().filter(|&&h| h < 0.25).count() as f64 / n;
        let cdf = Cdf::new(hs);
        rows.push(AsEntropyRow {
            name: name.clone(),
            addresses: addrs.len() as u64,
            median_entropy: cdf.median().unwrap_or(0.0),
            high_fraction: high,
            low_fraction: low,
        });
        cdfs.push((name, cdf));
    }
    Figure4 { rows, cdfs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Observation;
    use v6addr::Iid;
    use v6netsim::{SimDuration, SimTime, WorldConfig};

    fn ds(name: &str, iids: &[u64]) -> Dataset {
        Dataset::from_observations(
            name,
            iids.iter().enumerate().map(|(i, &iid)| Observation {
                addr: v6addr::join(0x2a00_0000_0000_0000 + i as u64, Iid::new(iid)),
                t: SimTime(0),
            }),
        )
    }

    #[test]
    fn entropy_cdf_separates_low_and_high() {
        let low = ds("low", &[1, 2, 3, 4]);
        let high = ds("high", &[0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210]);
        assert!(entropy_cdf(&low).median().unwrap() < 0.2);
        assert!(entropy_cdf(&high).median().unwrap() > 0.9);
    }

    #[test]
    fn figure1_includes_intersections() {
        // Shared addresses must appear in the intersection CDF.
        let shared = v6addr::join(0x2a00_0000_0000_0001, Iid::new(0xdead_beef_0000_0001));
        let mut a = ds("A", &[1, 2]);
        let mut b = ds("B", &[3]);
        a = Dataset::from_observations(
            "A",
            a.records()
                .iter()
                .map(|r| Observation {
                    addr: r.addr,
                    t: SimTime(0),
                })
                .chain([Observation {
                    addr: shared,
                    t: SimTime(0),
                }]),
        );
        b = Dataset::from_observations(
            "B",
            b.records()
                .iter()
                .map(|r| Observation {
                    addr: r.addr,
                    t: SimTime(0),
                })
                .chain([Observation {
                    addr: shared,
                    t: SimTime(0),
                }]),
        );
        let f = figure1(&a, &[&b]);
        assert_eq!(f.datasets.len(), 2);
        assert_eq!(f.intersections.len(), 1);
        assert_eq!(f.intersections[0].1.len(), 1);
    }

    #[test]
    fn figure4_on_tiny_corpus() {
        let w = World::build(WorldConfig::tiny(), 107);
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(10));
        let f = figure4(&w, &c, 0, SimDuration::days(10).as_secs() as u32, 5);
        assert!(!f.rows.is_empty());
        assert!(f.rows.len() <= 5);
        // Rows are sorted by size, descending.
        for pair in f.rows.windows(2) {
            assert!(pair[0].addresses >= pair[1].addresses);
        }
        // Top ASes in the corpus are client ASes with mostly-random IIDs.
        assert!(
            f.rows[0].median_entropy > 0.5,
            "top AS median {}",
            f.rows[0].median_entropy
        );
        // Window filter works: an empty window yields nothing.
        let empty = figure4(&w, &c, 0, 0, 5);
        assert!(empty.rows.is_empty());
    }
}
