//! EUI-64 prevalence and device tracking — §5.1, §5.2, Table 2,
//! Figures 6 and 7.
//!
//! EUI-64 SLAAC embeds the device MAC in the IID, so the IID survives
//! prefix rotations, provider changes, and WiFi↔cellular handoffs. A
//! purely passive observer holding a large longitudinal corpus can
//! therefore follow individual devices across networks. This module
//! quantifies the exposure and reproduces the paper's five-way taxonomy
//! of why one MAC shows up in multiple /64s.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use v6addr::eui64::expected_random_eui64;
use v6addr::{Iid, Mac};
use v6netsim::{Country, World};

use crate::cdf::Cdf;
use crate::collect::ntp_passive::NtpCorpus;

/// §5.1 headline numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Eui64Stats {
    /// Unique addresses in the corpus.
    pub corpus_addresses: u64,
    /// Unique addresses with the EUI-64 signature.
    pub eui64_addresses: u64,
    /// Expected apparent-EUI-64 count if all IIDs were random (2⁻¹⁶·N).
    pub expected_random: f64,
    /// Unique embedded MAC addresses.
    pub unique_macs: u64,
}

impl Eui64Stats {
    /// EUI-64 share of the corpus (paper: ~3%).
    pub fn fraction(&self) -> f64 {
        if self.corpus_addresses == 0 {
            0.0
        } else {
            self.eui64_addresses as f64 / self.corpus_addresses as f64
        }
    }
}

/// A manufacturer row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManufacturerCount {
    /// Vendor name, or "Unlisted".
    pub manufacturer: String,
    /// Unique MACs resolved to it.
    pub macs: u64,
}

/// The movement history of one embedded MAC.
#[derive(Debug, Clone)]
pub struct MacTrack {
    /// The MAC.
    pub mac: Mac,
    /// First observation (study seconds).
    pub first: u64,
    /// Last observation.
    pub last: u64,
    /// Distinct /64s it appeared in, ordered by first appearance.
    pub prefixes64: Vec<u128>,
    /// Distinct origin ASes.
    pub ases: BTreeSet<u16>,
    /// Distinct countries.
    pub countries: BTreeSet<Country>,
    /// Number of /64 *changes* in the time-ordered observation sequence.
    pub transitions: u64,
    /// Time-ordered `(t, /64 bits, as_index)` samples (subsampled to one
    /// per (day, /64) to bound memory).
    pub timeline: Vec<(u64, u128, u16)>,
}

impl MacTrack {
    /// Observation span in seconds.
    pub fn lifetime(&self) -> u64 {
        self.last - self.first
    }
}

/// The paper's five-way classification (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrackClass {
    /// Low AS / low country / low transitions: stationary device.
    MostlyStatic,
    /// One AS, one country, many /64 transitions: the ISP rotates the
    /// delegated prefix under a stationary device (Fig. 7a).
    PrefixReassignment,
    /// Multiple countries: several physical devices sharing one MAC
    /// (manufacturer MAC reuse, Fig. 7b).
    MacReuse,
    /// Multiple ASes, one country, few transitions: a device that
    /// switched service providers (Fig. 7c).
    ChangingProviders,
    /// Multiple ASes, one country, many transitions: a device moving
    /// between networks — user tracking (Fig. 7d).
    UserMovement,
}

impl TrackClass {
    /// All classes in the paper's presentation order.
    pub const ALL: [TrackClass; 5] = [
        TrackClass::MostlyStatic,
        TrackClass::PrefixReassignment,
        TrackClass::MacReuse,
        TrackClass::ChangingProviders,
        TrackClass::UserMovement,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TrackClass::MostlyStatic => "Mostly static hosts",
            TrackClass::PrefixReassignment => "Likely prefix reassignment",
            TrackClass::MacReuse => "Likely MAC reuse",
            TrackClass::ChangingProviders => "Changing providers",
            TrackClass::UserMovement => "Likely user movement",
        }
    }
}

/// Classifies one multi-/64 track using the paper's heuristics
/// (`>1` AS high, `>1` country high, `> transition_threshold` high).
pub fn classify(track: &MacTrack, transition_threshold: u64) -> TrackClass {
    let many_ases = track.ases.len() > 1;
    let many_countries = track.countries.len() > 1;
    let many_transitions = track.transitions > transition_threshold;
    if many_countries {
        TrackClass::MacReuse
    } else if many_ases {
        if many_transitions {
            TrackClass::UserMovement
        } else {
            TrackClass::ChangingProviders
        }
    } else if many_transitions {
        TrackClass::PrefixReassignment
    } else {
        TrackClass::MostlyStatic
    }
}

/// Full §5 tracking analysis output.
#[derive(Debug)]
pub struct TrackingAnalysis {
    /// §5.1 headline numbers.
    pub stats: Eui64Stats,
    /// Table 2: manufacturers by unique MAC count, descending.
    pub manufacturers: Vec<ManufacturerCount>,
    /// Per-MAC tracks (all EUI-64 MACs).
    pub tracks: Vec<MacTrack>,
    /// Fig. 6a: CDF of EUI-64 IID lifetimes (seconds).
    pub lifetime_cdf: Cdf,
    /// Fig. 6b: CCDF source — per-MAC distinct-/64 counts.
    pub prefix_count_cdf: Cdf,
    /// MACs appearing in ≥ 2 /64s (the trackable population).
    pub multi_prefix_macs: u64,
    /// `(class, count)` over the multi-/64 population.
    pub class_counts: Vec<(TrackClass, u64)>,
    /// The transition threshold used.
    pub transition_threshold: u64,
}

/// Runs the tracking analysis over a passive corpus.
pub fn analyze(world: &World, corpus: &NtpCorpus, transition_threshold: u64) -> TrackingAnalysis {
    // Unique addresses and the EUI-64 subset.
    let mut addrs: Vec<u128> = Vec::with_capacity(corpus.observations.len());
    addrs.extend(corpus.observations.iter().map(|o| o.addr));
    v6par::radix_sort_by_key(&mut addrs, |&b| (b, 0));
    addrs.dedup();
    let corpus_addresses = addrs.len() as u64;
    let eui64_addresses = addrs
        .iter()
        .filter(|&&a| Iid::new(a as u64).looks_like_eui64())
        .count() as u64;

    // Group EUI-64 observations per MAC.
    let mut per_mac: HashMap<u64, Vec<(u64, u128, u16)>> = HashMap::new();
    for o in &corpus.observations {
        let iid = Iid::new(o.addr as u64);
        if let Some(mac) = iid.to_mac() {
            per_mac.entry(mac.as_u64()).or_default().push((
                o.t as u64,
                o.addr >> 64 << 64,
                o.as_index,
            ));
        }
    }

    let mut tracks: Vec<MacTrack> = Vec::with_capacity(per_mac.len());
    for (mac_bits, mut obs) in per_mac {
        obs.sort_unstable();
        let mac = Mac::from_u64(mac_bits);
        let mut prefixes64: Vec<u128> = Vec::new();
        let mut ases = BTreeSet::new();
        let mut countries = BTreeSet::new();
        let mut transitions = 0u64;
        let mut last_p64: Option<u128> = None;
        let mut timeline: Vec<(u64, u128, u16)> = Vec::new();
        for &(t, p64, as_index) in &obs {
            if !prefixes64.contains(&p64) {
                prefixes64.push(p64);
            }
            ases.insert(as_index);
            countries.insert(world.ases[as_index as usize].info.country);
            if let Some(lp) = last_p64 {
                if lp != p64 {
                    transitions += 1;
                }
            }
            last_p64 = Some(p64);
            // One timeline sample per (day, /64).
            let day = t / 86_400;
            if timeline
                .last()
                .map(|&(d, p, _)| d != day || p != p64)
                .unwrap_or(true)
            {
                timeline.push((day, p64, as_index));
            }
        }
        tracks.push(MacTrack {
            mac,
            first: obs.first().map(|&(t, _, _)| t).unwrap_or(0),
            last: obs.last().map(|&(t, _, _)| t).unwrap_or(0),
            prefixes64,
            ases,
            countries,
            transitions,
            timeline,
        });
    }
    tracks.sort_by_key(|t| t.mac);

    // Table 2.
    let mut vendor_counts: HashMap<&str, u64> = HashMap::new();
    for t in &tracks {
        *vendor_counts
            .entry(world.oui_db.name_or_unlisted(t.mac.oui()))
            .or_insert(0) += 1;
    }
    let mut manufacturers: Vec<ManufacturerCount> = vendor_counts
        .into_iter()
        .map(|(name, macs)| ManufacturerCount {
            manufacturer: name.to_string(),
            macs,
        })
        .collect();
    manufacturers.sort_by(|a, b| {
        b.macs
            .cmp(&a.macs)
            .then(a.manufacturer.cmp(&b.manufacturer))
    });

    // Figures 6a/6b and the classification.
    let lifetime_cdf = Cdf::new(tracks.iter().map(|t| t.lifetime() as f64).collect());
    let prefix_count_cdf = Cdf::new(tracks.iter().map(|t| t.prefixes64.len() as f64).collect());
    let multi: Vec<&MacTrack> = tracks.iter().filter(|t| t.prefixes64.len() >= 2).collect();
    let mut class_counts: HashMap<TrackClass, u64> = HashMap::new();
    for t in &multi {
        *class_counts
            .entry(classify(t, transition_threshold))
            .or_insert(0) += 1;
    }

    TrackingAnalysis {
        stats: Eui64Stats {
            corpus_addresses,
            eui64_addresses,
            expected_random: expected_random_eui64(corpus_addresses),
            unique_macs: tracks.len() as u64,
        },
        manufacturers,
        multi_prefix_macs: multi.len() as u64,
        class_counts: TrackClass::ALL
            .iter()
            .map(|&c| (c, *class_counts.get(&c).unwrap_or(&0)))
            .collect(),
        lifetime_cdf,
        prefix_count_cdf,
        tracks,
        transition_threshold,
    }
}

/// A Figure 7 exemplar: one MAC's movement timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exemplar {
    /// The MAC (as text, to keep the export serde-friendly).
    pub mac: String,
    /// Which tracking class it illustrates.
    pub class: TrackClass,
    /// `(day, prefix-index, AS name)` samples; prefix-index is the rank
    /// of the /64 by first appearance (the paper's y-axis).
    pub timeline: Vec<(u64, usize, String)>,
}

/// Extracts one exemplar per non-static class (Figure 7a–d), choosing
/// the track with the richest timeline in each class.
pub fn exemplars(world: &World, analysis: &TrackingAnalysis) -> Vec<Exemplar> {
    let mut out = Vec::new();
    for class in [
        TrackClass::PrefixReassignment,
        TrackClass::MacReuse,
        TrackClass::ChangingProviders,
        TrackClass::UserMovement,
    ] {
        let best = analysis
            .tracks
            .iter()
            .filter(|t| t.prefixes64.len() >= 2)
            .filter(|t| classify(t, analysis.transition_threshold) == class)
            .max_by_key(|t| t.timeline.len());
        if let Some(t) = best {
            let index_of = |p: u128| t.prefixes64.iter().position(|&x| x == p).unwrap_or(0);
            out.push(Exemplar {
                mac: t.mac.to_string(),
                class,
                timeline: t
                    .timeline
                    .iter()
                    .map(|&(day, p64, ai)| {
                        (
                            day,
                            index_of(p64),
                            world.ases[ai as usize].info.name.clone(),
                        )
                    })
                    .collect(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::time::STUDY_DURATION;
    use v6netsim::{SimTime, WorldConfig};

    fn analysis() -> (World, TrackingAnalysis) {
        let w = World::build(WorldConfig::tiny(), 113);
        let corpus = NtpCorpus::collect(&w, SimTime::START, STUDY_DURATION);
        let a = analyze(&w, &corpus, 10);
        (w, a)
    }

    #[test]
    fn eui64_population_is_real_not_random() {
        let (_w, a) = analysis();
        assert!(a.stats.eui64_addresses > 0);
        // The paper's §5.1 argument: observed ≫ expected-if-random.
        assert!(
            a.stats.eui64_addresses as f64 > 20.0 * a.stats.expected_random.max(1.0),
            "observed {} vs expected random {:.1}",
            a.stats.eui64_addresses,
            a.stats.expected_random
        );
        assert!(a.stats.unique_macs > 0);
        assert!(a.stats.unique_macs <= a.stats.eui64_addresses);
        // EUI-64 share in the low percent range (paper: 3%).
        let f = a.stats.fraction();
        assert!((0.005..0.25).contains(&f), "EUI-64 fraction {f}");
    }

    #[test]
    fn table2_unlisted_dominates() {
        let (_w, a) = analysis();
        assert!(!a.manufacturers.is_empty());
        assert_eq!(
            a.manufacturers[0].manufacturer,
            "Unlisted",
            "top makers: {:?}",
            &a.manufacturers[..a.manufacturers.len().min(3)]
        );
        let total: u64 = a.manufacturers.iter().map(|m| m.macs).sum();
        assert_eq!(total, a.stats.unique_macs);
    }

    #[test]
    fn rotation_makes_macs_multi_prefix() {
        let (_w, a) = analysis();
        // Daily prefix rotation in many ASes: EUI-64 devices must appear
        // in multiple /64s.
        assert!(
            a.multi_prefix_macs as f64 / a.stats.unique_macs as f64 > 0.3,
            "{}/{} multi-prefix",
            a.multi_prefix_macs,
            a.stats.unique_macs
        );
        let sum: u64 = a.class_counts.iter().map(|&(_, n)| n).sum();
        assert_eq!(sum, a.multi_prefix_macs);
    }

    #[test]
    fn prefix_reassignment_is_a_dominant_class() {
        let (_w, a) = analysis();
        let count = |c: TrackClass| {
            a.class_counts
                .iter()
                .find(|&&(k, _)| k == c)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        // Static CPE/IoT under rotating prefixes → PrefixReassignment and
        // MostlyStatic must dominate; movement classes exist but small.
        let dominant = count(TrackClass::PrefixReassignment) + count(TrackClass::MostlyStatic);
        assert!(
            dominant > a.multi_prefix_macs / 2,
            "dominant {dominant} of {}",
            a.multi_prefix_macs
        );
    }

    #[test]
    fn user_movement_detected_for_dual_homed_phones() {
        let (_w, a) = analysis();
        let movement = a
            .class_counts
            .iter()
            .find(|&&(k, _)| k == TrackClass::UserMovement)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(movement > 0, "no user-movement tracks found");
    }

    #[test]
    fn classify_rules() {
        let mk = |ases: &[u16], countries: &[&str], trans: u64| MacTrack {
            mac: Mac::ZERO,
            first: 0,
            last: 100,
            prefixes64: vec![0, 1],
            ases: ases.iter().copied().collect(),
            countries: countries.iter().map(|c| Country::new(c)).collect(),
            transitions: trans,
            timeline: Vec::new(),
        };
        assert_eq!(
            classify(&mk(&[1], &["DE"], 2), 10),
            TrackClass::MostlyStatic
        );
        assert_eq!(
            classify(&mk(&[1], &["DE"], 50), 10),
            TrackClass::PrefixReassignment
        );
        assert_eq!(
            classify(&mk(&[1, 2], &["DE", "FR"], 50), 10),
            TrackClass::MacReuse
        );
        assert_eq!(
            classify(&mk(&[1, 2], &["DE"], 3), 10),
            TrackClass::ChangingProviders
        );
        assert_eq!(
            classify(&mk(&[1, 2], &["DE"], 50), 10),
            TrackClass::UserMovement
        );
    }

    #[test]
    fn exemplars_cover_classes_present() {
        let (w, a) = analysis();
        let ex = exemplars(&w, &a);
        assert!(!ex.is_empty());
        for e in &ex {
            assert!(!e.timeline.is_empty());
            // Timeline days are non-decreasing.
            for w2 in e.timeline.windows(2) {
                assert!(w2[1].0 >= w2[0].0);
            }
        }
        // Prefix reassignment exemplar must visit several prefixes.
        if let Some(e) = ex
            .iter()
            .find(|e| e.class == TrackClass::PrefixReassignment)
        {
            let distinct: BTreeSet<usize> = e.timeline.iter().map(|&(_, p, _)| p).collect();
            assert!(distinct.len() >= 3, "only {} prefixes", distinct.len());
        }
    }

    #[test]
    fn fig6_sources_consistent() {
        let (_w, a) = analysis();
        assert_eq!(a.lifetime_cdf.len(), a.tracks.len());
        assert_eq!(a.prefix_count_cdf.len(), a.tracks.len());
        // CCDF at 1.5 = fraction of MACs in ≥2 /64s.
        let frac = a.prefix_count_cdf.fraction_above(1.5);
        assert!((frac - a.multi_prefix_macs as f64 / a.tracks.len() as f64).abs() < 1e-9);
    }
}
