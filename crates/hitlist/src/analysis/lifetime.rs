//! Address and IID lifetimes — Figure 2.
//!
//! * **Fig. 2a**: a CCDF of per-address observation spans. The paper's
//!   headline: >60% of the 7.9 B addresses were seen exactly once, while
//!   1.2% persisted a week and 0.03% more than six months.
//! * **Fig. 2b**: a CDF of per-*IID* lifetimes split by entropy band —
//!   low-entropy IIDs (manual, EUI-64-ish) persist; high-entropy privacy
//!   IIDs evaporate.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use v6addr::{iid_entropy, EntropyClass, Iid};

use crate::cdf::Cdf;
use crate::dataset::Dataset;

/// Figure 2a summary statistics plus the CCDF.
#[derive(Debug)]
pub struct AddressLifetimes {
    /// CCDF over lifetimes in seconds.
    pub ccdf: Cdf,
    /// Fraction observed exactly once (lifetime 0 *and* count 1).
    pub seen_once: f64,
    /// Fraction observed ≥ 1 week.
    pub week_or_longer: f64,
    /// Fraction observed ≥ 30 days.
    pub month_or_longer: f64,
    /// Fraction observed ≥ 180 days.
    pub six_months_or_longer: f64,
}

/// Computes Figure 2a over a dataset.
pub fn address_lifetimes(dataset: &Dataset) -> AddressLifetimes {
    let n = dataset.len().max(1) as f64;
    let lifetimes: Vec<f64> = dataset
        .records()
        .iter()
        .map(|r| r.lifetime().as_secs() as f64)
        .collect();
    let seen_once = dataset.records().iter().filter(|r| r.count == 1).count() as f64 / n;
    let frac_ge = |days: f64| -> f64 {
        lifetimes.iter().filter(|&&l| l >= days * 86_400.0).count() as f64 / n
    };
    AddressLifetimes {
        seen_once,
        week_or_longer: frac_ge(7.0),
        month_or_longer: frac_ge(30.0),
        six_months_or_longer: frac_ge(180.0),
        ccdf: Cdf::new(lifetimes),
    }
}

/// Per-IID lifetime record (an IID may recur across many addresses).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IidLifetime {
    /// The IID.
    pub iid: u64,
    /// Normalized entropy.
    pub entropy: f64,
    /// First observation (study seconds).
    pub first: u64,
    /// Last observation.
    pub last: u64,
    /// Distinct addresses it appeared in.
    pub addresses: u64,
}

impl IidLifetime {
    /// Lifetime in seconds.
    pub fn lifetime(&self) -> u64 {
        self.last - self.first
    }
}

/// Figure 2b: per-entropy-band IID lifetime CDFs.
#[derive(Debug)]
pub struct IidLifetimes {
    /// All per-IID records.
    pub iids: Vec<IidLifetime>,
    /// `(band, lifetime CDF in seconds)` for the three entropy bands.
    pub by_class: Vec<(EntropyClass, Cdf)>,
}

/// Aggregates a dataset's records per IID and computes Figure 2b.
pub fn iid_lifetimes(dataset: &Dataset) -> IidLifetimes {
    let mut map: HashMap<u64, IidLifetime> = HashMap::new();
    for r in dataset.records() {
        let iid = Iid::from_addr(r.addr);
        let e = map.entry(iid.as_u64()).or_insert_with(|| IidLifetime {
            iid: iid.as_u64(),
            entropy: iid_entropy(iid),
            first: u64::MAX,
            last: 0,
            addresses: 0,
        });
        e.first = e.first.min(r.first.as_secs());
        e.last = e.last.max(r.last.as_secs());
        e.addresses += 1;
    }
    let iids: Vec<IidLifetime> = map.into_values().collect();
    let by_class = EntropyClass::ALL
        .iter()
        .map(|&class| {
            let samples: Vec<f64> = iids
                .iter()
                .filter(|i| EntropyClass::of_value(i.entropy) == class)
                .map(|i| i.lifetime() as f64)
                .collect();
            (class, Cdf::new(samples))
        })
        .collect();
    IidLifetimes { iids, by_class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Observation;
    use v6netsim::SimTime;

    fn obs(upper: u64, iid: u64, t: u64) -> Observation {
        Observation {
            addr: v6addr::join(upper, Iid::new(iid)),
            t: SimTime(t),
        }
    }

    const DAY: u64 = 86_400;

    #[test]
    fn address_lifetime_fractions() {
        let d = Dataset::from_observations(
            "t",
            vec![
                obs(1, 0x10, 0), // once
                obs(2, 0x20, 0), // once
                obs(3, 0x30, 0),
                obs(3, 0x30, 8 * DAY), // ≥ week
                obs(4, 0x40, 0),
                obs(4, 0x40, 200 * DAY), // ≥ 6 months
            ],
        );
        let lt = address_lifetimes(&d);
        assert!((lt.seen_once - 0.5).abs() < 1e-12);
        assert!((lt.week_or_longer - 0.5).abs() < 1e-12);
        assert!((lt.month_or_longer - 0.25).abs() < 1e-12);
        assert!((lt.six_months_or_longer - 0.25).abs() < 1e-12);
        assert_eq!(lt.ccdf.len(), 4);
    }

    #[test]
    fn iid_lifetime_spans_addresses() {
        // The same EUI-64 IID in two prefixes: lifetime spans both.
        let iid = Iid::from_mac("00:11:22:33:44:55".parse().unwrap()).as_u64();
        let d = Dataset::from_observations(
            "t",
            vec![obs(1, iid, 0), obs(2, iid, 40 * DAY), obs(9, 0xabc, 0)],
        );
        let il = iid_lifetimes(&d);
        let rec = il.iids.iter().find(|i| i.iid == iid).unwrap();
        assert_eq!(rec.lifetime(), 40 * DAY);
        assert_eq!(rec.addresses, 2);
    }

    #[test]
    fn class_split_covers_all_iids() {
        let d = Dataset::from_observations(
            "t",
            vec![
                obs(1, 0x1, 0),                   // low entropy
                obs(2, 0x0f0f_0f0f_0f0f_0f0f, 0), // medium (0.25)
                obs(3, 0x0123_4567_89ab_cdef, 0), // high
            ],
        );
        let il = iid_lifetimes(&d);
        let total: usize = il.by_class.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(total, il.iids.len());
        assert_eq!(il.by_class.len(), 3);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_observations("e", Vec::new());
        let lt = address_lifetimes(&d);
        assert_eq!(lt.seen_once, 0.0);
        let il = iid_lifetimes(&d);
        assert!(il.iids.is_empty());
    }
}
