//! Empirical distribution utilities (CDF/CCDF) for figure series.
//!
//! Every figure in the paper is a CDF or CCDF; this module turns raw
//! samples into quantiles and fixed-grid series that the bench harness
//! prints next to the paper's curves.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        v6par::radix_sort_f64(&mut samples);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// P(X > x) — the CCDF.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by nearest-rank; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// A plottable series: `points` evenly spaced x values over
    /// `[lo, hi]` with the CDF evaluated at each.
    pub fn series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && hi >= lo);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// A plottable CCDF series.
    pub fn ccdf_series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        self.series(lo, hi, points)
            .into_iter()
            .map(|(x, y)| (x, 1.0 - y))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fractions() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(2.0), 0.5);
        assert_eq!(c.fraction_at_or_below(10.0), 1.0);
        assert_eq!(c.fraction_above(2.0), 0.5);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.median(), Some(3.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(5.0));
        assert_eq!(c.mean(), Some(3.0));
    }

    #[test]
    fn empty() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.median(), None);
        assert_eq!(c.fraction_at_or_below(1.0), 0.0);
    }

    #[test]
    fn nans_dropped() {
        let c = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn series_monotone() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let s = c.series(0.0, 99.0, 25);
        assert_eq!(s.len(), 25);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
        let cc = c.ccdf_series(0.0, 99.0, 25);
        assert_eq!(cc.last().unwrap().1, 0.0);
    }
}
