//! Active-campaign adapters: the paper's two comparison datasets (§3).

use v6netsim::World;
use v6scan::{
    run_caida_campaign_with_threads, run_hitlist_campaign_with_threads, CaidaCampaignConfig,
    CampaignResult, HitlistCampaignConfig,
};

use crate::dataset::{Dataset, Observation};

/// A campaign result plus its dataset view.
#[derive(Debug)]
pub struct ActiveDataset {
    /// The underlying campaign output (alias list, probe counts, …).
    pub campaign: CampaignResult,
    /// The dataset view of its discoveries.
    pub dataset: Dataset,
}

fn to_dataset(name: &str, campaign: &CampaignResult) -> Dataset {
    Dataset::from_observations(
        name,
        campaign.discoveries.iter().map(|d| Observation {
            addr: d.addr,
            t: d.t,
        }),
    )
}

/// Runs the IPv6-Hitlist-style campaign and wraps it as a dataset.
pub fn collect_hitlist(world: &World, vp_id: u16, cfg: &HitlistCampaignConfig) -> ActiveDataset {
    collect_hitlist_with_threads(world, vp_id, cfg, v6par::threads())
}

/// [`collect_hitlist`] at an explicit thread count.
pub fn collect_hitlist_with_threads(
    world: &World,
    vp_id: u16,
    cfg: &HitlistCampaignConfig,
    threads: usize,
) -> ActiveDataset {
    let campaign = run_hitlist_campaign_with_threads(world, vp_id, cfg, threads);
    let dataset = to_dataset("IPv6 Hitlist", &campaign);
    ActiveDataset { campaign, dataset }
}

/// Runs the CAIDA routed-/48 campaign and wraps it as a dataset.
pub fn collect_caida(world: &World, vp_id: u16, cfg: &CaidaCampaignConfig) -> ActiveDataset {
    collect_caida_with_threads(world, vp_id, cfg, v6par::threads())
}

/// [`collect_caida`] at an explicit thread count.
pub fn collect_caida_with_threads(
    world: &World,
    vp_id: u16,
    cfg: &CaidaCampaignConfig,
    threads: usize,
) -> ActiveDataset {
    let campaign = run_caida_campaign_with_threads(world, vp_id, cfg, threads);
    let dataset = to_dataset("CAIDA Routed /48", &campaign);
    ActiveDataset { campaign, dataset }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::WorldConfig;

    #[test]
    fn hitlist_adapter() {
        let w = World::build(WorldConfig::tiny(), 103);
        let d = collect_hitlist(
            &w,
            0,
            &HitlistCampaignConfig {
                weeks: 1,
                ..Default::default()
            },
        );
        assert_eq!(d.dataset.name(), "IPv6 Hitlist");
        assert_eq!(
            d.dataset.observation_count(),
            d.campaign.discoveries.len() as u64
        );
        assert!(!d.dataset.is_empty());
    }

    #[test]
    fn caida_adapter() {
        let w = World::build(WorldConfig::tiny(), 103);
        let d = collect_caida(
            &w,
            0,
            &CaidaCampaignConfig {
                stride: 2048,
                ..Default::default()
            },
        );
        assert_eq!(d.dataset.name(), "CAIDA Routed /48");
        assert!(!d.dataset.is_empty());
    }
}
