//! Data collection: passive (NTP) and active (campaign adapters).

pub mod active;
pub mod crowdsource;
pub mod ntp_passive;
