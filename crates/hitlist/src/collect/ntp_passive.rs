//! Passive collection: the NTP corpus (§3).
//!
//! Wires the simulator's contact stream through the *real* protocol path:
//! each client encodes a mode-3 NTP request, the pool's geo-DNS picks one
//! of the 27 stratum-2 servers, the server decodes the packet, logs the
//! source address, and answers. What the study keeps is exactly what the
//! paper kept: `(time, source address)` per query, per server.

use v6chaos::{Chaos, Fault};
use v6netsim::{Country, NtpEventStream, SimDuration, SimTime, World};
use v6ntp::{NtpClient, NtpPool, NtpTimestamp, Stratum2Server};

use crate::dataset::{Dataset, Observation};

/// Cached `collect.*` handles in the global `v6obs` registry.
///
/// The counters are data-derived (what was collected, not how it was
/// scheduled) and thread-count invariant; the shard-latency histogram is
/// a timing observation whose sample *count* also varies with the slice
/// split, so only the counters participate in the invariance contract.
struct CollectMetrics {
    observations: v6obs::Counter,
    protocol_failures: v6obs::Counter,
    days: v6obs::Counter,
    lost_days: v6obs::Counter,
    shard_latency: v6obs::Histogram,
}

fn collect_metrics() -> &'static CollectMetrics {
    static METRICS: std::sync::OnceLock<CollectMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| CollectMetrics {
        observations: v6obs::counter("collect.observations"),
        protocol_failures: v6obs::counter("collect.protocol_failures"),
        days: v6obs::counter("collect.days"),
        lost_days: v6obs::counter("collect.lost_days"),
        shard_latency: v6obs::histogram("collect.shard_latency"),
    })
}

/// Record one finished corpus into the `collect.*` counters.
fn record_corpus(corpus: &NtpCorpus, days_total: u64) {
    let m = collect_metrics();
    m.observations.add(corpus.observations.len() as u64);
    m.protocol_failures.add(corpus.protocol_failures);
    m.days.add(days_total - corpus.lost_days.len() as u64);
    m.lost_days.add(corpus.lost_days.len() as u64);
}

/// One shard's worth of collection: the observations of a contiguous
/// day-slice, plus the bookkeeping needed to merge shards back into the
/// exact sequential order.
struct CollectShard {
    observations: Vec<NtpObservation>,
    /// Run-length encoding of `observations` by device: each device that
    /// produced events in this slice appears once, in device-index
    /// order, with its contiguous observation count.
    runs: Vec<(u32, u32)>,
    served_per_vp: Vec<u64>,
    protocol_failures: u64,
    initial_capacity: usize,
}

/// One compact corpus observation (24 bytes; corpora run to millions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpObservation {
    /// The source address bits.
    pub addr: u128,
    /// Seconds since study start.
    pub t: u32,
    /// Dense index of the origin AS.
    pub as_index: u16,
    /// Which of the 27 servers logged the query.
    pub server: u16,
}

impl NtpObservation {
    /// The observation as a [`Dataset`] observation.
    pub fn to_observation(self) -> Observation {
        Observation {
            addr: std::net::Ipv6Addr::from(self.addr),
            t: SimTime(self.t as u64),
        }
    }
}

/// The collected passive corpus.
#[derive(Debug)]
pub struct NtpCorpus {
    /// All observations, device-major order.
    pub observations: Vec<NtpObservation>,
    /// Queries served per vantage point.
    pub served_per_vp: Vec<u64>,
    /// Requests that failed protocol validation (should be zero — our
    /// clients are conformant; nonzero means a codec bug).
    pub protocol_failures: u64,
    /// Collection window start.
    pub start: SimTime,
    /// Collection window length.
    pub window: SimDuration,
    /// The query-volume estimate the observation buffer was pre-sized to
    /// (see [`v6netsim::expected_query_volume`]).
    pub expected_queries: u64,
    /// `observations.capacity()` right after pre-sizing; equal to the
    /// final capacity iff collection never reallocated.
    pub initial_capacity: usize,
    /// Days (study-day indices) whose collection failed permanently
    /// under fault injection and were skipped after backfill. Always
    /// empty for the fault-free collectors; sorted ascending.
    pub lost_days: Vec<u64>,
}

impl NtpCorpus {
    /// Collects the corpus over `[start, start+window)`.
    ///
    /// Every query runs the full wire path (encode → geo-DNS select →
    /// server decode/log → response → client validate).
    pub fn collect(world: &World, start: SimTime, window: SimDuration) -> Self {
        Self::collect_with_threads(world, start, window, v6par::threads())
    }

    /// [`NtpCorpus::collect`] sharded by time-slice across `threads`
    /// workers.
    ///
    /// The day range is cut into contiguous slices; each slice runs the
    /// full wire path against its own [`Stratum2Server`] replicas
    /// (responses depend only on the request, so replicas serve
    /// identically), and shards merge back in device-major order via
    /// per-device run-lengths. `observations` is bit-identical to the
    /// sequential collection at any thread count.
    pub fn collect_with_threads(
        world: &World,
        start: SimTime,
        window: SimDuration,
        threads: usize,
    ) -> Self {
        let (start_day, end_day) = v6netsim::day_range(start, window);
        let days = (end_day - start_day) as usize;
        let expected = v6netsim::expected_query_volume(world, start, window);
        let pool = NtpPool::new(
            world.vantage_points.clone(),
            v6netsim::CountryRegistry::builtin(),
        );

        if threads <= 1 || days < 2 {
            let shard = collect_days(world, &pool, start_day, end_day, expected as usize);
            let corpus = NtpCorpus {
                observations: shard.observations,
                served_per_vp: shard.served_per_vp,
                protocol_failures: shard.protocol_failures,
                start,
                window,
                expected_queries: expected,
                initial_capacity: shard.initial_capacity,
                lost_days: Vec::new(),
            };
            record_corpus(&corpus, days as u64);
            return corpus;
        }

        let slices = v6par::split_ranges(days, (threads * 4).min(days));
        // Cost hint: one study day of simulated queries is ~1 ms, far
        // above the cutoff — sharded collection always parallelizes
        // once `threads > 1`, sized by days-per-slice.
        let slice_cost = v6par::Cost::per_item_ns(1_000_000 * (days / slices.len()).max(1) as u64)
            .labeled("collect.shard");
        let shards = v6par::par_map_cost(threads, &slices, slice_cost, |_, r| {
            collect_days(
                world,
                &pool,
                start_day + r.start as u64,
                start_day + r.end as u64,
                expected as usize / slices.len() + 64,
            )
        });

        // Order-preserving merge: the sequential stream is device-major
        // (all of device 0's days, then device 1's, …), so walk devices
        // in index order, appending each shard's run for that device in
        // shard (time-slice) order.
        let total: usize = shards.iter().map(|s| s.observations.len()).sum();
        let mut observations: Vec<NtpObservation> =
            Vec::with_capacity((expected as usize).max(total));
        let initial_capacity = observations.capacity();
        let mut cursors = vec![(0usize, 0usize); shards.len()]; // (run, obs) per shard
        for dev in 0..world.devices.len() as u32 {
            for (si, shard) in shards.iter().enumerate() {
                let (run, obs) = &mut cursors[si];
                if *run < shard.runs.len() && shard.runs[*run].0 == dev {
                    let n = shard.runs[*run].1 as usize;
                    observations.extend_from_slice(&shard.observations[*obs..*obs + n]);
                    *obs += n;
                    *run += 1;
                }
            }
        }
        debug_assert_eq!(observations.len(), total, "merge lost observations");

        let mut served_per_vp = vec![0u64; world.vantage_points.len()];
        for shard in &shards {
            for (vp, &n) in shard.served_per_vp.iter().enumerate() {
                served_per_vp[vp] += n;
            }
        }
        debug_assert_eq!(served_per_vp.iter().sum::<u64>(), observations.len() as u64);
        let corpus = NtpCorpus {
            observations,
            served_per_vp,
            protocol_failures: shards.iter().map(|s| s.protocol_failures).sum(),
            start,
            window,
            expected_queries: expected,
            initial_capacity,
            lost_days: Vec::new(),
        };
        record_corpus(&corpus, days as u64);
        corpus
    }

    /// The chaos site name one collection day maps to.
    pub fn day_site(day: u64) -> String {
        format!("collect.day.{day}")
    }

    /// [`NtpCorpus::collect_with_threads`] under fault injection, with
    /// skip-and-backfill recovery.
    ///
    /// The window is cut into one slice per study day and each day
    /// consults its `collect.day.<d>` site before collecting. Pass 1
    /// attempts every day once, in parallel; days whose attempt 0 faults
    /// are *skipped* and retried sequentially in a backfill pass, up to
    /// [`Chaos::retry_budget`] extra attempts each. Days that still fail
    /// (permanent scripts) end up in [`NtpCorpus::lost_days`] and
    /// contribute no observations.
    ///
    /// When every injected fault is transient the result is
    /// bit-identical to the fault-free collection — faults decide only
    /// *whether* a day's collection runs, never what it observes.
    pub fn collect_with_faults(
        world: &World,
        start: SimTime,
        window: SimDuration,
        threads: usize,
        chaos: &dyn Chaos,
    ) -> Self {
        let (start_day, end_day) = v6netsim::day_range(start, window);
        let days: Vec<u64> = (start_day..end_day).collect();
        let expected = v6netsim::expected_query_volume(world, start, window);
        let per_day = expected as usize / days.len().max(1) + 64;
        let pool = NtpPool::new(
            world.vantage_points.clone(),
            v6netsim::CountryRegistry::builtin(),
        );

        // Pass 1: one parallel attempt per day; faulted days stay None.
        // Same ~1 ms/day hint as the fault-free path.
        let day_cost = v6par::Cost::per_item_ns(1_000_000).labeled("collect.day");
        let mut shards: Vec<Option<CollectShard>> =
            v6par::par_map_cost(threads.max(1), &days, day_cost, |_, &day| {
                collect_day_faulted(world, &pool, day, per_day, chaos, 0)
            });

        // Backfill: retry the skipped days until they clear or the
        // retry budget is exhausted.
        let mut lost_days = Vec::new();
        for (i, &day) in days.iter().enumerate() {
            let mut attempt = 1u32;
            while shards[i].is_none() && attempt <= chaos.retry_budget() {
                shards[i] = collect_day_faulted(world, &pool, day, per_day, chaos, attempt);
                attempt += 1;
            }
            if shards[i].is_none() {
                lost_days.push(day);
            }
        }

        // Device-major merge of the surviving days (identical to the
        // fault-free merge; lost days simply contribute no runs).
        let collected: Vec<&CollectShard> = shards.iter().flatten().collect();
        let total: usize = collected.iter().map(|s| s.observations.len()).sum();
        let mut observations: Vec<NtpObservation> =
            Vec::with_capacity((expected as usize).max(total));
        let initial_capacity = observations.capacity();
        let mut cursors = vec![(0usize, 0usize); collected.len()];
        for dev in 0..world.devices.len() as u32 {
            for (si, shard) in collected.iter().enumerate() {
                let (run, obs) = &mut cursors[si];
                if *run < shard.runs.len() && shard.runs[*run].0 == dev {
                    let n = shard.runs[*run].1 as usize;
                    observations.extend_from_slice(&shard.observations[*obs..*obs + n]);
                    *obs += n;
                    *run += 1;
                }
            }
        }
        debug_assert_eq!(observations.len(), total, "merge lost observations");

        let mut served_per_vp = vec![0u64; world.vantage_points.len()];
        for shard in &collected {
            for (vp, &n) in shard.served_per_vp.iter().enumerate() {
                served_per_vp[vp] += n;
            }
        }
        let corpus = NtpCorpus {
            observations,
            served_per_vp,
            protocol_failures: collected.iter().map(|s| s.protocol_failures).sum(),
            start,
            window,
            expected_queries: expected,
            initial_capacity,
            lost_days,
        };
        record_corpus(&corpus, days.len() as u64);
        corpus
    }

    /// [`NtpCorpus::collect_study`] under fault injection.
    pub fn collect_study_chaos(world: &World, threads: usize, chaos: &dyn Chaos) -> Self {
        Self::collect_with_faults(
            world,
            SimTime::START,
            v6netsim::time::STUDY_DURATION,
            threads,
            chaos,
        )
    }

    /// Collects over the paper's full study window.
    pub fn collect_study(world: &World) -> Self {
        Self::collect(world, SimTime::START, v6netsim::time::STUDY_DURATION)
    }

    /// [`NtpCorpus::collect_study`] at an explicit thread count.
    pub fn collect_study_with_threads(world: &World, threads: usize) -> Self {
        Self::collect_with_threads(
            world,
            SimTime::START,
            v6netsim::time::STUDY_DURATION,
            threads,
        )
    }

    /// The corpus as a [`Dataset`] named "NTP Pool".
    pub fn dataset(&self) -> Dataset {
        self.dataset_with_threads(v6par::threads())
    }

    /// [`NtpCorpus::dataset`] at an explicit thread count.
    pub fn dataset_with_threads(&self, threads: usize) -> Dataset {
        Dataset::from_observations_with_threads(
            "NTP Pool",
            self.observations.iter().map(|o| o.to_observation()),
            threads,
        )
    }

    /// Number of raw queries logged.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The country an observation's origin AS sits in (ground truth;
    /// analyses that model MaxMind error use `v6geo::GeoDb` instead).
    pub fn country_of(&self, world: &World, obs: &NtpObservation) -> Country {
        world.ases[obs.as_index as usize].info.country
    }
}

/// The sequential collection kernel over day indices `[d0, d1)`.
fn collect_days(world: &World, pool: &NtpPool, d0: u64, d1: u64, capacity: usize) -> CollectShard {
    let _span = v6obs::span("collect.days");
    let shard_start = std::time::Instant::now();
    let mut servers: Vec<Stratum2Server> = world
        .vantage_points
        .iter()
        .map(|vp| Stratum2Server::new(vp.clone()))
        .collect();
    let mut observations: Vec<NtpObservation> = Vec::with_capacity(capacity);
    let initial_capacity = observations.capacity();
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let mut protocol_failures = 0u64;

    for ev in NtpEventStream::days(world, d0, d1) {
        let Some(vp) = pool.select(ev.country, ev.device.0 as u64, ev.t) else {
            continue;
        };
        let server = &mut servers[vp.id as usize];
        let t1 = NtpTimestamp::from_sim(ev.t, 0);
        let (client, request) = NtpClient::start(t1);
        match server.handle(&request, ev.src, ev.t) {
            Ok(response) => {
                let t4 = NtpTimestamp::from_sim(ev.t, 120_000_000);
                if client.finish(&response, t4).is_err() {
                    protocol_failures += 1;
                }
            }
            Err(_) => {
                protocol_failures += 1;
                continue;
            }
        }
        match runs.last_mut() {
            Some(run) if run.0 == ev.device.0 => run.1 += 1,
            _ => runs.push((ev.device.0, 1)),
        }
        observations.push(NtpObservation {
            addr: u128::from(ev.src),
            t: ev.t.as_secs() as u32,
            as_index: ev.as_index,
            server: vp.id,
        });
    }

    // The servers' own logs must agree with what we recorded.
    let served_per_vp: Vec<u64> = servers.iter().map(|s| s.served()).collect();
    debug_assert_eq!(served_per_vp.iter().sum::<u64>(), observations.len() as u64);
    collect_metrics()
        .shard_latency
        .record_duration(shard_start.elapsed());
    CollectShard {
        observations,
        runs,
        served_per_vp,
        protocol_failures,
        initial_capacity,
    }
}

/// One fault-aware collection attempt of a single day.
///
/// Consults the day's `collect.day.<d>` site: a failure decision skips
/// the day (returns `None`, letting the backfill pass retry it), a stall
/// sleeps first, and a clean decision runs the normal kernel. The fault
/// never alters what a successful collection observes.
fn collect_day_faulted(
    world: &World,
    pool: &NtpPool,
    day: u64,
    capacity: usize,
    chaos: &dyn Chaos,
    attempt: u32,
) -> Option<CollectShard> {
    match chaos.decide(&NtpCorpus::day_site(day), attempt) {
        Fault::Error | Fault::Panic => return None,
        Fault::Stall(d) => std::thread::sleep(d),
        Fault::None => {}
    }
    Some(collect_days(world, pool, day, day + 1, capacity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6chaos::{NoChaos, ScriptedChaos, SiteScript};
    use v6netsim::WorldConfig;

    fn world() -> World {
        World::build(WorldConfig::tiny(), 101)
    }

    #[test]
    fn collects_without_protocol_failures() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(7));
        assert!(!c.is_empty());
        assert_eq!(c.protocol_failures, 0, "codec broke on the wire path");
        assert_eq!(
            c.served_per_vp.iter().sum::<u64>(),
            c.observations.len() as u64
        );
    }

    #[test]
    fn multiple_servers_see_traffic() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(7));
        let active = c.served_per_vp.iter().filter(|&&n| n > 0).count();
        assert!(active >= 15, "only {active}/27 servers saw queries");
    }

    #[test]
    fn dataset_round_trip() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(3));
        let d = c.dataset();
        assert_eq!(d.name(), "NTP Pool");
        assert_eq!(d.observation_count(), c.len() as u64);
        assert!(d.len() <= c.len());
        assert!(!d.is_empty());
    }

    #[test]
    fn geo_dns_prefers_local_servers() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(5));
        // For clients in a VP country, the serving VP must be in-country.
        let mut checked = 0;
        for obs in c.observations.iter().take(20_000) {
            let client_country = c.country_of(&w, obs);
            let vp = &w.vantage_points[obs.server as usize];
            let has_local_vp = w.vantage_points.iter().any(|v| v.country == client_country);
            if has_local_vp {
                assert_eq!(vp.country, client_country);
                checked += 1;
            }
        }
        assert!(checked > 100, "geo-DNS path barely exercised ({checked})");
    }

    #[test]
    fn collection_is_deterministic() {
        let w = world();
        let a = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(2));
        let b = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(2));
        assert_eq!(a.observations, b.observations);
    }

    #[test]
    fn sharded_collection_matches_sequential() {
        let w = world();
        let seq = NtpCorpus::collect_with_threads(&w, SimTime::START, SimDuration::days(9), 1);
        assert!(!seq.is_empty());
        for threads in [2, 3, 8] {
            let par =
                NtpCorpus::collect_with_threads(&w, SimTime::START, SimDuration::days(9), threads);
            assert_eq!(seq.observations, par.observations, "threads={threads}");
            assert_eq!(seq.served_per_vp, par.served_per_vp, "threads={threads}");
            assert_eq!(
                seq.protocol_failures, par.protocol_failures,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn transient_faulted_collection_matches_fault_free() {
        let w = world();
        let window = SimDuration::days(6);
        let baseline = NtpCorpus::collect_with_threads(&w, SimTime::START, window, 1);
        let chaos = ScriptedChaos::new()
            .with(NtpCorpus::day_site(1), SiteScript::transient(2))
            .with(NtpCorpus::day_site(3), SiteScript::transient_panic(1))
            .with(
                NtpCorpus::day_site(4),
                SiteScript::ok().with_stall(std::time::Duration::from_millis(1)),
            );
        for threads in [1, 4] {
            let c = NtpCorpus::collect_with_faults(&w, SimTime::START, window, threads, &chaos);
            assert!(c.lost_days.is_empty(), "threads={threads}");
            assert_eq!(baseline.observations, c.observations, "threads={threads}");
            assert_eq!(baseline.served_per_vp, c.served_per_vp, "threads={threads}");
        }
        // NoChaos through the fault path is also bit-identical.
        let c = NtpCorpus::collect_with_faults(&w, SimTime::START, window, 4, &NoChaos);
        assert_eq!(baseline.observations, c.observations);
    }

    #[test]
    fn permanent_fault_loses_exactly_that_day() {
        let w = world();
        let window = SimDuration::days(5);
        let baseline = NtpCorpus::collect_with_threads(&w, SimTime::START, window, 1);
        let chaos = ScriptedChaos::new()
            .with(NtpCorpus::day_site(2), SiteScript::permanent())
            .with(NtpCorpus::day_site(0), SiteScript::transient(1));
        for threads in [1, 4] {
            let c = NtpCorpus::collect_with_faults(&w, SimTime::START, window, threads, &chaos);
            assert_eq!(c.lost_days, vec![2], "threads={threads}");
            // Day 2's observations are gone, every other day's survive.
            assert!(c.observations.iter().all(|o| o.t / 86_400 != 2));
            let kept = baseline
                .observations
                .iter()
                .filter(|o| o.t / 86_400 != 2)
                .copied()
                .collect::<Vec<_>>();
            assert_eq!(kept, c.observations, "threads={threads}");
        }
    }

    #[test]
    fn collection_never_reallocates() {
        let w = world();
        for threads in [1, 4] {
            let c =
                NtpCorpus::collect_with_threads(&w, SimTime::START, SimDuration::days(9), threads);
            assert!(c.len() as u64 <= c.expected_queries, "estimate too low");
            assert_eq!(
                c.observations.capacity(),
                c.initial_capacity,
                "collection reallocated (threads={threads})"
            );
        }
    }
}
