//! Passive collection: the NTP corpus (§3).
//!
//! Wires the simulator's contact stream through the *real* protocol path:
//! each client encodes a mode-3 NTP request, the pool's geo-DNS picks one
//! of the 27 stratum-2 servers, the server decodes the packet, logs the
//! source address, and answers. What the study keeps is exactly what the
//! paper kept: `(time, source address)` per query, per server.

use v6netsim::{Country, NtpEventStream, SimDuration, SimTime, World};
use v6ntp::{NtpClient, NtpPool, NtpTimestamp, Stratum2Server};

use crate::dataset::{Dataset, Observation};

/// One compact corpus observation (24 bytes; corpora run to millions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpObservation {
    /// The source address bits.
    pub addr: u128,
    /// Seconds since study start.
    pub t: u32,
    /// Dense index of the origin AS.
    pub as_index: u16,
    /// Which of the 27 servers logged the query.
    pub server: u16,
}

impl NtpObservation {
    /// The observation as a [`Dataset`] observation.
    pub fn to_observation(self) -> Observation {
        Observation {
            addr: std::net::Ipv6Addr::from(self.addr),
            t: SimTime(self.t as u64),
        }
    }
}

/// The collected passive corpus.
#[derive(Debug)]
pub struct NtpCorpus {
    /// All observations, device-major order.
    pub observations: Vec<NtpObservation>,
    /// Queries served per vantage point.
    pub served_per_vp: Vec<u64>,
    /// Requests that failed protocol validation (should be zero — our
    /// clients are conformant; nonzero means a codec bug).
    pub protocol_failures: u64,
    /// Collection window start.
    pub start: SimTime,
    /// Collection window length.
    pub window: SimDuration,
}

impl NtpCorpus {
    /// Collects the corpus over `[start, start+window)`.
    ///
    /// Every query runs the full wire path (encode → geo-DNS select →
    /// server decode/log → response → client validate).
    pub fn collect(world: &World, start: SimTime, window: SimDuration) -> Self {
        let pool = NtpPool::new(
            world.vantage_points.clone(),
            v6netsim::CountryRegistry::builtin(),
        );
        let mut servers: Vec<Stratum2Server> = world
            .vantage_points
            .iter()
            .map(|vp| Stratum2Server::new(vp.clone()))
            .collect();
        let mut observations = Vec::new();
        let mut protocol_failures = 0u64;

        for ev in NtpEventStream::new(world, start, window) {
            let Some(vp) = pool.select(ev.country, ev.device.0 as u64, ev.t) else {
                continue;
            };
            let server = &mut servers[vp.id as usize];
            let t1 = NtpTimestamp::from_sim(ev.t, 0);
            let (client, request) = NtpClient::start(t1);
            match server.handle(&request, ev.src, ev.t) {
                Ok(response) => {
                    let t4 = NtpTimestamp::from_sim(ev.t, 120_000_000);
                    if client.finish(&response, t4).is_err() {
                        protocol_failures += 1;
                    }
                }
                Err(_) => {
                    protocol_failures += 1;
                    continue;
                }
            }
            observations.push(NtpObservation {
                addr: u128::from(ev.src),
                t: ev.t.as_secs() as u32,
                as_index: ev.as_index,
                server: vp.id,
            });
        }

        // The servers' own logs must agree with what we recorded.
        let served_per_vp: Vec<u64> = servers.iter().map(|s| s.served()).collect();
        debug_assert_eq!(served_per_vp.iter().sum::<u64>(), observations.len() as u64);
        NtpCorpus {
            observations,
            served_per_vp,
            protocol_failures,
            start,
            window,
        }
    }

    /// Collects over the paper's full study window.
    pub fn collect_study(world: &World) -> Self {
        Self::collect(world, SimTime::START, v6netsim::time::STUDY_DURATION)
    }

    /// The corpus as a [`Dataset`] named "NTP Pool".
    pub fn dataset(&self) -> Dataset {
        Dataset::from_observations(
            "NTP Pool",
            self.observations.iter().map(|o| o.to_observation()),
        )
    }

    /// Number of raw queries logged.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The country an observation's origin AS sits in (ground truth;
    /// analyses that model MaxMind error use `v6geo::GeoDb` instead).
    pub fn country_of(&self, world: &World, obs: &NtpObservation) -> Country {
        world.ases[obs.as_index as usize].info.country
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::WorldConfig;

    fn world() -> World {
        World::build(WorldConfig::tiny(), 101)
    }

    #[test]
    fn collects_without_protocol_failures() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(7));
        assert!(!c.is_empty());
        assert_eq!(c.protocol_failures, 0, "codec broke on the wire path");
        assert_eq!(
            c.served_per_vp.iter().sum::<u64>(),
            c.observations.len() as u64
        );
    }

    #[test]
    fn multiple_servers_see_traffic() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(7));
        let active = c.served_per_vp.iter().filter(|&&n| n > 0).count();
        assert!(active >= 15, "only {active}/27 servers saw queries");
    }

    #[test]
    fn dataset_round_trip() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(3));
        let d = c.dataset();
        assert_eq!(d.name(), "NTP Pool");
        assert_eq!(d.observation_count(), c.len() as u64);
        assert!(d.len() <= c.len());
        assert!(!d.is_empty());
    }

    #[test]
    fn geo_dns_prefers_local_servers() {
        let w = world();
        let c = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(5));
        // For clients in a VP country, the serving VP must be in-country.
        let mut checked = 0;
        for obs in c.observations.iter().take(20_000) {
            let client_country = c.country_of(&w, obs);
            let vp = &w.vantage_points[obs.server as usize];
            let has_local_vp = w.vantage_points.iter().any(|v| v.country == client_country);
            if has_local_vp {
                assert_eq!(vp.country, client_country);
                checked += 1;
            }
        }
        assert!(checked > 100, "geo-DNS path barely exercised ({checked})");
    }

    #[test]
    fn collection_is_deterministic() {
        let w = world();
        let a = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(2));
        let b = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(2));
        assert_eq!(a.observations, b.observations);
    }
}
