//! Crowdsourced client-address collection (§2.2 [24, 33]).
//!
//! Before NTP-scale passive collection, researchers paid panels (MTurk,
//! Prolific) to visit a measurement page, harvesting a *small* sample of
//! client addresses. Modeling it here gives the comparisons a third
//! perspective: crowdsourcing sees genuine clients — like the NTP corpus
//! — but at a scale orders of magnitude smaller and heavily skewed to a
//! few panel countries.

use v6netsim::rng::Rng;
use v6netsim::{Country, SimDuration, SimTime, World};

use crate::dataset::{Dataset, Observation};

/// Crowdsourcing-panel configuration.
#[derive(Debug, Clone)]
pub struct CrowdsourceConfig {
    /// Number of paid participants.
    pub participants: u32,
    /// Panel country mix (worker platforms skew to a few countries).
    pub panel_countries: Vec<(Country, f64)>,
    /// Campaign window start.
    pub start: SimTime,
    /// Campaign length.
    pub duration: SimDuration,
    /// Draw seed.
    pub seed: u64,
}

impl Default for CrowdsourceConfig {
    fn default() -> Self {
        CrowdsourceConfig {
            participants: 300,
            panel_countries: vec![
                (Country::new("US"), 0.45),
                (Country::new("IN"), 0.30),
                (Country::new("GB"), 0.15),
                (Country::new("BR"), 0.10),
            ],
            start: SimTime::START,
            duration: SimDuration::days(14),
            seed: 0xc0_c0de,
        }
    }
}

/// Runs the panel: each participant is a random *client* device from a
/// panel country; we observe the address it presents when it "visits".
pub fn collect_crowdsource(world: &World, cfg: &CrowdsourceConfig) -> Dataset {
    let mut rng = Rng::new(world.seed ^ cfg.seed);
    // Candidate devices per panel country: anything client-like that is
    // online (a panel worker uses a phone or computer, pool user or not).
    let mut by_country: Vec<(f64, Vec<v6netsim::DeviceId>)> = Vec::new();
    for (country, weight) in &cfg.panel_countries {
        let devices: Vec<v6netsim::DeviceId> = world
            .devices
            .iter()
            .filter(|d| d.kind.is_client())
            .filter(|d| {
                let as_index = d
                    .home
                    .map(|h| world.networks[h.network as usize].as_index)
                    .or(d.cellular.map(|c| c.as_index));
                as_index
                    .map(|ai| world.ases[ai as usize].info.country == *country)
                    .unwrap_or(false)
            })
            .map(|d| d.id)
            .collect();
        if !devices.is_empty() {
            by_country.push((*weight, devices));
        }
    }
    let weights: Vec<f64> = by_country.iter().map(|(w, _)| *w).collect();
    let mut observations = Vec::new();
    if by_country.is_empty() {
        return Dataset::from_observations("Crowdsourced", observations);
    }
    for _ in 0..cfg.participants {
        let (_, pool) = &by_country[rng.weighted(&weights)];
        let id = *rng.choose(pool);
        let t = cfg.start + SimDuration(rng.below(cfg.duration.as_secs().max(1)));
        if let Some((addr, _)) = world.contact_addr_at(id, t) {
            observations.push(Observation { addr, t });
        }
    }
    Dataset::from_observations("Crowdsourced", observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6addr::iid_entropy;
    use v6netsim::WorldConfig;

    fn run() -> (World, Dataset) {
        let w = World::build(WorldConfig::tiny(), 909);
        let d = collect_crowdsource(&w, &CrowdsourceConfig::default());
        (w, d)
    }

    #[test]
    fn small_but_client_rich() {
        let (_w, d) = run();
        assert!(!d.is_empty());
        assert!(d.len() <= 300);
        // Clients ⇒ high-entropy addresses dominate (like the NTP corpus,
        // unlike the Hitlist).
        let high = d
            .records()
            .iter()
            .filter(|r| iid_entropy(r.iid()) >= 0.75)
            .count();
        assert!(high * 2 > d.len(), "{high}/{} high-entropy", d.len());
    }

    #[test]
    fn panel_country_skew() {
        let (w, d) = run();
        let panel: Vec<Country> = ["US", "IN", "GB", "BR"].map(Country::new).to_vec();
        let in_panel = d
            .records()
            .iter()
            .filter_map(|r| w.country_of(r.addr))
            .filter(|c| panel.contains(c))
            .count();
        assert_eq!(in_panel, d.records().len(), "worker outside the panel mix");
    }

    #[test]
    fn deterministic() {
        let w = World::build(WorldConfig::tiny(), 909);
        let a = collect_crowdsource(&w, &CrowdsourceConfig::default());
        let b = collect_crowdsource(&w, &CrowdsourceConfig::default());
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.records().first().map(|r| r.addr),
            b.records().first().map(|r| r.addr)
        );
    }

    #[test]
    fn tiny_fraction_of_ntp_corpus() {
        use crate::collect::ntp_passive::NtpCorpus;
        let (w, d) = run();
        let corpus = NtpCorpus::collect(&w, SimTime::START, SimDuration::days(14));
        // The paper's point about crowdsourcing: "small numbers" — an
        // order of magnitude below passive collection even at tiny scale.
        assert!(
            corpus.dataset().len() > 10 * d.len(),
            "{} vs {}",
            corpus.dataset().len(),
            d.len()
        );
    }
}
