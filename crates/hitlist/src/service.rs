//! A hitlist *service*: weekly publications of responsive addresses and
//! alias lists.
//!
//! The IPv6 Hitlist project "continue\[s\] to publish a weekly hitlist of
//! responsive addresses and known aliased and non-aliased networks"
//! (§2.2 \[1\]); the paper consumes those snapshots for its comparisons
//! (e.g. the 1 July 2022 release in §4.3). This module turns a campaign's
//! discoveries into the same artifact: per-week snapshots with a
//! registered alias list and machine-readable export — including the
//! ethics-aware variant the paper argues future services need, where
//! client-rich address sets are truncated to /48.

use serde::{Deserialize, Serialize};
use std::net::Ipv6Addr;

use v6addr::Prefix;
use v6scan::{AliasList, CampaignResult};

use crate::release::Release48;

/// One weekly snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeeklySnapshot {
    /// Study week number.
    pub week: u64,
    /// Responsive addresses first published this week.
    pub new_responsive: Vec<Ipv6Addr>,
    /// Cumulative responsive count as of this week.
    pub cumulative: u64,
}

/// The publication stream of a hitlist service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitlistService {
    /// Service name.
    pub name: String,
    /// Weekly snapshots, in order.
    pub snapshots: Vec<WeeklySnapshot>,
    /// The published aliased prefixes.
    pub aliased: Vec<Prefix>,
}

impl HitlistService {
    /// Builds the service publications from a campaign run.
    pub fn from_campaign(name: impl Into<String>, campaign: &CampaignResult) -> Self {
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<u128> = BTreeSet::new();
        let mut by_week: std::collections::BTreeMap<u64, Vec<Ipv6Addr>> =
            std::collections::BTreeMap::new();
        for d in &campaign.discoveries {
            if seen.insert(u128::from(d.addr)) {
                by_week.entry(d.t.week()).or_default().push(d.addr);
            }
        }
        let mut snapshots = Vec::new();
        let mut cumulative = 0u64;
        for (week, mut new_responsive) in by_week {
            new_responsive.sort_unstable();
            cumulative += new_responsive.len() as u64;
            snapshots.push(WeeklySnapshot {
                week,
                new_responsive,
                cumulative,
            });
        }
        HitlistService {
            name: name.into(),
            snapshots,
            aliased: campaign.aliased.clone(),
        }
    }

    /// The alias list consumers should filter against.
    pub fn alias_list(&self) -> AliasList {
        AliasList::from_prefixes(self.aliased.iter().copied())
    }

    /// The full responsive set as of a week (inclusive).
    ///
    /// Each weekly snapshot is already sorted at construction, so the
    /// cumulative set is a k-way merge of sorted runs — O(n log k) with
    /// no re-sort, instead of collecting everything and sorting from
    /// scratch (O(n log n)) on every call.
    pub fn responsive_as_of(&self, week: u64) -> Vec<Ipv6Addr> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let runs: Vec<&[Ipv6Addr]> = self
            .snapshots
            .iter()
            .filter(|s| s.week <= week)
            .map(|s| s.new_responsive.as_slice())
            .collect();
        let total = runs.iter().map(|r| r.len()).sum();
        let mut out: Vec<Ipv6Addr> = Vec::with_capacity(total);
        match runs.len() {
            0 => {}
            1 => out.extend_from_slice(runs[0]),
            _ => {
                // Heap of (next address, run index); each pop advances
                // one run's cursor.
                let mut cursors = vec![0usize; runs.len()];
                let mut heap: BinaryHeap<Reverse<(Ipv6Addr, usize)>> = runs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_empty())
                    .map(|(i, r)| Reverse((r[0], i)))
                    .collect();
                while let Some(Reverse((addr, i))) = heap.pop() {
                    out.push(addr);
                    cursors[i] += 1;
                    if let Some(&next) = runs[i].get(cursors[i]) {
                        heap.push(Reverse((next, i)));
                    }
                }
            }
        }
        out
    }

    /// Total unique responsive addresses ever published.
    pub fn total_responsive(&self) -> u64 {
        self.snapshots.last().map(|s| s.cumulative).unwrap_or(0)
    }

    /// Exports the whole service state as JSON (the machine-readable
    /// publication format).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Imports a previously exported service state.
    pub fn from_json(json: &str) -> serde_json::Result<HitlistService> {
        serde_json::from_str(json)
    }

    /// The §6-style privacy-aware publication: full addresses for the
    /// (infrastructure-dominated) responsive set are replaced by their
    /// /48s whenever a week's snapshot contains more than
    /// `client_threshold` addresses — the paper's proposed middle ground
    /// for client-rich hitlists.
    pub fn privacy_aware_release(&self, client_threshold: usize) -> Vec<PrivacyRelease> {
        self.snapshots
            .iter()
            .map(|s| {
                if s.new_responsive.len() > client_threshold {
                    let set = v6addr::AddrSet::from_addrs(s.new_responsive.iter().copied());
                    PrivacyRelease::Truncated(Release48::from_addr_set(
                        format!("{} week {}", self.name, s.week),
                        &set,
                    ))
                } else {
                    PrivacyRelease::Full {
                        week: s.week,
                        addresses: s.new_responsive.clone(),
                    }
                }
            })
            .collect()
    }
}

/// One week's privacy-aware publication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PrivacyRelease {
    /// Small, infrastructure-dominated snapshot: full addresses.
    Full {
        /// Study week.
        week: u64,
        /// The addresses.
        addresses: Vec<Ipv6Addr>,
    },
    /// Client-rich snapshot: /48-truncated.
    Truncated(Release48),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::active::collect_hitlist;
    use v6netsim::{World, WorldConfig};
    use v6scan::HitlistCampaignConfig;

    fn service() -> HitlistService {
        let w = World::build(WorldConfig::tiny(), 606);
        let hl = collect_hitlist(
            &w,
            0,
            &HitlistCampaignConfig {
                weeks: 3,
                ..Default::default()
            },
        );
        HitlistService::from_campaign("IPv6 Hitlist Service", &hl.campaign)
    }

    #[test]
    fn snapshots_are_weekly_and_cumulative() {
        let s = service();
        assert!(!s.snapshots.is_empty());
        let mut last = 0;
        for snap in &s.snapshots {
            assert!(!snap.new_responsive.is_empty());
            assert!(snap.cumulative > last || snap.new_responsive.is_empty());
            last = snap.cumulative;
        }
        assert_eq!(
            s.total_responsive(),
            s.snapshots
                .iter()
                .map(|x| x.new_responsive.len() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn no_address_published_twice() {
        let s = service();
        let all = s.responsive_as_of(u64::MAX);
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn responsive_as_of_is_monotone() {
        let s = service();
        let w0 = s.responsive_as_of(0).len();
        let w2 = s.responsive_as_of(2).len();
        assert!(w2 >= w0);
        assert_eq!(w2 as u64, s.total_responsive());
    }

    #[test]
    fn merge_matches_collect_and_sort() {
        let s = service();
        for week in [0u64, 1, 2, u64::MAX] {
            // Reference: the pre-merge implementation (collect + sort).
            let mut reference: Vec<Ipv6Addr> = s
                .snapshots
                .iter()
                .filter(|snap| snap.week <= week)
                .flat_map(|snap| snap.new_responsive.iter().copied())
                .collect();
            reference.sort_unstable();
            assert_eq!(s.responsive_as_of(week), reference, "week {week}");
        }
        // Degenerate inputs: no snapshots, and a single run.
        let empty = HitlistService {
            name: "empty".into(),
            snapshots: Vec::new(),
            aliased: Vec::new(),
        };
        assert!(empty.responsive_as_of(u64::MAX).is_empty());
        let one = HitlistService {
            name: "one".into(),
            snapshots: s.snapshots[..1].to_vec(),
            aliased: Vec::new(),
        };
        assert_eq!(
            one.responsive_as_of(u64::MAX),
            s.snapshots[0].new_responsive
        );
    }

    #[test]
    fn json_round_trip() {
        let s = service();
        let json = s.to_json().unwrap();
        let back = HitlistService::from_json(&json).unwrap();
        assert_eq!(back.total_responsive(), s.total_responsive());
        assert_eq!(back.aliased.len(), s.aliased.len());
        assert_eq!(back.snapshots.len(), s.snapshots.len());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = service();
        let back = HitlistService::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.aliased, s.aliased);
        for (b, orig) in back.snapshots.iter().zip(&s.snapshots) {
            assert_eq!(b.week, orig.week);
            assert_eq!(b.cumulative, orig.cumulative);
            assert_eq!(b.new_responsive, orig.new_responsive);
        }
        // And the re-imported service answers queries identically.
        assert_eq!(back.responsive_as_of(1), s.responsive_as_of(1));
    }

    #[test]
    fn privacy_release_json_round_trip() {
        let s = service();
        // Threshold 1 forces a mix: tiny weeks stay Full, big ones
        // truncate; serialize the whole release stream and re-import.
        for threshold in [0usize, 1, usize::MAX] {
            let releases = s.privacy_aware_release(threshold);
            let json = serde_json::to_string(&releases).unwrap();
            let back: Vec<PrivacyRelease> = serde_json::from_str(&json).unwrap();
            assert_eq!(back.len(), releases.len());
            for (b, orig) in back.iter().zip(&releases) {
                match (b, orig) {
                    (
                        PrivacyRelease::Full { week, addresses },
                        PrivacyRelease::Full {
                            week: w2,
                            addresses: a2,
                        },
                    ) => {
                        assert_eq!(week, w2);
                        assert_eq!(addresses, a2);
                    }
                    (PrivacyRelease::Truncated(t), PrivacyRelease::Truncated(t2)) => {
                        assert_eq!(t.len(), t2.len());
                        assert!(t.verify_privacy_invariant());
                    }
                    _ => panic!("variant changed across JSON round trip"),
                }
            }
        }
    }

    #[test]
    fn privacy_release_truncates_large_weeks() {
        let s = service();
        let releases = s.privacy_aware_release(0); // everything truncates
        for r in &releases {
            match r {
                PrivacyRelease::Truncated(t) => assert!(t.verify_privacy_invariant()),
                PrivacyRelease::Full { .. } => panic!("threshold 0 must truncate all"),
            }
        }
        // And with an enormous threshold, nothing truncates.
        let releases = s.privacy_aware_release(usize::MAX);
        assert!(releases
            .iter()
            .all(|r| matches!(r, PrivacyRelease::Full { .. })));
    }
}
