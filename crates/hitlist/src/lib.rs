//! # v6hitlist — the core library
//!
//! The primary contribution of *IPv6 Hitlists at Scale: Be Careful What
//! You Wish For* (SIGCOMM 2023), reproduced end to end:
//!
//! * [`collect`] — passive NTP corpus collection through real RFC 5905
//!   packets and pool geo-DNS; adapters for the active baselines.
//! * [`dataset`] — timestamped address datasets with the aggregations
//!   every table and figure consumes.
//! * [`analysis`] — the paper's results: dataset comparison (Table 1),
//!   entropy distributions (Fig. 1/3/4), lifetimes (Fig. 2), address
//!   classes (Fig. 5), backscanning and alias discovery (§4.2), EUI-64
//!   tracking (§5.1–5.2, Table 2, Fig. 6–7), and the geolocation attack
//!   (§5.3).
//! * [`release`] — the ethical /48-truncated public release.
//! * [`pipeline`] — one-call orchestration of the whole study.
//! * [`streaming`] — adapters feeding `v6stream`'s incremental
//!   operators from the world's routing table and the passive corpus.
//! * [`cdf`] / [`report`] — distribution and paper-vs-measured plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cdf;
pub mod collect;
pub mod dataset;
pub mod pipeline;
pub mod release;
pub mod report;
pub mod service;
pub mod streaming;

pub use cdf::Cdf;
pub use collect::ntp_passive::NtpCorpus;
pub use dataset::{AddrRecord, Dataset, Observation};
pub use pipeline::{ChaosRun, Experiment, ExperimentConfig};
pub use release::Release48;
pub use report::ExperimentRecord;
pub use service::HitlistService;
pub use streaming::{corpus_entries, corpus_entries_u32, world_as_table};
