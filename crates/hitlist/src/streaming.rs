//! Bridge from the batch measurement pipeline to `v6stream`'s
//! incremental operators.
//!
//! The batch analyses in [`crate::analysis`] re-walk the whole corpus
//! every time they run; the streaming operators fold the same facts
//! epoch by epoch. This module supplies the two adapters the streaming
//! side needs from the measurement side:
//!
//! * [`world_as_table`] — a [`v6stream::PrefixAsTable`] built from the
//!   simulated world's routing table (`2a00:<idx>::/32` per AS, with
//!   its registration country), so streaming attribution matches
//!   `World::asn_of` exactly;
//! * [`corpus_entries`] — an [`NtpCorpus`] flattened to the sorted
//!   `(bits, first_week)` entry list an epoch publication carries.
//!
//! With both in hand, `Analytics::from_entries(table, &entries)` is
//! the batch anchor the streaming ≡ batch equivalence tests compare
//! against on real pipeline output (see `tests/stream_parity.rs`).

use v6netsim::World;
use v6par::radix_sort_u128;
use v6stream::{AsTag, PrefixAsTable};

use crate::collect::ntp_passive::NtpCorpus;

/// Seconds per study week (the corpus clock is seconds since study
/// start; epoch publications are weekly).
pub const WEEK_SECS: u32 = 7 * 86_400;

/// Builds the streaming AS-attribution table from the world's routed
/// prefixes: AS `i` announces `2a00:<i>::/32` and tags it with its
/// dense index and registration country.
pub fn world_as_table(world: &World) -> PrefixAsTable {
    let prefixes = world
        .ases
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let p = a.prefix32();
            (
                p.bits(),
                p.len(),
                AsTag {
                    index: i as u16,
                    country: u16::from_be_bytes(a.info.country.0),
                },
            )
        })
        .collect();
    PrefixAsTable::new(prefixes)
}

/// Flattens a passive corpus to the sorted, deduplicated
/// `(bits, first_week)` entries of an epoch publication: each unique
/// address with the study week it was first observed.
pub fn corpus_entries(corpus: &NtpCorpus) -> Vec<(u128, u64)> {
    let mut pairs: Vec<(u128, u64)> = Vec::with_capacity(corpus.observations.len());
    pairs.extend(
        corpus
            .observations
            .iter()
            .map(|o| (o.addr, u64::from(o.t / WEEK_SECS))),
    );
    radix_sort_u128(&mut pairs);
    // Sorted by (bits, week): the first pair per address carries its
    // earliest week, later ones drop.
    pairs.dedup_by_key(|&mut (bits, _)| bits);
    pairs
}

/// [`corpus_entries`] in the `(bits, u32 week)` shape `v6store` delta
/// records and `v6stream` events use.
pub fn corpus_entries_u32(corpus: &NtpCorpus) -> Vec<(u128, u32)> {
    corpus_entries(corpus)
        .into_iter()
        .map(|(bits, week)| (bits, week as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::{SimDuration, SimTime, WorldConfig};
    use v6stream::AsResolver;

    #[test]
    fn table_attribution_matches_world_routing() {
        let world = World::build(WorldConfig::tiny(), 211);
        let table = world_as_table(&world);
        assert_eq!(table.len(), world.ases.len());
        for (i, a) in world.ases.iter().enumerate() {
            let inside = a.prefix32().bits() | 0xdead_beef;
            let tag = table.resolve(inside).expect("inside an announced /32");
            assert_eq!(tag.index, i as u16);
            assert_eq!(
                world.asn_of(std::net::Ipv6Addr::from(inside)),
                Some(a.info.asn)
            );
        }
        // Outside the announced space resolves nowhere, same as asn_of.
        assert_eq!(table.resolve(0x3fff_0000u128 << 96), None);
    }

    #[test]
    fn corpus_entries_are_sorted_first_week_deduped() {
        let world = World::build(WorldConfig::tiny(), 211);
        let corpus = NtpCorpus::collect(&world, SimTime::START, SimDuration::days(21));
        let entries = corpus_entries(&corpus);
        assert!(!entries.is_empty());
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "strictly sorted"
        );
        // Every entry's week is the minimum over that address's
        // observations.
        let probe = entries[entries.len() / 2];
        let min_week = corpus
            .observations
            .iter()
            .filter(|o| o.addr == probe.0)
            .map(|o| u64::from(o.t / WEEK_SECS))
            .min()
            .unwrap();
        assert_eq!(probe.1, min_week);
    }
}
