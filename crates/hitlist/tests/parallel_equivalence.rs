//! The parallel pipeline's determinism contract: every artifact is
//! bit-identical at any thread count.
//!
//! `Experiment::run_with_threads` (and every sharded stage underneath
//! it) must be a pure function of the config — the thread count may only
//! change wall-clock time, never a byte of output.

use proptest::prelude::*;
use v6hitlist::{Dataset, Experiment, ExperimentConfig, NtpCorpus, Observation};
use v6netsim::{SimDuration, SimTime, World, WorldConfig};

#[test]
fn experiment_artifacts_identical_across_thread_counts() {
    let baseline = Experiment::run_with_threads(ExperimentConfig::tiny(4242), 1);
    let digest = baseline.artifact_digest();
    for threads in [2, 8] {
        let run = Experiment::run_with_threads(ExperimentConfig::tiny(4242), threads);
        // Spot-check the raw artifacts first so a mismatch points at the
        // offending stage rather than just the digest.
        assert_eq!(
            baseline.corpus.observations, run.corpus.observations,
            "corpus diverged at {threads} threads"
        );
        assert_eq!(
            baseline.ntp.records(),
            run.ntp.records(),
            "ntp dataset diverged at {threads} threads"
        );
        assert_eq!(
            baseline.hitlist.campaign.discoveries, run.hitlist.campaign.discoveries,
            "hitlist campaign diverged at {threads} threads"
        );
        assert_eq!(
            baseline.caida.campaign.discoveries, run.caida.campaign.discoveries,
            "caida campaign diverged at {threads} threads"
        );
        assert_eq!(
            baseline.backscan.aliased_64s, run.backscan.aliased_64s,
            "backscan diverged at {threads} threads"
        );
        assert_eq!(
            baseline.tracking.stats, run.tracking.stats,
            "tracking diverged at {threads} threads"
        );
        assert_eq!(
            digest,
            run.artifact_digest(),
            "artifact digest diverged at {threads} threads"
        );
    }
}

#[test]
fn corpus_collection_threadcount_invariant() {
    for (seed, days) in [(5u64, 2u64), (77, 9), (901, 11)] {
        let w = World::build(WorldConfig::tiny(), seed);
        let window = SimDuration::days(days);
        let seq = NtpCorpus::collect_with_threads(&w, SimTime::START, window, 1);
        for threads in [3usize, 7] {
            let par = NtpCorpus::collect_with_threads(&w, SimTime::START, window, threads);
            assert_eq!(
                seq.observations, par.observations,
                "seed={seed} days={days}"
            );
            assert_eq!(seq.served_per_vp, par.served_per_vp);
            assert_eq!(seq.protocol_failures, par.protocol_failures);
        }
    }
}

proptest! {
    #[test]
    fn dataset_build_threadcount_invariant(obs in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..40_000)) {
        let observations: Vec<Observation> = obs
            .iter()
            .map(|&(a, t)| Observation {
                // Collapse the key space so duplicate addresses occur.
                addr: std::net::Ipv6Addr::from((a % 257) as u128),
                t: SimTime((t % 1_000) as u64),
            })
            .collect();
        let seq = Dataset::from_observations_with_threads("d", observations.iter().copied(), 1);
        for threads in [2usize, 8] {
            let par = Dataset::from_observations_with_threads("d", observations.iter().copied(), threads);
            prop_assert_eq!(seq.records(), par.records());
            prop_assert_eq!(seq.observation_count(), par.observation_count());
        }
    }
}
