//! The parallel pipeline's determinism contract: every artifact is
//! bit-identical at any thread count.
//!
//! `Experiment::run_with_threads` (and every sharded stage underneath
//! it) must be a pure function of the config — the thread count may only
//! change wall-clock time, never a byte of output.

use proptest::prelude::*;
use v6chaos::{Chaos, FaultPlan, FaultSpec};
use v6hitlist::{Dataset, Experiment, ExperimentConfig, NtpCorpus, Observation};
use v6netsim::{SimDuration, SimTime, World, WorldConfig};

#[test]
fn experiment_artifacts_identical_across_thread_counts() {
    let baseline = Experiment::run_with_threads(ExperimentConfig::tiny(4242), 1);
    let digest = baseline.artifact_digest();
    for threads in [2, 8] {
        let run = Experiment::run_with_threads(ExperimentConfig::tiny(4242), threads);
        // Spot-check the raw artifacts first so a mismatch points at the
        // offending stage rather than just the digest.
        assert_eq!(
            baseline.corpus.observations, run.corpus.observations,
            "corpus diverged at {threads} threads"
        );
        assert_eq!(
            baseline.ntp.records(),
            run.ntp.records(),
            "ntp dataset diverged at {threads} threads"
        );
        assert_eq!(
            baseline.hitlist.campaign.discoveries, run.hitlist.campaign.discoveries,
            "hitlist campaign diverged at {threads} threads"
        );
        assert_eq!(
            baseline.caida.campaign.discoveries, run.caida.campaign.discoveries,
            "caida campaign diverged at {threads} threads"
        );
        assert_eq!(
            baseline.backscan.aliased_64s, run.backscan.aliased_64s,
            "backscan diverged at {threads} threads"
        );
        assert_eq!(
            baseline.tracking.stats, run.tracking.stats,
            "tracking diverged at {threads} threads"
        );
        assert_eq!(
            digest,
            run.artifact_digest(),
            "artifact digest diverged at {threads} threads"
        );
    }
}

#[test]
fn corpus_collection_threadcount_invariant() {
    for (seed, days) in [(5u64, 2u64), (77, 9), (901, 11)] {
        let w = World::build(WorldConfig::tiny(), seed);
        let window = SimDuration::days(days);
        let seq = NtpCorpus::collect_with_threads(&w, SimTime::START, window, 1);
        for threads in [3usize, 7] {
            let par = NtpCorpus::collect_with_threads(&w, SimTime::START, window, threads);
            assert_eq!(
                seq.observations, par.observations,
                "seed={seed} days={days}"
            );
            assert_eq!(seq.served_per_vp, par.served_per_vp);
            assert_eq!(seq.protocol_failures, par.protocol_failures);
        }
    }
}

/// The study DAG's stages with their dependencies, in insertion order —
/// the model the loss-report tests check the real pipeline against.
const STAGES: [(&str, &[&str]); 9] = [
    ("corpus", &[]),
    ("ntp", &["corpus"]),
    ("hitlist", &[]),
    ("caida", &[]),
    ("backscan", &[]),
    ("wardrive", &[]),
    ("alias_findings", &["backscan", "hitlist", "ntp"]),
    ("tracking", &["corpus"]),
    ("geolocation", &["tracking", "wardrive"]),
];

/// Every site the chaos pipeline consults: the stage sites plus one
/// `collect.day.<d>` site per study day.
fn pipeline_sites() -> Vec<String> {
    let (d0, d1) = v6netsim::day_range(SimTime::START, v6netsim::time::STUDY_DURATION);
    STAGES
        .iter()
        .map(|(s, _)| format!("dag.stage.{s}"))
        .chain((d0..d1).map(NtpCorpus::day_site))
        .collect()
}

/// What the plan must lose: permanent stage sites closed over the
/// dependency graph, plus (when the corpus stage itself survives) every
/// permanently failing collection day.
fn expected_loss(plan: &dyn Chaos) -> Vec<String> {
    let mut lost_stages: Vec<&str> = Vec::new();
    for (name, deps) in STAGES {
        if plan.is_permanent(&format!("dag.stage.{name}"))
            || deps.iter().any(|d| lost_stages.contains(d))
        {
            lost_stages.push(name);
        }
    }
    let mut units: Vec<String> = lost_stages
        .iter()
        .map(|s| format!("dag.stage.{s}"))
        .collect();
    if !lost_stages.contains(&"corpus") {
        let (d0, d1) = v6netsim::day_range(SimTime::START, v6netsim::time::STUDY_DURATION);
        units.extend(
            (d0..d1)
                .filter(|&d| plan.is_permanent(&NtpCorpus::day_site(d)))
                .map(NtpCorpus::day_site),
        );
    }
    units.sort();
    units
}

#[test]
fn chaos_transient_runs_reproduce_the_fault_free_digest() {
    let digest = Experiment::run_with_threads(ExperimentConfig::tiny(4242), 2).artifact_digest();
    let plan = FaultPlan::new(7, FaultSpec::transient(0.35));
    // Non-vacuity: the plan actually faults sites this pipeline visits.
    let faulted = pipeline_sites().iter().filter(|s| plan.fails(s, 0)).count();
    assert!(faulted > 0, "seed 7 injects nothing; the test is vacuous");
    for threads in [1usize, 4] {
        let run = Experiment::run_chaos(ExperimentConfig::tiny(4242), threads, &plan);
        assert!(run.converged(), "threads={threads} lost:\n{}", run.loss);
        assert!(run.failures.is_empty());
        assert_eq!(
            run.digest(),
            Some(digest),
            "transient chaos diverged from the fault-free digest (threads={threads})"
        );
    }
}

#[test]
fn chaos_permanent_losses_match_the_plan_at_any_thread_count() {
    let plan = FaultPlan::new(11, FaultSpec::with_permanent(0.25, 0.5));
    let expected = expected_loss(&plan);
    assert!(
        !expected.is_empty(),
        "seed 11 injects no permanent faults; the test is vacuous"
    );
    let r1 = Experiment::run_chaos(ExperimentConfig::tiny(4242), 1, &plan);
    let r4 = Experiment::run_chaos(ExperimentConfig::tiny(4242), 4, &plan);
    assert!(!r1.converged());
    assert_eq!(r1.loss, r4.loss, "loss report depends on thread count");
    assert_eq!(
        r1.loss.unit_names(),
        expected.iter().map(String::as_str).collect::<Vec<_>>(),
        "loss report disagrees with the injected plan"
    );
    // Never a silently truncated artifact: either the pipeline completed
    // (and the loss report flags any dropped days), or there is no
    // experiment to mistake for a full one.
    if let Some(e) = &r1.experiment {
        for d in &e.corpus.lost_days {
            assert!(r1.loss.contains(&NtpCorpus::day_site(*d)));
        }
    } else {
        assert!(r1
            .failures
            .iter()
            .any(|f| r1.loss.contains(&format!("dag.stage.{}", f.name))));
    }
}

proptest! {
    #[test]
    fn dataset_build_threadcount_invariant(obs in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..40_000)) {
        let observations: Vec<Observation> = obs
            .iter()
            .map(|&(a, t)| Observation {
                // Collapse the key space so duplicate addresses occur.
                addr: std::net::Ipv6Addr::from((a % 257) as u128),
                t: SimTime((t % 1_000) as u64),
            })
            .collect();
        let seq = Dataset::from_observations_with_threads("d", observations.iter().copied(), 1);
        for threads in [2usize, 8] {
            let par = Dataset::from_observations_with_threads("d", observations.iter().copied(), threads);
            prop_assert_eq!(seq.records(), par.records());
            prop_assert_eq!(seq.observation_count(), par.observation_count());
        }
    }
}
