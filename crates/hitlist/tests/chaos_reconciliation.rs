//! Chaos-vs-metrics reconciliation: after a chaos run, the global
//! `chaos.lost_units` counter advanced by exactly the number of units
//! the run's [`v6chaos::LossReport`] names, and the `chaos.decisions.*`
//! counters prove faults were actually injected (non-vacuity).
//!
//! This file must stay a single-test binary: the registry is global to
//! the process, so a sibling `#[test]` running concurrently would
//! perturb the deltas.

use v6chaos::{FaultPlan, FaultSpec};
use v6hitlist::{Experiment, ExperimentConfig};

fn counter(name: &str) -> u64 {
    v6obs::global().snapshot().counter(name).unwrap_or(0)
}

#[test]
fn lost_units_counter_reconciles_with_the_loss_report() {
    let plan = FaultPlan::new(11, FaultSpec::with_permanent(0.25, 0.5));
    let lost_before = counter("chaos.lost_units");
    let decisions_before = counter("chaos.decisions.errors");

    let run = Experiment::run_chaos(ExperimentConfig::tiny(4242), 4, &plan);

    assert!(
        !run.loss.is_empty(),
        "seed 11 lost nothing; the reconciliation is vacuous"
    );
    assert!(
        counter("chaos.decisions.errors") > decisions_before,
        "no injected errors were counted despite a faulting plan"
    );
    assert_eq!(
        counter("chaos.lost_units") - lost_before,
        run.loss.len() as u64,
        "chaos.lost_units does not reconcile with the loss report:\n{}",
        run.loss
    );
}
