//! The observability determinism contract: data-derived counters in the
//! process-global registry (`collect.*`, `scan.*`, `chaos.*`) advance by
//! exactly the same amounts regardless of thread count. Scheduling
//! metrics (`par.pool.*`, `par.dag.ready_peak`) and latency histograms
//! are explicitly excluded — they describe the execution, not the data.
//!
//! This file must stay a single-test binary: the registry is global to
//! the process, so a sibling `#[test]` running concurrently would
//! perturb the deltas.

use v6hitlist::{Experiment, ExperimentConfig};
use v6obs::MetricsSnapshot;

const INVARIANT_PREFIXES: &[&str] = &["collect.", "scan.", "chaos."];

fn invariant_counters(snap: &MetricsSnapshot) -> Vec<(String, u64)> {
    snap.counters
        .iter()
        .filter(|(name, _)| INVARIANT_PREFIXES.iter().any(|p| name.starts_with(p)))
        .cloned()
        .collect()
}

fn deltas(later: &[(String, u64)], earlier: &[(String, u64)]) -> Vec<(String, u64)> {
    later
        .iter()
        .map(|(name, v)| {
            let before = earlier
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0);
            (name.clone(), v - before)
        })
        .collect()
}

#[test]
fn data_derived_counters_are_thread_count_invariant() {
    let before_seq = invariant_counters(&v6obs::global().snapshot());
    Experiment::run_with_threads(ExperimentConfig::tiny(4242), 1);
    let before_par = invariant_counters(&v6obs::global().snapshot());
    Experiment::run_with_threads(ExperimentConfig::tiny(4242), 4);
    let after_par = invariant_counters(&v6obs::global().snapshot());

    let seq = deltas(&before_par, &before_seq);
    let par = deltas(&after_par, &before_par);

    // Non-vacuity: the run actually drove the instrumented paths.
    let total: u64 = seq.iter().map(|&(_, v)| v).sum();
    assert!(
        total > 0,
        "no data-derived counters advanced; nothing tested"
    );
    assert!(
        seq.iter()
            .any(|(n, v)| n == "collect.observations" && *v > 0),
        "collect.observations did not advance"
    );
    assert!(
        seq.iter().any(|(n, v)| n == "scan.zmap6.probes" && *v > 0),
        "scan.zmap6.probes did not advance"
    );

    assert_eq!(
        seq, par,
        "data-derived counters diverged between 1 and 4 threads"
    );
}
