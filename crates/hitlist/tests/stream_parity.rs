//! Streaming ≡ batch on *real* pipeline output.
//!
//! The proptests in `v6stream` pin the equivalence invariant on
//! synthetic corpora; this test closes the loop on measurement data:
//! a passive NTP corpus is replayed as weekly epoch publications, a
//! `StreamDriver` attributes it through the world's own routing table,
//! and at every boundary each operator's checksum must equal a batch
//! rebuild from the materialized corpus.

use std::sync::Arc;

use v6hitlist::{corpus_entries, world_as_table, NtpCorpus};
use v6netsim::{SimDuration, SimTime, World, WorldConfig};
use v6store::replica::{self};
use v6store::{EpochState, EpochView};
use v6stream::{fold_content, Analytics, Offer, SharedResolver, StreamDriver};

const WEEKS: u64 = 4;

/// The corpus as cumulative weekly publications: entry list `w` holds
/// every address first seen in week `<= w`, tagged with its first week.
fn weekly_corpora(corpus: &NtpCorpus) -> Vec<Vec<(u128, u32)>> {
    let all = corpus_entries(corpus);
    (0..WEEKS)
        .map(|w| {
            all.iter()
                .filter(|&&(_, week)| week <= w)
                .map(|&(bits, week)| (bits, week as u32))
                .collect()
        })
        .collect()
}

#[test]
fn streaming_matches_batch_on_replayed_corpus() {
    let world = World::build(WorldConfig::tiny(), 613);
    let corpus = NtpCorpus::collect(&world, SimTime::START, SimDuration::days(7 * WEEKS));
    let resolver: SharedResolver = Arc::new(world_as_table(&world));

    let mut state = EpochState::default();
    let mut driver = StreamDriver::new(resolver.clone());
    let mut fed_any = false;
    for (w, entries) in weekly_corpora(&corpus).iter().enumerate() {
        let checksum = entries
            .iter()
            .fold(0u64, |acc, &(bits, week)| fold_content(acc, bits, week));
        let delta = replica::delta_between(
            &state,
            &EpochView {
                epoch: w as u64 + 1,
                week: w as u64,
                content_checksum: checksum,
                missing_shards: &[],
                entries,
                aliases: &[],
            },
        );
        replica::apply(&mut state, &delta);
        fed_any |= !delta.added.is_empty();

        assert_eq!(
            driver.feed(&delta),
            Offer::Applied(delta.removed.len() + delta.added.len())
        );
        assert_eq!(driver.content_checksum(), checksum);
        let batch = Analytics::from_entries(resolver.clone(), entries);
        assert_eq!(
            driver.analytics().checksums(),
            batch.checksums(),
            "streaming diverged from batch at week {w}"
        );
    }
    assert!(fed_any, "corpus replay produced no deltas — vacuous test");

    // The world's table attributes real corpus traffic: the density
    // operator saw populated /48s and the per-AS entropy operator
    // resolved addresses to routed ASes.
    assert!(driver.analytics().density.snapshot(1).networks > 0);
    assert!(!driver.analytics().entropy.snapshot().is_empty());
}
