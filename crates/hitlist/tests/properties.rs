//! Property-based tests for the core hitlist data structures.

use proptest::prelude::*;
use std::net::Ipv6Addr;

use v6hitlist::cdf::Cdf;
use v6hitlist::{Dataset, Observation, Release48};
use v6netsim::SimTime;

fn obs_strategy() -> impl Strategy<Value = Vec<Observation>> {
    prop::collection::vec(
        (any::<u128>(), 0u64..20_000_000).prop_map(|(a, t)| Observation {
            addr: Ipv6Addr::from(a),
            t: SimTime(t),
        }),
        0..300,
    )
}

proptest! {
    /// Dataset aggregation conserves observation counts and orders
    /// first/last correctly.
    #[test]
    fn dataset_aggregation_invariants(obs in obs_strategy()) {
        let n = obs.len() as u64;
        let d = Dataset::from_observations("p", obs.clone());
        prop_assert_eq!(d.observation_count(), n);
        let total: u64 = d.records().iter().map(|r| r.count).sum();
        prop_assert_eq!(total, n);
        for r in d.records() {
            prop_assert!(r.first <= r.last);
            // first/last must be actual observation times of this address.
            prop_assert!(obs
                .iter()
                .any(|o| o.addr == r.addr && o.t == r.first));
            prop_assert!(obs
                .iter()
                .any(|o| o.addr == r.addr && o.t == r.last));
        }
        // Records are sorted and unique by address.
        for w in d.records().windows(2) {
            prop_assert!(u128::from(w[0].addr) < u128::from(w[1].addr));
        }
    }

    /// Slicing never invents records and keeps exactly the overlapping ones.
    #[test]
    fn dataset_slice_window(obs in obs_strategy(), from in 0u64..20_000_000, len in 1u64..10_000_000) {
        let d = Dataset::from_observations("p", obs);
        let s = d.slice("s", SimTime(from), SimTime(from + len));
        prop_assert!(s.len() <= d.len());
        for r in s.records() {
            let orig = d.record(r.addr).expect("sliced record must exist");
            prop_assert_eq!(orig.first, r.first);
            prop_assert!(r.first.as_secs() < from + len);
            prop_assert!(r.last.as_secs() >= from);
        }
    }

    /// Common-address counts are symmetric and bounded.
    #[test]
    fn dataset_common_symmetric(a in obs_strategy(), b in obs_strategy()) {
        let x = Dataset::from_observations("x", a);
        let y = Dataset::from_observations("y", b);
        let c = x.common_addresses(&y);
        prop_assert_eq!(c, y.common_addresses(&x));
        prop_assert!(c as usize <= x.len().min(y.len()));
        let c48 = x.common_48s(&y);
        prop_assert_eq!(c48, y.common_48s(&x));
        prop_assert!(c48 <= x.distinct_48s().min(y.distinct_48s()));
        // Shared addresses imply shared /48s.
        prop_assert!(c == 0 || c48 > 0);
    }

    /// The CDF is a valid distribution function: monotone, bounded, and
    /// consistent with quantiles.
    #[test]
    fn cdf_is_monotone(samples in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let c = Cdf::new(samples.clone());
        let lo = c.min().unwrap();
        let hi = c.max().unwrap();
        prop_assert_eq!(c.fraction_at_or_below(lo - 1.0), 0.0);
        prop_assert_eq!(c.fraction_at_or_below(hi), 1.0);
        let mut prev = 0.0;
        for (_, y) in c.series(lo, hi, 17) {
            prop_assert!(y >= prev - 1e-12);
            prev = y;
        }
        // Median splits mass: at least half at-or-below.
        let m = c.median().unwrap();
        prop_assert!(c.fraction_at_or_below(m) >= 0.5);
    }

    /// Quantiles are order statistics: q=0 is min, q=1 is max, monotone.
    #[test]
    fn cdf_quantiles_ordered(samples in prop::collection::vec(-1e6f64..1e6, 1..100),
                             q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let c = Cdf::new(samples);
        prop_assert_eq!(c.quantile(0.0), c.min());
        prop_assert_eq!(c.quantile(1.0), c.max());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(c.quantile(lo).unwrap() <= c.quantile(hi).unwrap());
    }

    /// The /48 release never leaks host bits and covers exactly the /48s
    /// of its input.
    #[test]
    fn release_invariant(addrs in prop::collection::vec(any::<u128>(), 0..300)) {
        let set = v6addr::AddrSet::from_bits(addrs.clone());
        let r = Release48::from_addr_set("p", &set);
        prop_assert!(r.verify_privacy_invariant());
        prop_assert_eq!(r.len() as u64, set.distinct_prefixes(48));
        for a in &addrs {
            let p48 = v6addr::Prefix::from_bits(*a, 48);
            prop_assert!(r.prefixes.binary_search(&p48).is_ok());
        }
    }
}
