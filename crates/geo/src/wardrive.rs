//! A synthetic wardriving database: geolocated WiFi BSSIDs.
//!
//! The §5.3 geolocation attack joins wired MAC addresses (leaked through
//! EUI-64 IIDs) against databases like WiGLE and the Apple/Google WiFi
//! location APIs, which map *wireless* BSSIDs to coordinates. The join
//! works because manufacturers allocate a device's wired and wireless
//! MACs a small constant apart within one OUI.
//!
//! This module builds the substitute database from ground truth the
//! attack code never sees: each home network has a location (country
//! centroid + jitter) and its CPE's WiFi BSSID is the wired MAC plus a
//! hidden per-OUI offset. Coverage varies by country the way real
//! wardriving does (Germany is densely covered — which, combined with
//! AVM's EUI-64 WAN addresses, is why 75% of the paper's geolocated
//! devices are German).

use std::collections::HashMap;

use v6addr::mac::Oui;
use v6addr::Mac;
use v6netsim::rng::{hash64, Rng};
use v6netsim::{Country, DeviceKind, World};

use crate::latlon::LatLon;

/// The hidden ground-truth wired→wireless NIC offset for an OUI.
///
/// Deterministic per OUI; small constants like real vendor allocation
/// schemes (+1, +2, ±4, +8). The attack must *infer* this from pair
/// statistics — code under test never calls it.
pub fn ground_truth_offset(oui: Oui) -> i64 {
    const OFFSETS: [i64; 8] = [1, 2, 4, 8, -1, -2, 3, 16];
    OFFSETS[(hash64(0x000f_f5e7, &oui.0) % 8) as usize]
}

/// The ground-truth WiFi BSSID of a CPE given its wired (WAN) MAC.
pub fn bssid_for_wired(wired: Mac) -> Mac {
    wired.wrapping_add_nic(ground_truth_offset(wired.oui()))
}

/// Ground-truth location of a home network: its country centroid plus a
/// deterministic jitter of a few degrees.
pub fn network_location(world: &World, network: u32) -> LatLon {
    let net = &world.networks[network as usize];
    let country = world.ases[net.as_index as usize].info.country;
    let centroid = world
        .countries
        .get(country)
        .map(|c| c.centroid)
        .unwrap_or((0.0, 0.0));
    let mut rng = Rng::new(world.seed ^ 0x10c).fork(b"netloc", network as u64);
    LatLon::new(
        centroid.0 + rng.gaussian() * 1.5,
        centroid.1 + rng.gaussian() * 2.0,
    )
}

/// Wardriving coverage: probability a given country's APs are in the DB.
pub fn coverage(country: Country) -> f64 {
    match country.as_str() {
        "DE" => 0.90,
        "NL" | "LU" | "FR" | "GB" | "PL" | "SE" | "ES" | "BG" | "IT" => 0.55,
        "US" | "CA" => 0.40,
        "MX" | "BR" | "AR" => 0.30,
        "IN" => 0.22,
        "JP" | "KR" | "TW" | "HK" | "SG" | "AU" => 0.30,
        "CN" => 0.05, // effectively unwardriven in public datasets
        _ => 0.15,
    }
}

/// The BSSID→location database (WiGLE / Apple / Google composite).
#[derive(Debug, Clone, Default)]
pub struct WardriveDb {
    entries: HashMap<Mac, LatLon>,
}

impl WardriveDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects the database from the world: every home network's CPE
    /// access point is included with country-dependent probability.
    pub fn collect(world: &World) -> Self {
        let mut entries = HashMap::new();
        for net in &world.networks {
            let cpe = world.device(net.cpe);
            debug_assert_eq!(cpe.kind, DeviceKind::CpeRouter);
            let country = world.ases[net.as_index as usize].info.country;
            let h = hash64(world.seed ^ 0xdb, &net.id.to_be_bytes());
            if (h as f64 / u64::MAX as f64) >= coverage(country) {
                continue;
            }
            let bssid = bssid_for_wired(cpe.mac);
            entries.insert(bssid, network_location(world, net.id));
        }
        WardriveDb { entries }
    }

    /// Inserts one observation (for tests / incremental wardriving).
    pub fn insert(&mut self, bssid: Mac, loc: LatLon) {
        self.entries.insert(bssid, loc);
    }

    /// Looks up a BSSID's recorded location.
    pub fn lookup(&self, bssid: Mac) -> Option<LatLon> {
        self.entries.get(&bssid).copied()
    }

    /// Number of geolocated BSSIDs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All BSSIDs within one OUI (the per-OUI join set the offset
    /// inference works over).
    pub fn bssids_in_oui(&self, oui: Oui) -> Vec<Mac> {
        let mut v: Vec<Mac> = self
            .entries
            .keys()
            .copied()
            .filter(|m| m.oui() == oui)
            .collect();
        v.sort_unstable();
        v
    }

    /// Every distinct OUI present.
    pub fn ouis(&self) -> Vec<Oui> {
        let mut v: Vec<Oui> = self.entries.keys().map(|m| m.oui()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterates all `(bssid, location)` entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (Mac, LatLon)> + '_ {
        self.entries.iter().map(|(&m, &l)| (m, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::WorldConfig;

    fn world() -> World {
        World::build(WorldConfig::tiny(), 88)
    }

    #[test]
    fn offsets_are_small_and_stable() {
        let oui: Oui = "3c:a6:2f".parse().unwrap();
        let o1 = ground_truth_offset(oui);
        assert_eq!(o1, ground_truth_offset(oui));
        assert!(o1.abs() <= 16 && o1 != 0);
    }

    #[test]
    fn bssid_shares_oui_with_wired() {
        let wired: Mac = "3c:a6:2f:12:34:56".parse().unwrap();
        let bssid = bssid_for_wired(wired);
        assert_eq!(bssid.oui(), wired.oui());
        assert_ne!(bssid, wired);
        assert_eq!(
            wired.nic_offset_to(bssid),
            Some(ground_truth_offset(wired.oui()))
        );
    }

    #[test]
    fn collection_respects_coverage_gradient() {
        let w = world();
        let db = WardriveDb::collect(&w);
        assert!(!db.is_empty());
        // Compute per-country inclusion rates.
        let mut per_country: HashMap<Country, (u32, u32)> = HashMap::new();
        for net in &w.networks {
            let c = w.ases[net.as_index as usize].info.country;
            let bssid = bssid_for_wired(w.device(net.cpe).mac);
            let e = per_country.entry(c).or_insert((0, 0));
            e.1 += 1;
            if db.lookup(bssid).is_some() {
                e.0 += 1;
            }
        }
        let rate = |cc: &str| -> Option<f64> {
            per_country
                .get(&Country::new(cc))
                .filter(|(_, n)| *n >= 10)
                .map(|(k, n)| *k as f64 / *n as f64)
        };
        if let (Some(de), Some(cn)) = (rate("DE"), rate("CN")) {
            assert!(de > cn, "DE coverage {de} should exceed CN {cn}");
        }
    }

    #[test]
    fn network_locations_near_country_centroid() {
        let w = world();
        for net in w.networks.iter().take(50) {
            let c = w.ases[net.as_index as usize].info.country;
            let centroid = w.countries.get(c).unwrap().centroid;
            let loc = network_location(&w, net.id);
            let d = LatLon::new(centroid.0, centroid.1).distance_km(&loc);
            assert!(d < 1_500.0, "{} is {d:.0} km from {c} centroid", net.id);
        }
    }

    #[test]
    fn oui_grouping() {
        let mut db = WardriveDb::new();
        let a: Mac = "aa:bb:cc:00:00:01".parse().unwrap();
        let b: Mac = "aa:bb:cc:00:00:09".parse().unwrap();
        let c: Mac = "aa:bb:cd:00:00:01".parse().unwrap();
        for m in [a, b, c] {
            db.insert(m, LatLon::new(1.0, 2.0));
        }
        assert_eq!(db.bssids_in_oui("aa:bb:cc".parse().unwrap()), vec![a, b]);
        assert_eq!(db.ouis().len(), 2);
    }
}
