//! A WiFi-location API façade (Apple / Google geolocation services).
//!
//! The paper queries commercial BSSID-location APIs as well as open
//! wardriving datasets (§5.3 [7, 29, 71]). These services answer single
//! BSSID lookups, return nearby APs along with the queried one (Apple's
//! behaviour, heavily exploited by IPvSeeYou), and rate-limit callers.

use v6addr::Mac;
use v6netsim::rng::hash64;

use crate::latlon::LatLon;
use crate::wardrive::WardriveDb;

/// Query outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiResponse {
    /// The BSSID is known; its location plus up-to-`k` nearby APs.
    Found {
        /// Location of the queried BSSID.
        location: LatLon,
        /// Other APs the service volunteers from the same area.
        nearby: Vec<(Mac, LatLon)>,
    },
    /// Unknown BSSID.
    NotFound,
    /// Rate limit exceeded.
    RateLimited,
}

/// A rate-limited BSSID geolocation service backed by a wardriving DB.
#[derive(Debug)]
pub struct WifiLocationApi {
    db: WardriveDb,
    /// Maximum queries the caller may issue.
    pub quota: u64,
    used: u64,
    nearby_count: usize,
}

impl WifiLocationApi {
    /// Wraps a database with a query quota.
    pub fn new(db: WardriveDb, quota: u64) -> Self {
        WifiLocationApi {
            db,
            quota,
            used: 0,
            nearby_count: 4,
        }
    }

    /// Queries one BSSID.
    pub fn query(&mut self, bssid: Mac) -> ApiResponse {
        if self.used >= self.quota {
            return ApiResponse::RateLimited;
        }
        self.used += 1;
        match self.db.lookup(bssid) {
            None => ApiResponse::NotFound,
            Some(location) => {
                // Volunteer a few deterministic same-OUI neighbours within
                // ~100 km, like Apple's API does.
                let mut nearby: Vec<(Mac, LatLon)> = self
                    .db
                    .bssids_in_oui(bssid.oui())
                    .into_iter()
                    .filter(|m| *m != bssid)
                    .filter_map(|m| self.db.lookup(m).map(|l| (m, l)))
                    .filter(|(_, l)| l.distance_km(&location) < 100.0)
                    .collect();
                nearby.sort_by_key(|(m, _)| hash64(bssid.as_u64(), &m.bytes()));
                nearby.truncate(self.nearby_count);
                ApiResponse::Found { location, nearby }
            }
        }
    }

    /// Queries consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining quota.
    pub fn remaining(&self) -> u64 {
        self.quota - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> WardriveDb {
        let mut db = WardriveDb::new();
        for i in 0..10u32 {
            let m: Mac = Mac::new([0xaa, 0xbb, 0xcc, 0, 0, i as u8]);
            db.insert(m, LatLon::new(52.0 + i as f64 * 0.01, 13.0));
        }
        // A far-away AP in the same OUI: must not be "nearby".
        db.insert(
            Mac::new([0xaa, 0xbb, 0xcc, 0, 1, 0]),
            LatLon::new(-33.0, 151.0),
        );
        db
    }

    #[test]
    fn found_with_nearby() {
        let mut api = WifiLocationApi::new(db(), 100);
        match api.query(Mac::new([0xaa, 0xbb, 0xcc, 0, 0, 0])) {
            ApiResponse::Found { location, nearby } => {
                assert!((location.lat - 52.0).abs() < 1e-9);
                assert!(!nearby.is_empty());
                assert!(nearby.len() <= 4);
                for (_, l) in &nearby {
                    assert!(l.distance_km(&location) < 100.0);
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_bssid() {
        let mut api = WifiLocationApi::new(db(), 100);
        assert_eq!(
            api.query(Mac::new([0x00, 0x11, 0x22, 0, 0, 0])),
            ApiResponse::NotFound
        );
    }

    #[test]
    fn quota_enforced() {
        let mut api = WifiLocationApi::new(db(), 2);
        let m = Mac::new([0xaa, 0xbb, 0xcc, 0, 0, 0]);
        assert!(matches!(api.query(m), ApiResponse::Found { .. }));
        assert!(matches!(api.query(m), ApiResponse::Found { .. }));
        assert_eq!(api.query(m), ApiResponse::RateLimited);
        assert_eq!(api.used(), 2);
        assert_eq!(api.remaining(), 0);
    }
}
