//! Geographic coordinates and distances.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A WGS84-ish latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude, degrees, positive north.
    pub lat: f64,
    /// Longitude, degrees, positive east.
    pub lon: f64,
}

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

impl LatLon {
    /// Builds a coordinate, clamping latitude to ±90 and wrapping
    /// longitude into ±180.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        if lon == -180.0 {
            lon = 180.0;
        }
        LatLon { lat, lon }
    }

    /// Great-circle distance to another point (haversine), kilometres.
    pub fn distance_km(&self, other: &LatLon) -> f64 {
        let (la1, lo1) = (self.lat.to_radians(), self.lon.to_radians());
        let (la2, lo2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = la2 - la1;
        let dlon = lo2 - lo1;
        let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = LatLon::new(52.52, 13.40);
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn berlin_to_munich() {
        // ~504 km great-circle.
        let berlin = LatLon::new(52.5200, 13.4050);
        let munich = LatLon::new(48.1351, 11.5820);
        let d = berlin.distance_km(&munich);
        assert!((d - 504.0).abs() < 10.0, "d = {d}");
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    fn clamping_and_wrapping() {
        let p = LatLon::new(95.0, 200.0);
        assert_eq!(p.lat, 90.0);
        assert!((p.lon - -160.0).abs() < 1e-9);
        assert_eq!(LatLon::new(0.0, -180.0).lon, 180.0);
    }

    #[test]
    fn distance_symmetry() {
        let a = LatLon::new(40.0, -75.0);
        let b = LatLon::new(-33.9, 151.2);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }
}
