//! A MaxMind-GeoLite2-like IP→country database.
//!
//! The paper geolocates NTP clients with GeoLite2 City but, because IPv6
//! geolocation is error-prone, trusts only the *country* field (§3). Our
//! substitute is built from the world's prefix registry with a small
//! deterministic error rate, so consumers must tolerate exactly the kind
//! of noise the real database has.

use std::net::Ipv6Addr;

use v6addr::{Prefix, PrefixMap};
use v6netsim::rng::hash64;
use v6netsim::{Country, World};

/// A prefix→country geolocation database.
#[derive(Debug, Clone)]
pub struct GeoDb {
    map: PrefixMap<Country>,
    errors: u64,
}

impl GeoDb {
    /// Fraction of prefixes labeled with a *wrong* country, mimicking
    /// real-world IPv6 geolocation error.
    pub const ERROR_RATE: f64 = 0.03;

    /// Builds the database from a world's routing registry.
    ///
    /// Each AS's /32 is labeled with its true country except for a
    /// deterministic ~3% that get a neighbour's label.
    pub fn from_world(world: &World) -> Self {
        let mut map = PrefixMap::new();
        let all: Vec<Country> = world.countries.all().iter().map(|c| c.code).collect();
        let mut errors = 0;
        for asr in &world.ases {
            let h = hash64(world.seed ^ 0x6e0, asr.info.name.as_bytes());
            let truth = asr.info.country;
            let label = if (h as f64 / u64::MAX as f64) < Self::ERROR_RATE {
                errors += 1;
                all[(h >> 8) as usize % all.len()]
            } else {
                truth
            };
            map.insert(asr.prefix32(), label);
        }
        GeoDb { map, errors }
    }

    /// Builds an exact (error-free) database, for tests and calibration.
    pub fn exact_from_world(world: &World) -> Self {
        let mut map = PrefixMap::new();
        for asr in &world.ases {
            map.insert(asr.prefix32(), asr.info.country);
        }
        GeoDb { map, errors: 0 }
    }

    /// Builds from explicit `(prefix, country)` records.
    pub fn from_records<I: IntoIterator<Item = (Prefix, Country)>>(records: I) -> Self {
        let mut map = PrefixMap::new();
        for (p, c) in records {
            map.insert(p, c);
        }
        GeoDb { map, errors: 0 }
    }

    /// Country lookup (longest prefix match).
    pub fn country(&self, addr: Ipv6Addr) -> Option<Country> {
        self.map.longest_match(addr).map(|(_, &c)| c)
    }

    /// Number of prefix records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// How many records carry a deliberately wrong label.
    pub fn error_records(&self) -> u64 {
        self.errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::WorldConfig;

    fn world() -> World {
        World::build(WorldConfig::tiny(), 77)
    }

    #[test]
    fn lookups_mostly_match_ground_truth() {
        let w = world();
        let db = GeoDb::from_world(&w);
        let mut hits = 0;
        let mut total = 0;
        for asr in &w.ases {
            let addr = asr.router48().offset(1);
            total += 1;
            if db.country(addr) == Some(asr.info.country) {
                hits += 1;
            }
        }
        let acc = hits as f64 / total as f64;
        assert!(acc > 0.90, "accuracy {acc}");
        assert!(acc < 1.0 || db.error_records() == 0);
    }

    #[test]
    fn exact_db_is_perfect() {
        let w = world();
        let db = GeoDb::exact_from_world(&w);
        for asr in &w.ases {
            let addr = asr.customer33().offset(0x42);
            assert_eq!(db.country(addr), Some(asr.info.country));
        }
        assert_eq!(db.error_records(), 0);
    }

    #[test]
    fn unrouted_space_is_unknown() {
        let w = world();
        let db = GeoDb::from_world(&w);
        assert_eq!(db.country("2001:db8::1".parse().unwrap()), None);
    }

    #[test]
    fn from_records_longest_match() {
        let de = Country::new("DE");
        let fr = Country::new("FR");
        let db = GeoDb::from_records([
            ("2a00::/16".parse().unwrap(), de),
            ("2a00:5::/32".parse().unwrap(), fr),
        ]);
        assert_eq!(db.country("2a00:1::1".parse().unwrap()), Some(de));
        assert_eq!(db.country("2a00:5::1".parse().unwrap()), Some(fr));
        assert_eq!(db.len(), 2);
    }
}
