//! # v6geo — geolocation substrates
//!
//! The geolocation side of the *IPv6 Hitlists at Scale* (SIGCOMM 2023)
//! reproduction. The paper uses MaxMind GeoLite2 for country-level client
//! geolocation (§3) and WiGLE/Apple/Google BSSID databases for the §5.3
//! street-level geolocation attack; this crate provides faithful
//! synthetic substitutes:
//!
//! * [`latlon`] — coordinates and haversine distances.
//! * [`maxmind`] — a prefix→country database with realistic error.
//! * [`wardrive`] — a BSSID→location wardriving database built from the
//!   world's CPE access points, with country-dependent coverage and a
//!   hidden per-OUI wired→wireless MAC offset.
//! * [`wifi_api`] — a rate-limited WiFi-location query service façade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latlon;
pub mod maxmind;
pub mod wardrive;
pub mod wifi_api;

pub use latlon::{LatLon, EARTH_RADIUS_KM};
pub use maxmind::GeoDb;
pub use wardrive::{bssid_for_wired, coverage, network_location, WardriveDb};
pub use wifi_api::{ApiResponse, WifiLocationApi};
