//! # v6chaos — deterministic fault injection for the hitlist pipeline
//!
//! The paper's seven-month collection survived real churn: pool servers
//! dropping out, bursty load, partial weekly releases. Our reproduction
//! must therefore prove its failure paths, not just its happy paths —
//! and it must prove them *reproducibly*. Everything here is a pure
//! function of a 64-bit seed: a [`FaultPlan`] assigns every named fault
//! site (a DAG stage, an ingestion shard, a collection day) a fixed
//! [`SiteScript`] saying which attempts fail, how, and whether the site
//! stalls first. Replaying the same seed replays the same faults, at any
//! thread count.
//!
//! The contract the chaos suite pins (see `crates/hitlist/tests` and
//! `crates/serve/tests`):
//!
//! * **Transient faults converge.** If every injected fault is
//!   transient, retry/backoff/backfill must reproduce the byte-identical
//!   artifacts of a fault-free run.
//! * **Permanent faults are accounted.** If a site fails permanently,
//!   the run must report exactly which units were lost (a [`LossReport`])
//!   — never a silently truncated artifact.
//!
//! Site naming conventions used across the workspace:
//!
//! | site                       | injected into                          |
//! |----------------------------|----------------------------------------|
//! | `dag.stage.<name>`         | one `v6par::Dag` stage attempt         |
//! | `collect.day.<d>`          | one day of passive NTP collection      |
//! | `serve.worker.update.<seq>`| shard-worker normalization of update   |
//! | `serve.merger.update.<seq>`| the ingestion merger (stalls only)     |
//! | `serve.shard.<i>`          | merging accumulated state of shard `i` |
//! | `store.append.<epoch>`     | epoch-log append: `Error` tears the    |
//! |                            | frame mid-write, `Panic` drops the     |
//! |                            | tail page (partial flush); both fail   |
//! |                            | the publish                            |
//! | `store.bitrot.<epoch>`     | silent bit flip inside the appended    |
//! |                            | frame — the append *succeeds*; only    |
//! |                            | recovery detects and quarantines it    |
//! | `store.checkpoint.<epoch>` | checkpoint compaction: the checkpoint  |
//! |                            | file tears and the log is kept intact  |
//! | `wire.<label>.<seq>`       | one chunk sent on a `v6wire`           |
//! |                            | `ChaosTransport`: `Error` drops the    |
//! |                            | chunk (loss), `Panic` flips one        |
//! |                            | deterministic bit (corruption the      |
//! |                            | frame checksums must catch), `Stall`   |
//! |                            | defers delivery until the release      |
//! |                            | time passes (slow peer)                |
//! | `cluster.<node>.<seq>`     | one chunk a cluster node sends on the  |
//! |                            | `v6cluster` fabric: `Error` drops the  |
//! |                            | chunk (loss), `Stall` defers delivery, |
//! |                            | `Panic` **kills the sending node** —   |
//! |                            | its stores drop and it later restarts  |
//! |                            | through crash recovery                 |
//!
//! The seed comes from the caller or from the `V6_CHAOS_SEED`
//! environment variable (see [`seed_from_env`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

use v6netsim::rng::{hash64, Rng};

/// Cached `chaos.decisions.*` counters in the global `v6obs` registry.
struct DecisionMetrics {
    errors: v6obs::Counter,
    panics: v6obs::Counter,
    stalls: v6obs::Counter,
}

fn decision_metrics() -> &'static DecisionMetrics {
    static METRICS: OnceLock<DecisionMetrics> = OnceLock::new();
    METRICS.get_or_init(|| DecisionMetrics {
        errors: v6obs::counter("chaos.decisions.errors"),
        panics: v6obs::counter("chaos.decisions.panics"),
        stalls: v6obs::counter("chaos.decisions.stalls"),
    })
}

/// Domain separator so chaos draws never collide with simulator draws
/// made from the same numeric seed.
const CHAOS_SALT: u64 = 0x6368_616f_735f_7631; // "chaos_v1"

/// The chaos seed, honoring a `V6_CHAOS_SEED` environment override.
///
/// Returns `default` when the variable is unset or unparseable.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("V6_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// What the injector tells a site to do on one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Proceed normally.
    None,
    /// Sleep this long, then proceed normally (back-pressure / slow peer).
    Stall(Duration),
    /// Fail this attempt with a recoverable error.
    Error,
    /// Fail this attempt by crashing (a panic / dead worker thread).
    Panic,
}

impl Fault {
    /// True when this decision fails the attempt (error or crash).
    pub fn is_failure(self) -> bool {
        matches!(self, Fault::Error | Fault::Panic)
    }
}

/// The fixed per-site script a plan assigns: which attempts fail and how.
///
/// Attempt indices `0..fail_attempts` fail; later attempts succeed.
/// `fail_attempts == u32::MAX` means the site fails *permanently* — no
/// retry budget clears it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteScript {
    /// Number of leading attempts that fail (`u32::MAX` = all of them).
    pub fail_attempts: u32,
    /// Failures crash (panic / thread death) rather than return an error.
    pub panics: bool,
    /// Stall applied to the first *succeeding* attempt, if any.
    pub stall: Option<Duration>,
}

impl SiteScript {
    /// A site that never faults.
    pub fn ok() -> Self {
        SiteScript {
            fail_attempts: 0,
            panics: false,
            stall: None,
        }
    }

    /// A site whose first `n` attempts fail with recoverable errors.
    pub fn transient(n: u32) -> Self {
        SiteScript {
            fail_attempts: n,
            panics: false,
            stall: None,
        }
    }

    /// A site whose first `n` attempts crash.
    pub fn transient_panic(n: u32) -> Self {
        SiteScript {
            fail_attempts: n,
            panics: true,
            stall: None,
        }
    }

    /// A site that fails every attempt with recoverable errors.
    pub fn permanent() -> Self {
        SiteScript {
            fail_attempts: u32::MAX,
            panics: false,
            stall: None,
        }
    }

    /// A site that crashes on every attempt.
    pub fn permanent_panic() -> Self {
        SiteScript {
            fail_attempts: u32::MAX,
            panics: true,
            stall: None,
        }
    }

    /// The same script with a stall on the first succeeding attempt.
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = Some(stall);
        self
    }

    /// True when no retry budget clears this site.
    pub fn is_permanent(&self) -> bool {
        self.fail_attempts == u32::MAX
    }

    /// The decision for one attempt index under this script.
    pub fn decide(&self, attempt: u32) -> Fault {
        if attempt < self.fail_attempts {
            if self.panics {
                Fault::Panic
            } else {
                Fault::Error
            }
        } else if attempt == self.fail_attempts {
            match self.stall {
                Some(d) => Fault::Stall(d),
                None => Fault::None,
            }
        } else {
            Fault::None
        }
    }
}

/// A source of deterministic fault decisions, keyed by site name.
///
/// Implementations must be pure: the script for a site never depends on
/// call order, thread count, or wall-clock time — this is what makes
/// chaos runs replayable and their loss reports thread-count invariant.
pub trait Chaos: Send + Sync {
    /// The fixed script for `site`.
    fn script(&self, site: &str) -> SiteScript;

    /// The decision for one `(site, attempt)` pair.
    ///
    /// Every non-`None` decision increments a `chaos.decisions.*`
    /// counter in the global `v6obs` registry. Because decisions are a
    /// pure function of `(site, attempt)` and consumers consult each
    /// pair exactly once, these counts are thread-count invariant and a
    /// chaos run's [`LossReport`] can be reconciled against them.
    fn decide(&self, site: &str, attempt: u32) -> Fault {
        let fault = self.script(site).decide(attempt);
        match fault {
            Fault::None => {}
            Fault::Stall(_) => decision_metrics().stalls.inc(),
            Fault::Error => decision_metrics().errors.inc(),
            Fault::Panic => decision_metrics().panics.inc(),
        }
        fault
    }

    /// True when this `(site, attempt)` pair fails.
    fn fails(&self, site: &str, attempt: u32) -> bool {
        self.decide(site, attempt).is_failure()
    }

    /// True when no retry budget clears `site`.
    fn is_permanent(&self, site: &str) -> bool {
        self.script(site).is_permanent()
    }

    /// Retries sufficient to outlast any *transient* script this source
    /// can produce. Handlers that retry at least this many times satisfy
    /// the transient-faults-converge invariant.
    fn retry_budget(&self) -> u32;
}

/// Statistical knobs for a seeded [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a site faults at all.
    pub fault_rate: f64,
    /// Probability a faulty site is permanent (vs transient).
    pub permanent_rate: f64,
    /// Upper bound on leading failed attempts of a transient site (≥ 1).
    pub max_transient_failures: u32,
    /// Probability a site stalls before its first success.
    pub stall_rate: f64,
    /// Stall duration, in milliseconds.
    pub stall_ms: u64,
}

impl FaultSpec {
    /// A transient-only spec: faults occur but every one clears within
    /// the retry budget, so runs must converge to fault-free artifacts.
    pub fn transient(fault_rate: f64) -> Self {
        FaultSpec {
            fault_rate,
            permanent_rate: 0.0,
            max_transient_failures: 2,
            stall_rate: 0.1,
            stall_ms: 2,
        }
    }

    /// A spec that mixes permanent faults in, for loss-report testing.
    pub fn with_permanent(fault_rate: f64, permanent_rate: f64) -> Self {
        FaultSpec {
            permanent_rate,
            ..FaultSpec::transient(fault_rate)
        }
    }

    /// A spec that never injects anything.
    pub fn quiet() -> Self {
        FaultSpec {
            fault_rate: 0.0,
            permanent_rate: 0.0,
            max_transient_failures: 1,
            stall_rate: 0.0,
            stall_ms: 0,
        }
    }
}

/// A seeded plan assigning every site a fixed [`SiteScript`].
///
/// Scripts are derived on demand from `hash64(seed, site)` through the
/// simulator's own xoshiro RNG (the [`v6netsim::rng`] fork idiom), so a
/// plan needs no per-site state and two plans with the same seed and
/// spec agree on every site — including sites neither has seen before.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
}

impl FaultPlan {
    /// A plan for `seed` under `spec`.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan { seed, spec }
    }

    /// A plan whose seed honors the `V6_CHAOS_SEED` env override.
    pub fn from_env(default_seed: u64, spec: FaultSpec) -> Self {
        FaultPlan::new(seed_from_env(default_seed), spec)
    }

    /// The seed this plan replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The statistical knobs this plan draws from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }
}

impl Chaos for FaultPlan {
    fn script(&self, site: &str) -> SiteScript {
        // Fixed draw order; every draw happens whether or not it is
        // used, so scripts stay stable if the spec gains knobs.
        let mut rng = Rng::new(hash64(self.seed ^ CHAOS_SALT, site.as_bytes()));
        let faulty = rng.chance(self.spec.fault_rate);
        let permanent = rng.chance(self.spec.permanent_rate);
        let transient_n = 1 + rng.below(u64::from(self.spec.max_transient_failures.max(1))) as u32;
        let panics = rng.chance(0.5);
        let stalls = rng.chance(self.spec.stall_rate);
        let stall = stalls.then(|| Duration::from_millis(self.spec.stall_ms));
        if !faulty {
            return SiteScript {
                fail_attempts: 0,
                panics: false,
                stall,
            };
        }
        SiteScript {
            fail_attempts: if permanent { u32::MAX } else { transient_n },
            panics,
            stall,
        }
    }

    fn retry_budget(&self) -> u32 {
        self.spec.max_transient_failures
    }
}

/// A hand-written plan: explicit scripts for named sites, everything
/// else healthy. The unit-test counterpart of [`FaultPlan`].
#[derive(Debug, Clone, Default)]
pub struct ScriptedChaos {
    sites: HashMap<String, SiteScript>,
}

impl ScriptedChaos {
    /// An empty plan (no site ever faults).
    pub fn new() -> Self {
        ScriptedChaos::default()
    }

    /// Adds (or replaces) the script for one site.
    pub fn with(mut self, site: impl Into<String>, script: SiteScript) -> Self {
        self.sites.insert(site.into(), script);
        self
    }
}

impl Chaos for ScriptedChaos {
    fn script(&self, site: &str) -> SiteScript {
        self.sites.get(site).copied().unwrap_or_else(SiteScript::ok)
    }

    fn retry_budget(&self) -> u32 {
        self.sites
            .values()
            .filter(|s| !s.is_permanent())
            .map(|s| s.fail_attempts)
            .max()
            .unwrap_or(0)
    }
}

/// A source that never injects anything — the production default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoChaos;

impl Chaos for NoChaos {
    fn script(&self, _site: &str) -> SiteScript {
        SiteScript::ok()
    }

    fn retry_budget(&self) -> u32 {
        0
    }
}

/// Adapts a [`Chaos`] source to the [`v6par::FaultInjector`] interface,
/// prefixing stage names with `dag.stage.` so DAG sites share the global
/// namespace.
pub struct DagInjector<'a> {
    chaos: &'a dyn Chaos,
}

impl<'a> DagInjector<'a> {
    /// An injector over `chaos`.
    pub fn new(chaos: &'a dyn Chaos) -> Self {
        DagInjector { chaos }
    }

    /// The site name a DAG stage maps to.
    pub fn stage_site(stage: &str) -> String {
        format!("dag.stage.{stage}")
    }
}

impl v6par::FaultInjector for DagInjector<'_> {
    fn decide(&self, stage: &str, attempt: u32) -> v6par::InjectedFault {
        match self.chaos.decide(&Self::stage_site(stage), attempt) {
            Fault::None => v6par::InjectedFault::None,
            Fault::Stall(d) => v6par::InjectedFault::Stall(d),
            Fault::Error => v6par::InjectedFault::Error(format!(
                "injected transient error (stage `{stage}`, attempt {attempt})"
            )),
            Fault::Panic => v6par::InjectedFault::Panic(format!(
                "injected panic (stage `{stage}`, attempt {attempt})"
            )),
        }
    }
}

/// One lost unit of work: its site name and why it was lost.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LostUnit {
    /// The site (unit) that was lost, e.g. `dag.stage.backscan`.
    pub unit: String,
    /// Human-readable reason, e.g. `permanent fault after 4 attempts`.
    pub reason: String,
}

/// The accounting a chaos run must produce: exactly which units of work
/// were permanently lost. An empty report is the convergence certificate
/// of a transient-only run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LossReport {
    units: Vec<LostUnit>,
}

impl LossReport {
    /// An empty report.
    pub fn new() -> Self {
        LossReport::default()
    }

    /// Records one lost unit (duplicates by unit name are coalesced).
    pub fn record(&mut self, unit: impl Into<String>, reason: impl Into<String>) {
        let unit = unit.into();
        if !self.units.iter().any(|u| u.unit == unit) {
            self.units.push(LostUnit {
                unit,
                reason: reason.into(),
            });
            self.units.sort();
        }
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &LossReport) {
        for u in &other.units {
            self.record(u.unit.clone(), u.reason.clone());
        }
    }

    /// True when nothing was lost.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Number of lost units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// The lost units, sorted by name.
    pub fn units(&self) -> &[LostUnit] {
        &self.units
    }

    /// True when `unit` is reported lost.
    pub fn contains(&self, unit: &str) -> bool {
        self.units.iter().any(|u| u.unit == unit)
    }

    /// Just the lost unit names, sorted.
    pub fn unit_names(&self) -> Vec<&str> {
        self.units.iter().map(|u| u.unit.as_str()).collect()
    }
}

impl std::fmt::Display for LossReport {
    /// One `LOST <unit> (<reason>)` line per unit — the grep-stable
    /// format the CI golden file pins.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for u in &self.units {
            writeln!(f, "LOST {} ({})", u.unit, u.reason)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_order_free() {
        let plan = FaultPlan::new(42, FaultSpec::with_permanent(0.5, 0.3));
        let a = plan.script("dag.stage.corpus");
        let _ = plan.script("collect.day.17"); // interleave other sites
        let b = plan.script("dag.stage.corpus");
        assert_eq!(a, b);
        let clone = FaultPlan::new(42, FaultSpec::with_permanent(0.5, 0.3));
        assert_eq!(clone.script("dag.stage.corpus"), a);
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultPlan::new(1, FaultSpec::transient(0.5));
        let b = FaultPlan::new(2, FaultSpec::transient(0.5));
        let sites: Vec<String> = (0..64).map(|i| format!("site.{i}")).collect();
        assert!(sites.iter().any(|s| a.script(s) != b.script(s)));
    }

    #[test]
    fn transient_spec_never_produces_permanent_sites() {
        let plan = FaultPlan::new(9, FaultSpec::transient(0.9));
        for i in 0..500 {
            let site = format!("s.{i}");
            let script = plan.script(&site);
            assert!(!script.is_permanent(), "site {site} permanent");
            assert!(script.fail_attempts <= plan.retry_budget());
            // The attempt after the last scripted failure succeeds.
            assert!(!plan.fails(&site, script.fail_attempts));
        }
    }

    #[test]
    fn transient_sites_exist_at_high_rates() {
        let plan = FaultPlan::new(3, FaultSpec::transient(0.9));
        let faulty = (0..100)
            .filter(|i| plan.fails(&format!("s.{i}"), 0))
            .count();
        assert!(faulty > 50, "only {faulty}/100 sites faulted");
    }

    #[test]
    fn script_decide_sequence() {
        let s = SiteScript::transient(2);
        assert_eq!(s.decide(0), Fault::Error);
        assert_eq!(s.decide(1), Fault::Error);
        assert_eq!(s.decide(2), Fault::None);
        let s = SiteScript::transient_panic(1).with_stall(Duration::from_millis(5));
        assert_eq!(s.decide(0), Fault::Panic);
        assert_eq!(s.decide(1), Fault::Stall(Duration::from_millis(5)));
        assert_eq!(s.decide(2), Fault::None);
        let s = SiteScript::permanent();
        assert!(s.is_permanent());
        assert_eq!(s.decide(1_000_000), Fault::Error);
    }

    #[test]
    fn scripted_chaos_and_budget() {
        let c = ScriptedChaos::new()
            .with("a", SiteScript::transient(3))
            .with("b", SiteScript::permanent_panic());
        assert!(c.fails("a", 2));
        assert!(!c.fails("a", 3));
        assert!(c.is_permanent("b"));
        assert!(!c.is_permanent("a"));
        assert!(!c.fails("unknown", 0));
        assert_eq!(c.retry_budget(), 3);
        assert_eq!(NoChaos.retry_budget(), 0);
        assert!(!NoChaos.fails("anything", 0));
    }

    #[test]
    fn loss_report_sorts_dedups_and_prints() {
        let mut r = LossReport::new();
        r.record("dag.stage.ntp", "dependency `corpus` failed");
        r.record("collect.day.3", "permanent fault");
        r.record("dag.stage.ntp", "duplicate");
        assert_eq!(r.len(), 2);
        assert!(r.contains("collect.day.3"));
        assert_eq!(r.unit_names(), vec!["collect.day.3", "dag.stage.ntp"]);
        let text = r.to_string();
        assert!(text.starts_with("LOST collect.day.3 (permanent fault)\n"));
        assert!(text.contains("LOST dag.stage.ntp"));

        let mut other = LossReport::new();
        other.record("x", "y");
        r.merge(&other);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn env_seed_override() {
        // No env set in tests: default wins.
        assert_eq!(seed_from_env(77), 77);
    }
}
