//! v6serve: in-process IPv6 hitlist query serving.
//!
//! The measurement pipeline (`v6hitlist`) produces weekly hitlist
//! publications; this crate turns them into a queryable, concurrently
//! readable store, modeling the "serving" half of a hitlist service like
//! the one the paper's measurement platform publishes from.
//!
//! Architecture:
//!
//! - [`snapshot`] — immutable, sharded view of one publication epoch:
//!   prefix-compressed sorted address runs ([`snapshot::CompressedRun`])
//!   plus a per-shard radix trie of aliased prefixes, partitioned by /48
//!   so density aggregates stay shard-local.
//! - [`bloom`] — the optional blocked bloom filter fronting membership
//!   probes (the `V6_BLOOM` toggle); traffic lands in `serve.bloom.*`.
//! - [`store`] — epoch-swapped publication: readers clone an `Arc` to the
//!   current [`snapshot::Snapshot`]; publishing swaps the `Arc` under a
//!   briefly held write lock, so reads never block on ingestion.
//! - [`ingest`] — bounded-channel worker pipeline turning campaign and
//!   passive-corpus publications into snapshots off the serving threads.
//! - [`query`] — the typed query API served from any snapshot.
//! - [`stream`] — the bridge to [`v6stream`]: a [`StreamAnalytics`]
//!   handle kept current from publishes or a tailed epoch log, powering
//!   the windowed `moved_between`/`entropy_shift` queries.
//! - [`persist`] — durable publication through the [`v6store`]
//!   write-ahead epoch log: `HitlistStore::persistent` fsyncs each
//!   epoch before the swap and `HitlistStore::recover` rebuilds the
//!   store from disk after a crash.
//! - [`metrics`] — a per-store [`v6obs::Registry`] facade: `serve.*`
//!   counters plus per-query-type and ingest latency histograms (and,
//!   for persistent stores, the `store.*` log/recovery metrics).
//! - [`loadgen`] — deterministic load harness replaying seeded query
//!   mixes across client threads, with latency percentiles.
//!
//! # Observability
//!
//! Each [`store::HitlistStore`] owns a private metrics registry
//! (`store.metrics().registry()`); `render_text()` gives the
//! deterministic exposition. Ingestion additionally opens `V6_TRACE`
//! spans (`serve.normalize`, `serve.merge`) and reconciles injected
//! chaos losses into the process-global `chaos.lost_units` counter when
//! [`ingest::IngestHandle::finish_report`] runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod ingest;
pub mod loadgen;
pub mod metrics;
pub mod persist;
pub mod query;
pub mod snapshot;
pub mod store;
pub mod stream;

pub use bloom::BlockedBloom;
pub use ingest::{
    IngestError, IngestHandle, IngestReport, IngestStats, Ingestor, PublicationUpdate,
};
pub use loadgen::{sample_present, GenRequest, LoadReport, LoadSpec, QueryMix, RequestStream};
pub use metrics::ServeMetrics;
pub use query::{BatchAnswer, LookupAnswer, MovedAnswer, QueryEngine};
pub use snapshot::{CompressedRun, Membership, ServeStatus, Shard, Snapshot, SnapshotBuilder};
pub use store::{HitlistStore, PublishError, PublishReceipt};
pub use stream::{analytics_for, StreamAnalytics};
pub use v6store::{RecoverError, RecoveryReport, StoreConfig};
