//! The typed query API served from the store's current snapshot.
//!
//! Every call clones the current snapshot `Arc` once and answers from
//! that immutable view, so a single call is always internally consistent
//! even while a new epoch is being published. Batched lookups extend the
//! same guarantee to a whole batch: all its addresses are resolved
//! against one epoch.

use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::Instant;

use v6addr::Prefix;

use crate::metrics::{QueryKind, ServeMetrics};
use crate::snapshot::{Membership, ServeStatus, Snapshot};
use crate::store::HitlistStore;
use crate::stream::StreamAnalytics;

/// The full answer for a single address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupAnswer {
    /// Is the address in the published hitlist?
    pub present: bool,
    /// Week first published, when present.
    pub first_week: Option<u32>,
    /// Longest registered aliased prefix covering the address, if any.
    pub alias: Option<Prefix>,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// True when the address's shard is quarantined in this epoch: the
    /// answer reflects the last good merge, not the latest updates.
    pub degraded: bool,
}

/// The answer for a batched lookup, resolved against one epoch.
#[derive(Debug, Clone)]
pub struct BatchAnswer {
    /// Epoch of the snapshot that answered every address in the batch.
    pub epoch: u64,
    /// Health of the answering epoch (`Degraded` lists stale shards).
    pub status: ServeStatus,
    /// Per-address answers, in input order.
    pub answers: Vec<LookupAnswer>,
    /// How many were present.
    pub present: u64,
    /// How many fell under an aliased prefix.
    pub aliased: u64,
}

/// One answer row of [`QueryEngine::moved_between`]: a device seen in
/// one network before the window that surfaced in another inside it.
pub type MovedAnswer = v6stream::Move;

/// A cheaply cloneable handle answering queries from a [`HitlistStore`].
#[derive(Clone)]
pub struct QueryEngine {
    store: Arc<HitlistStore>,
    /// Streaming operators answering the windowed query family;
    /// `None` until attached with [`QueryEngine::with_analytics`].
    analytics: Option<Arc<StreamAnalytics>>,
}

fn lookup_in(snap: &Snapshot, addr: Ipv6Addr, metrics: &ServeMetrics) -> LookupAnswer {
    let shard = snap.shard_for(addr);
    // One bloom-fronted probe resolves membership *and* the first-week
    // rank; the old path paid two independent binary searches.
    let outcome = shard.membership_bits(u128::from(addr));
    metrics.record_bloom(outcome);
    let first_week = match outcome {
        Membership::Present { rank, .. } => Some(shard.first_week_at(rank)),
        _ => None,
    };
    LookupAnswer {
        present: first_week.is_some(),
        first_week,
        alias: shard.longest_alias(addr),
        epoch: snap.epoch(),
        degraded: snap.shard_missing(addr),
    }
}

impl QueryEngine {
    /// An engine over `store`.
    pub fn new(store: Arc<HitlistStore>) -> Self {
        QueryEngine {
            store,
            analytics: None,
        }
    }

    /// Attaches streaming analytics, enabling the windowed query
    /// family ([`QueryEngine::moved_between`],
    /// [`QueryEngine::entropy_shift`]).
    pub fn with_analytics(mut self, analytics: Arc<StreamAnalytics>) -> Self {
        self.analytics = Some(analytics);
        self
    }

    /// The attached streaming analytics, if any.
    pub fn analytics(&self) -> Option<&Arc<StreamAnalytics>> {
        self.analytics.as_ref()
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<HitlistStore> {
        &self.store
    }

    /// Runs `f`, recording its wall time into the per-query-type latency
    /// histogram (`serve.query.latency.*`).
    fn timed<T>(&self, kind: QueryKind, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        self.store
            .metrics()
            .record_query_latency(kind, started.elapsed());
        out
    }

    /// Health of the current epoch (`Degraded` lists quarantined shards).
    pub fn status(&self) -> ServeStatus {
        self.store.snapshot().status()
    }

    /// Exact membership, served through the snapshot's approximate
    /// front when one was built (`V6_BLOOM`): a bloom "definitely
    /// absent" answers without touching the compressed tier, and every
    /// probe's outcome lands in the `serve.bloom.*` counters.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.store.metrics().record_membership();
        self.timed(QueryKind::Membership, || {
            let outcome = self.store.snapshot().membership(addr);
            self.store.metrics().record_bloom(outcome);
            outcome.is_present()
        })
    }

    /// Alias-filtered membership: present *and* not under an aliased
    /// prefix — the set scanners should actually target (§2.2).
    pub fn contains_unaliased(&self, addr: Ipv6Addr) -> bool {
        self.store.metrics().record_membership();
        self.timed(QueryKind::Membership, || {
            let snap = self.store.snapshot();
            let outcome = snap.membership(addr);
            self.store.metrics().record_bloom(outcome);
            outcome.is_present() && !snap.is_aliased(addr)
        })
    }

    /// Full lookup: membership, first-published week, and alias cover.
    pub fn lookup(&self, addr: Ipv6Addr) -> LookupAnswer {
        self.store.metrics().record_lookup();
        self.timed(QueryKind::Lookup, || {
            lookup_in(&self.store.snapshot(), addr, self.store.metrics())
        })
    }

    /// Published addresses inside `prefix` (per-/48 density and coarser).
    pub fn count_within(&self, prefix: &Prefix) -> u64 {
        self.store.metrics().record_density();
        self.timed(QueryKind::Density, || {
            self.store.snapshot().count_within(prefix)
        })
    }

    /// Addresses first published after study week `week` — the
    /// snapshot-answered member of the "diffs" query family.
    pub fn new_since(&self, week: u64) -> u64 {
        self.store.metrics().record_diff();
        self.timed(QueryKind::Diff, || self.store.snapshot().new_since(week))
    }

    /// EUI-64 devices that inhabited some /64 at or before week `w0`
    /// and first surfaced in a *different* /64 during `(w0, w1]` — a
    /// windowed generalization of [`QueryEngine::new_since`] that only
    /// the streaming operators can answer. `None` without attached
    /// analytics.
    pub fn moved_between(&self, w0: u32, w1: u32) -> Option<Vec<MovedAnswer>> {
        let analytics = self.analytics.as_ref()?;
        self.store.metrics().record_window();
        Some(self.timed(QueryKind::Window, || analytics.moved_between(w0, w1)))
    }

    /// Entropy-distribution shift (total-variation, per-mille) of AS
    /// `as_index` between the corpus as of week `w0` and the additions
    /// of `(w0, w1]`. Outer `None` without attached analytics; inner
    /// `None` when either window side holds no attributed addresses.
    pub fn entropy_shift(&self, as_index: u16, w0: u32, w1: u32) -> Option<Option<u32>> {
        let analytics = self.analytics.as_ref()?;
        self.store.metrics().record_window();
        Some(self.timed(QueryKind::Window, || {
            analytics.entropy_shift(as_index, w0, w1)
        }))
    }

    /// Resolves a whole batch against a single epoch. Latency is sampled
    /// once per batch, not per address.
    pub fn batch_lookup(&self, addrs: &[Ipv6Addr]) -> BatchAnswer {
        self.store.metrics().record_batch(addrs.len() as u64);
        self.timed(QueryKind::Batch, || {
            let snap = self.store.snapshot();
            let mut present = 0u64;
            let mut aliased = 0u64;
            let answers: Vec<LookupAnswer> = addrs
                .iter()
                .map(|&a| {
                    let ans = lookup_in(&snap, a, self.store.metrics());
                    present += u64::from(ans.present);
                    aliased += u64::from(ans.alias.is_some());
                    ans
                })
                .collect();
            BatchAnswer {
                epoch: snap.epoch(),
                status: snap.status(),
                answers,
                present,
                aliased,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn engine() -> QueryEngine {
        let store = HitlistStore::new("svc", 4);
        let mut b = SnapshotBuilder::new("svc", 4);
        b.add_week(0, &[addr("2001:db8:1::1"), addr("2001:db8:2::1")]);
        b.add_week(3, &[addr("2001:db8:3::1")]);
        b.add_alias("2001:db8:2::/48".parse().unwrap(), 0);
        store.publish(b.build()).unwrap();
        QueryEngine::new(Arc::new(store))
    }

    #[test]
    fn typed_queries_answer() {
        let q = engine();
        assert!(q.contains(addr("2001:db8:1::1")));
        assert!(q.contains(addr("2001:db8:2::1")));
        assert!(!q.contains_unaliased(addr("2001:db8:2::1")));
        assert!(q.contains_unaliased(addr("2001:db8:1::1")));

        let ans = q.lookup(addr("2001:db8:3::1"));
        assert!(ans.present);
        assert_eq!(ans.first_week, Some(3));
        assert_eq!(ans.alias, None);
        assert_eq!(ans.epoch, 1);

        assert_eq!(q.count_within(&"2001:db8::/32".parse().unwrap()), 3);
        assert_eq!(q.new_since(0), 1);
        assert_eq!(q.new_since(3), 0);
    }

    #[test]
    fn batch_is_single_epoch_and_counts() {
        let q = engine();
        let batch = q.batch_lookup(&[
            addr("2001:db8:1::1"),
            addr("2001:db8:2::1"),
            addr("2001:db8:9::9"),
        ]);
        assert_eq!(batch.epoch, 1);
        assert_eq!(batch.answers.len(), 3);
        assert_eq!(batch.present, 2);
        assert_eq!(batch.aliased, 1);
        assert!(!batch.answers[2].present);

        let snap = q.store().metrics().registry().snapshot();
        assert_eq!(snap.counter("serve.query.batches"), Some(1));
        assert_eq!(snap.counter("serve.query.batch_addresses"), Some(3));
    }

    #[test]
    fn bloom_front_accounts_membership_traffic() {
        let store = HitlistStore::new("svc", 4);
        let mut b = SnapshotBuilder::new("svc", 4).with_bloom(true);
        for i in 0..300u32 {
            b.add_address(addr(&format!("2001:db8:{:x}::{:x}", i % 5, i)), 0);
        }
        store.publish(b.build()).unwrap();
        let q = QueryEngine::new(Arc::new(store));

        // Present probes pass the bloom and hit the exact tier.
        assert!(q.contains(addr("2001:db8:1::1")));
        // Absent probes are either filtered (hit) or false positives;
        // answers are never wrong either way.
        for i in 0..200u32 {
            assert!(!q.contains(addr(&format!("2001:db8:{:x}::beef:{:x}", i % 5, i))));
        }
        let snap = q.store().metrics().registry().snapshot();
        let hit = snap.counter("serve.bloom.hit").unwrap();
        let miss = snap.counter("serve.bloom.miss").unwrap();
        let fp = snap.counter("serve.bloom.false_positive").unwrap();
        assert_eq!(miss, 1, "the one present probe passes through");
        assert_eq!(hit + fp, 200, "every absent probe is hit or false positive");
        assert!(hit > fp, "the front should filter most absent probes");
    }

    #[test]
    fn new_since_edges() {
        // Fresh store, nothing published: the empty epoch-0 snapshot
        // has nothing newer than any week, including week 0.
        let empty = QueryEngine::new(Arc::new(HitlistStore::new("svc", 4)));
        assert_eq!(empty.new_since(0), 0);

        // A published but empty epoch answers the same way.
        let store = HitlistStore::new("svc", 4);
        store
            .publish(SnapshotBuilder::new("svc", 4).build())
            .unwrap();
        let q = QueryEngine::new(Arc::new(store));
        assert_eq!(q.new_since(0), 0);
        assert_eq!(q.new_since(u64::from(u32::MAX)), 0);

        // Week 0 counts strictly-later first sightings, week numbers
        // beyond every epoch count nothing, and everything is new
        // relative to "before week 0" semantics only via lookups.
        let q = engine(); // weeks {0, 0, 3}
        assert_eq!(q.new_since(0), 1, "only the week-3 entry is after week 0");
        assert_eq!(q.new_since(2), 1);
        assert_eq!(q.new_since(3), 0, "boundary week is not 'after' itself");
        assert_eq!(q.new_since(u64::from(u32::MAX)), 0);

        let snap = q.store().metrics().registry().snapshot();
        assert_eq!(snap.counter("serve.query.diffs"), Some(4));
        let text = q.store().metrics().render_text();
        assert!(text.contains("serve.query.latency.diffs_count 4\n"));
    }

    #[test]
    fn new_since_answers_on_degraded_snapshots() {
        let store = HitlistStore::new("svc", 4);
        let mut b = SnapshotBuilder::new("svc", 4);
        b.add_week(0, &[addr("2001:db8:1::1"), addr("2001:db8:2::1")]);
        b.add_week(5, &[addr("2001:db8:3::1")]);
        let b = b.with_quarantined(vec![0, 2]);
        store.publish(b.build()).unwrap();
        let q = QueryEngine::new(Arc::new(store));

        // The diff still answers from the stale-but-consistent corpus…
        assert_eq!(q.new_since(0), 1);
        assert_eq!(q.new_since(5), 0);
        // …and the degraded label propagates alongside, never silently.
        match q.status() {
            ServeStatus::Degraded { missing_shards } => {
                assert_eq!(missing_shards, vec![0, 2]);
            }
            other => panic!("expected degraded status, got {other:?}"),
        }
        let batch = q.batch_lookup(&[addr("2001:db8:1::1")]);
        assert!(matches!(batch.status, ServeStatus::Degraded { .. }));
    }

    fn eui_addr(prefix32: u128, subnet: u64, mac: u64) -> u128 {
        let iid = v6addr::Iid::from_mac(v6addr::Mac::from_u64(mac));
        (prefix32 << 96) | (u128::from(subnet) << 64) | u128::from(iid.as_u64())
    }

    #[test]
    fn windowed_queries_require_analytics() {
        let q = engine();
        assert!(q.moved_between(0, 4).is_none());
        assert!(q.entropy_shift(1, 0, 4).is_none());
        let snap = q.store().metrics().registry().snapshot();
        assert_eq!(snap.counter("serve.query.windows"), Some(0));
    }

    #[test]
    fn windowed_queries_answer_from_attached_analytics() {
        use v6stream::{country_code, AsTag, PrefixAsTable};
        let resolver: v6stream::SharedResolver = Arc::new(PrefixAsTable::new(vec![(
            0x2001_0db8u128 << 96,
            32,
            AsTag {
                index: 1,
                country: country_code(*b"DE"),
            },
        )]));

        let store = Arc::new(HitlistStore::new("svc", 4));
        let mut b = SnapshotBuilder::new("svc", 4);
        // One EUI-64 device seen in subnet 1 at week 1, then surfacing
        // in subnet 2 at week 5 — a move inside the (2, 6] window.
        let mac = 0x0050_56ab_cdef;
        b.add_bits(eui_addr(0x2001_0db8, 1, mac), 1);
        b.add_bits(eui_addr(0x2001_0db8, 2, mac), 5);
        // Opaque ballast so the entropy profile has both window sides.
        for i in 0..8u128 {
            b.add_bits(
                (0x2001_0db8u128 << 96) | (3 << 64) | (0x9e37_79b9 * (i + 1)),
                1,
            );
            b.add_bits(
                (0x2001_0db8u128 << 96) | (4 << 64) | u128::from(4u32 + i as u32),
                5,
            );
        }
        store.publish(b.build()).unwrap();

        let analytics = crate::stream::analytics_for(&store, resolver);
        let q = QueryEngine::new(Arc::clone(&store)).with_analytics(analytics);

        let moves = q.moved_between(2, 6).expect("analytics attached");
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].mac, mac);
        assert_eq!(moves[0].week, 5);
        assert_ne!(moves[0].from_net, moves[0].to_net);
        // Outside the window the same device never moved.
        assert!(q.moved_between(5, 9).unwrap().is_empty());

        let shift = q.entropy_shift(1, 2, 6).expect("analytics attached");
        assert!(shift.is_some(), "both window sides are populated");
        assert_eq!(q.entropy_shift(7, 2, 6), Some(None), "unknown AS is empty");

        let snap = store.metrics().registry().snapshot();
        assert_eq!(snap.counter("serve.query.windows"), Some(4));
        let text = store.metrics().render_text();
        assert!(text.contains("serve.query.latency.window_count 4\n"));
    }

    #[test]
    fn no_bloom_front_means_no_bloom_traffic() {
        let store = HitlistStore::new("svc", 4);
        let mut b = SnapshotBuilder::new("svc", 4).with_bloom(false);
        b.add_week(0, &[addr("2001:db8:1::1")]);
        store.publish(b.build()).unwrap();
        let q = QueryEngine::new(Arc::new(store));
        assert!(q.contains(addr("2001:db8:1::1")));
        assert!(!q.contains(addr("2001:db8:2::1")));
        let snap = q.store().metrics().registry().snapshot();
        assert_eq!(snap.counter("serve.bloom.hit"), Some(0));
        assert_eq!(snap.counter("serve.bloom.miss"), Some(0));
        assert_eq!(snap.counter("serve.bloom.false_positive"), Some(0));
    }
}
