//! Registry-backed metrics for the serving path.
//!
//! [`ServeMetrics`] used to be a bag of bespoke relaxed atomics; it is
//! now a thin facade over a per-store [`v6obs::Registry`] — counters for
//! every query/publish/ingest event plus latency histograms per query
//! type and for ingestion batches. Each store owns its own registry (not
//! the process-global one) so independent stores in one process never
//! share counters; fetch it with [`ServeMetrics::registry`] for the
//! deterministic text exposition or a JSON snapshot.
//!
//! The approximate-membership front reports its traffic as
//! `serve.bloom.{hit,miss,false_positive}`: a *hit* filtered an absent
//! address without touching the exact tier, a *miss* passed a present
//! address through, and a *false positive* passed an absent address
//! through (the cost the filter's error rate buys). Store memory is
//! exported as `serve.store.bytes.{raw,compressed}` gauges — what the
//! published snapshot's address columns would cost raw versus what the
//! compressed tier actually holds.
//!
//! Recording is still relaxed-atomic cheap: handles are resolved once at
//! construction, and the registry mutex is only taken for exposition.
//! Counter values are data-derived and thread-count invariant; the
//! latency histograms are timing observations and are not.

use std::sync::Arc;
use std::time::Duration;

use v6obs::{Counter, Gauge, Histogram, Registry};

/// Which query-latency histogram a call records into.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QueryKind {
    /// `contains` / `contains_unaliased`.
    Membership,
    /// Full single-address lookups.
    Lookup,
    /// Density / count-within queries.
    Density,
    /// The "diffs" query family (`new_since`): what changed relative
    /// to a release week. Counts under `serve.query.diffs`, latency
    /// under `serve.query.latency.diffs`.
    Diff,
    /// Windowed streaming-analytics queries (`moved_between`,
    /// `entropy_shift`): answered from the incremental operator state,
    /// not the snapshot.
    Window,
    /// Batched lookups (one sample per batch).
    Batch,
}

/// Metrics shared by a store, its query engines, and its ingestors,
/// recorded into a store-private [`Registry`].
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Arc<Registry>,
    membership: Counter,
    lookups: Counter,
    density: Counter,
    diffs: Counter,
    windows: Counter,
    batches: Counter,
    batch_addresses: Counter,
    publishes: Counter,
    degraded_publishes: Counter,
    ingested_addresses: Counter,
    bloom_hit: Counter,
    bloom_miss: Counter,
    bloom_false_positive: Counter,
    store_bytes_raw: Gauge,
    store_bytes_compressed: Gauge,
    query_latency: [Histogram; 6],
    ingest_batch_latency: Histogram,
    ingest_normalize_latency: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        ServeMetrics {
            membership: registry.counter("serve.query.membership"),
            lookups: registry.counter("serve.query.lookups"),
            density: registry.counter("serve.query.density"),
            diffs: registry.counter("serve.query.diffs"),
            windows: registry.counter("serve.query.windows"),
            batches: registry.counter("serve.query.batches"),
            batch_addresses: registry.counter("serve.query.batch_addresses"),
            publishes: registry.counter("serve.publish.epochs"),
            degraded_publishes: registry.counter("serve.publish.degraded"),
            ingested_addresses: registry.counter("serve.ingest.addresses"),
            bloom_hit: registry.counter("serve.bloom.hit"),
            bloom_miss: registry.counter("serve.bloom.miss"),
            bloom_false_positive: registry.counter("serve.bloom.false_positive"),
            store_bytes_raw: registry.gauge("serve.store.bytes.raw"),
            store_bytes_compressed: registry.gauge("serve.store.bytes.compressed"),
            query_latency: [
                registry.histogram("serve.query.latency.membership"),
                registry.histogram("serve.query.latency.lookup"),
                registry.histogram("serve.query.latency.density"),
                registry.histogram("serve.query.latency.diffs"),
                registry.histogram("serve.query.latency.window"),
                registry.histogram("serve.query.latency.batch"),
            ],
            ingest_batch_latency: registry.histogram("serve.ingest.batch_latency"),
            ingest_normalize_latency: registry.histogram("serve.ingest.normalize_latency"),
            registry,
        }
    }
}

impl ServeMetrics {
    pub(crate) fn record_membership(&self) {
        self.membership.inc();
    }

    pub(crate) fn record_lookup(&self) {
        self.lookups.inc();
    }

    pub(crate) fn record_density(&self) {
        self.density.inc();
    }

    pub(crate) fn record_diff(&self) {
        self.diffs.inc();
    }

    pub(crate) fn record_window(&self) {
        self.windows.inc();
    }

    pub(crate) fn record_batch(&self, addresses: u64) {
        self.batches.inc();
        self.batch_addresses.add(addresses);
    }

    pub(crate) fn record_publish(&self) {
        self.publishes.inc();
    }

    pub(crate) fn record_degraded_publish(&self) {
        self.degraded_publishes.inc();
    }

    pub(crate) fn record_ingested(&self, addresses: u64) {
        self.ingested_addresses.add(addresses);
    }

    /// Accounts one bloom-fronted membership probe by what the front
    /// observed (see [`crate::snapshot::Membership`]).
    pub(crate) fn record_bloom(&self, outcome: crate::snapshot::Membership) {
        use crate::snapshot::Membership;
        match outcome {
            Membership::BloomFiltered => self.bloom_hit.inc(),
            Membership::Present {
                bloom_checked: true,
                ..
            } => self.bloom_miss.inc(),
            Membership::Absent {
                bloom_checked: true,
            } => self.bloom_false_positive.inc(),
            // No bloom front consulted: nothing to account.
            Membership::Present { .. } | Membership::Absent { .. } => {}
        }
    }

    /// Publishes the current snapshot's memory footprint: what the raw
    /// representation would cost vs what the compressed tier holds.
    pub(crate) fn set_store_bytes(&self, raw: u64, compressed: u64) {
        self.store_bytes_raw.set(raw.min(i64::MAX as u64) as i64);
        self.store_bytes_compressed
            .set(compressed.min(i64::MAX as u64) as i64);
    }

    pub(crate) fn record_query_latency(&self, kind: QueryKind, elapsed: Duration) {
        self.query_latency[kind as usize].record_duration(elapsed);
    }

    pub(crate) fn record_ingest_batch_latency(&self, elapsed: Duration) {
        self.ingest_batch_latency.record_duration(elapsed);
    }

    pub(crate) fn record_normalize_latency(&self, elapsed: Duration) {
        self.ingest_normalize_latency.record_duration(elapsed);
    }

    /// The store-private registry behind these metrics: counters named
    /// `serve.query.*` / `serve.publish.*` / `serve.ingest.*` /
    /// `serve.bloom.*`, the `serve.store.bytes.*` gauges, plus the
    /// per-query-type and ingest latency histograms.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Deterministic text exposition of the store's registry
    /// ([`Registry::render_text`]).
    pub fn render_text(&self) -> String {
        self.registry.render_text()
    }

    /// Queries served so far (batched addresses counted individually).
    pub fn queries_total(&self) -> u64 {
        self.membership.get()
            + self.lookups.get()
            + self.density.get()
            + self.diffs.get()
            + self.windows.get()
            + self.batch_addresses.get()
    }

    /// Epochs published so far.
    pub fn publishes(&self) -> u64 {
        self.publishes.get()
    }

    /// Degraded epochs published so far.
    pub fn degraded_publishes(&self) -> u64 {
        self.degraded_publishes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Membership;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::default();
        m.record_membership();
        m.record_lookup();
        m.record_batch(16);
        m.record_publish();
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("serve.query.membership"), Some(1));
        assert_eq!(snap.counter("serve.query.batch_addresses"), Some(16));
        assert_eq!(m.queries_total(), 18);
        assert_eq!(m.publishes(), 1);
    }

    #[test]
    fn bloom_outcomes_map_to_counters() {
        let m = ServeMetrics::default();
        m.record_bloom(Membership::BloomFiltered);
        m.record_bloom(Membership::Present {
            rank: 0,
            bloom_checked: true,
        });
        m.record_bloom(Membership::Absent {
            bloom_checked: true,
        });
        // Probes without a bloom front leave all three untouched.
        m.record_bloom(Membership::Present {
            rank: 1,
            bloom_checked: false,
        });
        m.record_bloom(Membership::Absent {
            bloom_checked: false,
        });
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("serve.bloom.hit"), Some(1));
        assert_eq!(snap.counter("serve.bloom.miss"), Some(1));
        assert_eq!(snap.counter("serve.bloom.false_positive"), Some(1));
    }

    #[test]
    fn store_bytes_gauges_track_latest_publish() {
        let m = ServeMetrics::default();
        m.set_store_bytes(2000, 1200);
        m.set_store_bytes(4000, 2400);
        let text = m.render_text();
        assert!(text.contains("serve.store.bytes.raw 4000\n"));
        assert!(text.contains("serve.store.bytes.compressed 2400\n"));
    }

    #[test]
    fn registry_exposition_matches_counters() {
        let m = ServeMetrics::default();
        m.record_membership();
        m.record_ingested(100);
        m.record_query_latency(QueryKind::Membership, Duration::from_micros(3));
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("serve.query.membership"), Some(1));
        assert_eq!(snap.counter("serve.ingest.addresses"), Some(100));
        let text = m.render_text();
        assert!(text.contains("serve.query.membership 1\n"));
        assert!(text.contains("serve.query.latency.membership_count 1\n"));
        // Two stores never share a registry.
        let other = ServeMetrics::default();
        assert_eq!(
            other
                .registry()
                .snapshot()
                .counter("serve.query.membership"),
            Some(0)
        );
    }
}
