//! Cheap atomic counters for the serving path.
//!
//! Counters are relaxed atomics: they are diagnostics, not synchronization
//! — the snapshot `Arc` swap in [`crate::store`] is what orders reads
//! against publications.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by a store, its query engines, and its ingestors.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    membership: AtomicU64,
    lookups: AtomicU64,
    density: AtomicU64,
    diffs: AtomicU64,
    batches: AtomicU64,
    batch_addresses: AtomicU64,
    publishes: AtomicU64,
    degraded_publishes: AtomicU64,
    ingested_addresses: AtomicU64,
}

/// A point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// Exact/alias-filtered membership queries served.
    pub membership: u64,
    /// Full lookups served.
    pub lookups: u64,
    /// Density/count queries served.
    pub density: u64,
    /// Weekly-diff queries served.
    pub diffs: u64,
    /// Batched lookup calls served.
    pub batches: u64,
    /// Addresses resolved inside batched calls.
    pub batch_addresses: u64,
    /// Snapshot epochs published.
    pub publishes: u64,
    /// Epochs published in degraded (quarantined-shard) state.
    pub degraded_publishes: u64,
    /// Raw addresses accepted by ingestion (before dedup).
    pub ingested_addresses: u64,
}

impl MetricsReport {
    /// All query operations, counting each batched address once.
    pub fn queries_total(&self) -> u64 {
        self.membership + self.lookups + self.density + self.diffs + self.batch_addresses
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} (membership={} lookups={} density={} diffs={} batches={}/{} addrs) \
             publishes={} (degraded={}) ingested={}",
            self.queries_total(),
            self.membership,
            self.lookups,
            self.density,
            self.diffs,
            self.batches,
            self.batch_addresses,
            self.publishes,
            self.degraded_publishes,
            self.ingested_addresses,
        )
    }
}

impl ServeMetrics {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    pub(crate) fn record_membership(&self) {
        Self::bump(&self.membership, 1);
    }

    pub(crate) fn record_lookup(&self) {
        Self::bump(&self.lookups, 1);
    }

    pub(crate) fn record_density(&self) {
        Self::bump(&self.density, 1);
    }

    pub(crate) fn record_diff(&self) {
        Self::bump(&self.diffs, 1);
    }

    pub(crate) fn record_batch(&self, addresses: u64) {
        Self::bump(&self.batches, 1);
        Self::bump(&self.batch_addresses, addresses);
    }

    pub(crate) fn record_publish(&self) {
        Self::bump(&self.publishes, 1);
    }

    pub(crate) fn record_degraded_publish(&self) {
        Self::bump(&self.degraded_publishes, 1);
    }

    pub(crate) fn record_ingested(&self, addresses: u64) {
        Self::bump(&self.ingested_addresses, addresses);
    }

    /// Queries served so far (batched addresses counted individually).
    pub fn queries_total(&self) -> u64 {
        self.report().queries_total()
    }

    /// Epochs published so far.
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Degraded epochs published so far.
    pub fn degraded_publishes(&self) -> u64 {
        self.degraded_publishes.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of all counters.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            membership: self.membership.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            density: self.density.load(Ordering::Relaxed),
            diffs: self.diffs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_addresses: self.batch_addresses.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            degraded_publishes: self.degraded_publishes.load(Ordering::Relaxed),
            ingested_addresses: self.ingested_addresses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::default();
        m.record_membership();
        m.record_lookup();
        m.record_batch(16);
        m.record_publish();
        let r = m.report();
        assert_eq!(r.membership, 1);
        assert_eq!(r.batch_addresses, 16);
        assert_eq!(r.queries_total(), 18);
        assert_eq!(m.publishes(), 1);
        assert!(r.to_string().contains("publishes=1"));
    }
}
