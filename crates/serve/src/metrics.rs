//! Registry-backed metrics for the serving path.
//!
//! [`ServeMetrics`] used to be a bag of bespoke relaxed atomics; it is
//! now a thin facade over a per-store [`v6obs::Registry`] — counters for
//! every query/publish/ingest event plus latency histograms per query
//! type and for ingestion batches. Each store owns its own registry (not
//! the process-global one) so independent stores in one process never
//! share counters; fetch it with [`ServeMetrics::registry`] for the
//! deterministic text exposition or a JSON snapshot.
//!
//! Recording is still relaxed-atomic cheap: handles are resolved once at
//! construction, and the registry mutex is only taken for exposition.
//! Counter values are data-derived and thread-count invariant; the
//! latency histograms are timing observations and are not.

use std::sync::Arc;
use std::time::Duration;

use v6obs::{Counter, Histogram, Registry};

/// Which query-latency histogram a call records into.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QueryKind {
    /// `contains` / `contains_unaliased`.
    Membership,
    /// Full single-address lookups.
    Lookup,
    /// Density / count-within queries.
    Density,
    /// Weekly-diff queries.
    Diff,
    /// Batched lookups (one sample per batch).
    Batch,
}

/// Metrics shared by a store, its query engines, and its ingestors,
/// recorded into a store-private [`Registry`].
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Arc<Registry>,
    membership: Counter,
    lookups: Counter,
    density: Counter,
    diffs: Counter,
    batches: Counter,
    batch_addresses: Counter,
    publishes: Counter,
    degraded_publishes: Counter,
    ingested_addresses: Counter,
    query_latency: [Histogram; 5],
    ingest_batch_latency: Histogram,
    ingest_normalize_latency: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        ServeMetrics {
            membership: registry.counter("serve.query.membership"),
            lookups: registry.counter("serve.query.lookups"),
            density: registry.counter("serve.query.density"),
            diffs: registry.counter("serve.query.diffs"),
            batches: registry.counter("serve.query.batches"),
            batch_addresses: registry.counter("serve.query.batch_addresses"),
            publishes: registry.counter("serve.publish.epochs"),
            degraded_publishes: registry.counter("serve.publish.degraded"),
            ingested_addresses: registry.counter("serve.ingest.addresses"),
            query_latency: [
                registry.histogram("serve.query.latency.membership"),
                registry.histogram("serve.query.latency.lookup"),
                registry.histogram("serve.query.latency.density"),
                registry.histogram("serve.query.latency.diff"),
                registry.histogram("serve.query.latency.batch"),
            ],
            ingest_batch_latency: registry.histogram("serve.ingest.batch_latency"),
            ingest_normalize_latency: registry.histogram("serve.ingest.normalize_latency"),
            registry,
        }
    }
}

/// A point-in-time copy of the serve counters.
///
/// **Deprecated in favor of [`ServeMetrics::registry`]** — the registry's
/// snapshot/`render_text` exposition is the superset (it includes the
/// latency histograms) and is the format the benches emit. `MetricsReport`
/// remains as a compatibility shim for existing callers and keeps its
/// exact field set and `Display` format; no new fields will be added.
#[deprecated(
    since = "0.1.0",
    note = "use ServeMetrics::registry() — snapshot() for values, render_text() for exposition"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// Exact/alias-filtered membership queries served.
    pub membership: u64,
    /// Full lookups served.
    pub lookups: u64,
    /// Density/count queries served.
    pub density: u64,
    /// Weekly-diff queries served.
    pub diffs: u64,
    /// Batched lookup calls served.
    pub batches: u64,
    /// Addresses resolved inside batched calls.
    pub batch_addresses: u64,
    /// Snapshot epochs published.
    pub publishes: u64,
    /// Epochs published in degraded (quarantined-shard) state.
    pub degraded_publishes: u64,
    /// Raw addresses accepted by ingestion (before dedup).
    pub ingested_addresses: u64,
}

#[allow(deprecated)]
impl MetricsReport {
    /// All query operations, counting each batched address once.
    pub fn queries_total(&self) -> u64 {
        self.membership + self.lookups + self.density + self.diffs + self.batch_addresses
    }
}

#[allow(deprecated)]
impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} (membership={} lookups={} density={} diffs={} batches={}/{} addrs) \
             publishes={} (degraded={}) ingested={}",
            self.queries_total(),
            self.membership,
            self.lookups,
            self.density,
            self.diffs,
            self.batches,
            self.batch_addresses,
            self.publishes,
            self.degraded_publishes,
            self.ingested_addresses,
        )
    }
}

impl ServeMetrics {
    pub(crate) fn record_membership(&self) {
        self.membership.inc();
    }

    pub(crate) fn record_lookup(&self) {
        self.lookups.inc();
    }

    pub(crate) fn record_density(&self) {
        self.density.inc();
    }

    pub(crate) fn record_diff(&self) {
        self.diffs.inc();
    }

    pub(crate) fn record_batch(&self, addresses: u64) {
        self.batches.inc();
        self.batch_addresses.add(addresses);
    }

    pub(crate) fn record_publish(&self) {
        self.publishes.inc();
    }

    pub(crate) fn record_degraded_publish(&self) {
        self.degraded_publishes.inc();
    }

    pub(crate) fn record_ingested(&self, addresses: u64) {
        self.ingested_addresses.add(addresses);
    }

    pub(crate) fn record_query_latency(&self, kind: QueryKind, elapsed: Duration) {
        self.query_latency[kind as usize].record_duration(elapsed);
    }

    pub(crate) fn record_ingest_batch_latency(&self, elapsed: Duration) {
        self.ingest_batch_latency.record_duration(elapsed);
    }

    pub(crate) fn record_normalize_latency(&self, elapsed: Duration) {
        self.ingest_normalize_latency.record_duration(elapsed);
    }

    /// The store-private registry behind these metrics: counters named
    /// `serve.query.*` / `serve.publish.*` / `serve.ingest.*` plus the
    /// per-query-type and ingest latency histograms.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Deterministic text exposition of the store's registry
    /// ([`Registry::render_text`]).
    pub fn render_text(&self) -> String {
        self.registry.render_text()
    }

    /// Queries served so far (batched addresses counted individually).
    pub fn queries_total(&self) -> u64 {
        self.membership.get()
            + self.lookups.get()
            + self.density.get()
            + self.diffs.get()
            + self.batch_addresses.get()
    }

    /// Epochs published so far.
    pub fn publishes(&self) -> u64 {
        self.publishes.get()
    }

    /// Degraded epochs published so far.
    pub fn degraded_publishes(&self) -> u64 {
        self.degraded_publishes.get()
    }

    /// A consistent-enough copy of all counters (the [`MetricsReport`]
    /// compatibility shim; prefer [`ServeMetrics::registry`]).
    #[deprecated(
        since = "0.1.0",
        note = "use ServeMetrics::registry() — snapshot() for values, render_text() for exposition"
    )]
    #[allow(deprecated)]
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            membership: self.membership.get(),
            lookups: self.lookups.get(),
            density: self.density.get(),
            diffs: self.diffs.get(),
            batches: self.batches.get(),
            batch_addresses: self.batch_addresses.get(),
            publishes: self.publishes.get(),
            degraded_publishes: self.degraded_publishes.get(),
            ingested_addresses: self.ingested_addresses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)] // exercises the MetricsReport compat shim
    fn counters_accumulate() {
        let m = ServeMetrics::default();
        m.record_membership();
        m.record_lookup();
        m.record_batch(16);
        m.record_publish();
        let r = m.report();
        assert_eq!(r.membership, 1);
        assert_eq!(r.batch_addresses, 16);
        assert_eq!(r.queries_total(), 18);
        assert_eq!(m.publishes(), 1);
        assert!(r.to_string().contains("publishes=1"));
    }

    #[test]
    fn registry_exposition_matches_report() {
        let m = ServeMetrics::default();
        m.record_membership();
        m.record_ingested(100);
        m.record_query_latency(QueryKind::Membership, Duration::from_micros(3));
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("serve.query.membership"), Some(1));
        assert_eq!(snap.counter("serve.ingest.addresses"), Some(100));
        let text = m.render_text();
        assert!(text.contains("serve.query.membership 1\n"));
        assert!(text.contains("serve.query.latency.membership_count 1\n"));
        // Two stores never share a registry.
        let other = ServeMetrics::default();
        assert_eq!(
            other
                .registry()
                .snapshot()
                .counter("serve.query.membership"),
            Some(0)
        );
    }
}
