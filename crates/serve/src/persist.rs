//! Durable publication: the bridge between [`HitlistStore`] and the
//! [`v6store`] write-ahead epoch log.
//!
//! A persistent store publishes write-ahead: the epoch's delta frame is
//! appended and fsynced to the log *before* the snapshot becomes
//! visible to readers, so every epoch a reader has ever observed is
//! recoverable after a crash. [`HitlistStore::recover`] inverts the
//! mapping — it replays checkpoint + log back into an
//! [`v6store::EpochState`] and rebuilds the sharded [`Snapshot`] from
//! it, verifying that the rebuilt content checksum matches the one the
//! log recorded at publish time.
//!
//! The store directory defaults can be overridden with the
//! `V6_DATA_DIR` environment variable via
//! [`v6store::data_dir_from_env`]; see the README "Durability" section
//! and DESIGN.md §11 for the on-disk format.

use v6addr::{shard48, Prefix};
use v6store::{AliasEntry, EpochState};

use crate::snapshot::{bloom_default, Snapshot};

#[allow(unused_imports)] // doc links
use crate::store::HitlistStore;

/// Flattens a snapshot into the globally sorted entry and alias lists
/// an [`v6store::EpochView`] wants.
///
/// Shards partition by the *low* bits of each /48, so per-shard order
/// does not concatenate into global order — this re-sorts (with the
/// radix kernel: the entries are exactly its `(bits, week)` key shape).
/// Entries stream straight out of each shard's compressed run — no raw
/// per-shard `Vec<u128>` is ever materialized. Aliases shorter than /48
/// are replicated into every shard at build time and are deduplicated
/// back to one registration here.
///
/// Public because the cluster layer ([`v6cluster`]) uses the same
/// flattening to seed replication mirrors and compute epoch deltas.
///
/// [`v6cluster`]: ../../v6cluster/index.html
pub fn flatten_snapshot(snap: &Snapshot) -> (Vec<(u128, u32)>, Vec<AliasEntry>) {
    let mut entries = Vec::with_capacity(snap.len() as usize);
    let mut aliases = Vec::new();
    for shard in snap.shards() {
        entries.extend(shard.iter_bits().zip(shard.first_week.iter().copied()));
        for (prefix, &week) in shard.aliases.iter() {
            aliases.push(AliasEntry {
                bits: prefix.bits(),
                len: prefix.len(),
                week,
            });
        }
    }
    // Addresses are globally unique, so keying by (bits, week) sorts by
    // bits while staying exact-equivalent to the old comparison sort.
    v6par::radix_sort_by_key(&mut entries, |&(bits, week)| (bits, u64::from(week)));
    aliases.sort_unstable_by_key(|a| (a.bits, a.len));
    aliases.dedup_by_key(|a| (a.bits, a.len));
    (entries, aliases)
}

/// Rebuilds the sharded snapshot a recovered epoch state describes.
///
/// The content checksum is recomputed from the entries; the caller
/// compares it against the checksum the log recorded at publish time
/// to detect any divergence between the persisted delta chain and the
/// serving data structures.
///
/// Public because cluster followers rebuild their serving snapshot
/// from a replicated [`EpochState`] mirror through exactly this path.
pub fn snapshot_from_state(state: &EpochState) -> Snapshot {
    let shard_count = 1usize << state.shard_bits;
    let mut shard_data: Vec<Vec<(u128, u32)>> = vec![Vec::new(); shard_count];
    for &(bits, week) in &state.entries {
        shard_data[shard48(bits, state.shard_bits)].push((bits, week));
    }
    let aliases: Vec<(Prefix, u32)> = state
        .aliases
        .iter()
        .map(|a| (Prefix::from_bits(a.bits, a.len), a.week))
        .collect();
    // Recovery rebuilds directly into the compressed tier; the bloom
    // front follows the `V6_BLOOM` toggle like any fresh build.
    let mut snap = Snapshot::from_sorted_parts(
        &state.name,
        state.shard_bits,
        &shard_data,
        &aliases,
        bloom_default(),
    );
    snap.epoch = state.epoch;
    snap.week = state.week;
    snap.missing_shards = state.missing_shards.clone();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;
    use std::net::Ipv6Addr;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn flatten_and_rebuild_round_trip() {
        let mut b = SnapshotBuilder::new("svc", 8);
        for i in 0..100u32 {
            b.add_address(addr(&format!("2001:db8:{:x}::{:x}", i % 13, i + 1)), i % 4);
        }
        b.add_alias("2001:db8:1::/48".parse().unwrap(), 1);
        b.add_alias("2001:db8::/32".parse().unwrap(), 0); // < /48: replicated
        let snap = b.build();

        let (entries, aliases) = flatten_snapshot(&snap);
        assert_eq!(entries.len() as u64, snap.len());
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(aliases.len(), 2, "sub-/48 replication deduplicated");

        let state = EpochState {
            name: "svc".into(),
            shard_bits: 3,
            epoch: 7,
            week: snap.week(),
            content_checksum: snap.content_checksum(),
            missing_shards: vec![],
            entries,
            aliases,
        };
        let rebuilt = snapshot_from_state(&state);
        assert_eq!(rebuilt.epoch(), 7);
        assert!(rebuilt.verify_integrity());
        assert_eq!(rebuilt.content_checksum(), snap.content_checksum());
        assert_eq!(rebuilt.len(), snap.len());
        assert!(rebuilt.is_aliased(addr("2001:db8:1::5")));
        assert!(rebuilt.is_aliased(addr("2001:db8:ff::5")));
    }
}
