//! Serving-side streaming analytics: a [`v6stream::StreamDriver`]
//! kept current alongside a [`HitlistStore`], answering windowed
//! queries no snapshot can.
//!
//! A snapshot is a point-in-time corpus: it can answer `new_since`
//! (the week column survives) but not "which devices *moved* between
//! windows" or "how did an AS's address entropy shift" — those need
//! history folded as it streamed past. [`StreamAnalytics`] owns that
//! fold. Deltas arrive from whichever stream the deployment has:
//!
//! * a persistent store's epoch log, tailed in place
//!   ([`StreamAnalytics::tail_log`] + [`StreamAnalytics::poll`]);
//! * a cluster follower's replication stream (the node feeds each
//!   verified delta through [`StreamAnalytics::feed`]);
//! * a full resync from any materialized [`Snapshot`]
//!   ([`StreamAnalytics::resync_from`]) — the recovery path after a
//!   replay gap, and the bootstrap path for in-memory stores.
//!
//! All query answers carry the epoch they reflect; when the driver is
//! lagging after a detected gap, queries keep answering from the last
//! verified epoch and [`StreamAnalytics::is_lagging`] says so — the
//! same degraded-but-honest posture quarantined shards take.

use std::io;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use v6store::{DeltaRecord, LogTailer};
use v6stream::{
    DensityReport, DeviceReport, EntropyRow, Move, Offer, RotationRow, SharedResolver, StreamDriver,
};

use crate::persist::flatten_snapshot;
use crate::snapshot::Snapshot;

#[allow(unused_imports)] // doc links
use crate::store::HitlistStore;

struct Inner {
    driver: StreamDriver,
    tailer: Option<LogTailer>,
}

/// Incremental analytics over a store's epoch stream.
///
/// Cheap to share (`Arc`); all methods lock internally. Attach one to
/// a [`crate::QueryEngine`] with
/// [`crate::QueryEngine::with_analytics`] to expose the windowed
/// query shapes (`moved_between`, `entropy_shift`) next to the
/// snapshot queries.
pub struct StreamAnalytics {
    inner: Mutex<Inner>,
}

impl StreamAnalytics {
    /// Empty analytics attributing addresses through `resolver`.
    pub fn new(resolver: SharedResolver) -> StreamAnalytics {
        StreamAnalytics {
            inner: Mutex::new(Inner {
                driver: StreamDriver::new(resolver),
                tailer: None,
            }),
        }
    }

    /// Attaches a read-only tailer on a persistent store's epoch log
    /// directory; [`StreamAnalytics::poll`] then drains newly appended
    /// deltas.
    pub fn tail_log(self, dir: impl AsRef<Path>) -> StreamAnalytics {
        self.inner.lock().tailer = Some(LogTailer::new(dir));
        self
    }

    /// Feeds one delta (a cluster push, a tailed frame) through the
    /// driver's verification.
    pub fn feed(&self, delta: &DeltaRecord) -> Offer {
        self.inner.lock().driver.feed(delta)
    }

    /// Polls the attached log tailer and feeds everything it delivers.
    /// Empty when no tailer is attached.
    pub fn poll(&self) -> io::Result<Vec<Offer>> {
        let mut inner = self.inner.lock();
        let Some(mut tailer) = inner.tailer.take() else {
            return Ok(Vec::new());
        };
        let result = inner.driver.poll_log(&mut tailer);
        inner.tailer = Some(tailer);
        result.map(|(offers, _)| offers)
    }

    /// Rebuilds the operators from a materialized snapshot — gap
    /// recovery and in-memory bootstrap. O(corpus), explicitly.
    pub fn resync_from(&self, snap: &Snapshot) {
        let (entries, _aliases) = flatten_snapshot(snap);
        self.inner
            .lock()
            .driver
            .resync(snap.epoch(), snap.week(), &entries);
    }

    /// The epoch the operators currently reflect.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().driver.epoch()
    }

    /// True when a replay gap was detected and a
    /// [`StreamAnalytics::resync_from`] is needed; answers meanwhile
    /// reflect the last verified epoch.
    pub fn is_lagging(&self) -> bool {
        self.inner.lock().driver.is_lagging()
    }

    /// The maintained corpus content checksum (equals
    /// [`Snapshot::content_checksum`] of the reflected epoch).
    pub fn content_checksum(&self) -> u64 {
        self.inner.lock().driver.content_checksum()
    }

    /// `(operator name, checksum)` for every operator — the
    /// streaming ≡ batch equivalence witness.
    pub fn checksums(&self) -> [(&'static str, u64); 4] {
        self.inner.lock().driver.analytics().checksums()
    }

    /// Devices that inhabited a /64 at or before week `w0` and first
    /// appeared in a different /64 during `(w0, w1]`.
    pub fn moved_between(&self, w0: u32, w1: u32) -> Vec<Move> {
        self.inner
            .lock()
            .driver
            .analytics()
            .devices
            .moved_between(w0, w1)
    }

    /// Entropy-distribution shift (total-variation, per-mille) of
    /// `as_index` between the corpus as of `w0` and the additions of
    /// `(w0, w1]`; `None` when either side is empty.
    pub fn entropy_shift(&self, as_index: u16, w0: u32, w1: u32) -> Option<u32> {
        self.inner
            .lock()
            .driver
            .analytics()
            .entropy
            .shift(as_index, w0, w1)
    }

    /// Per-/48 density snapshot with up to `top` densest networks.
    pub fn density(&self, top: usize) -> DensityReport {
        self.inner.lock().driver.analytics().density.snapshot(top)
    }

    /// Per-AS entropy summary rows.
    pub fn entropy_rows(&self) -> Vec<EntropyRow> {
        self.inner.lock().driver.analytics().entropy.snapshot()
    }

    /// EUI-64 device census with track-class counts.
    pub fn devices(&self) -> DeviceReport {
        self.inner.lock().driver.analytics().devices.snapshot()
    }

    /// Per-AS rotation period estimates.
    pub fn rotation(&self) -> Vec<RotationRow> {
        self.inner.lock().driver.analytics().rotation.snapshot()
    }
}

/// Shorthand: analytics bootstrapped from a store's current snapshot.
pub fn analytics_for(store: &HitlistStore, resolver: SharedResolver) -> Arc<StreamAnalytics> {
    let analytics = StreamAnalytics::new(resolver);
    analytics.resync_from(&store.snapshot());
    Arc::new(analytics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;
    use crate::store::HitlistStore;
    use v6stream::{Analytics, PrefixAsTable};

    fn resolver() -> SharedResolver {
        Arc::new(PrefixAsTable::new(Vec::new()))
    }

    #[test]
    fn resync_matches_batch_and_checksum() {
        let store = HitlistStore::new("svc", 4);
        let mut b = SnapshotBuilder::new("svc", 4);
        for i in 0..50u32 {
            b.add_bits(
                (0x2001_0db8u128 << 96) | (u128::from(i % 7) << 80) | u128::from(i),
                i % 4,
            );
        }
        store.publish(b.build()).unwrap();

        let analytics = analytics_for(&store, resolver());
        let snap = store.snapshot();
        assert_eq!(analytics.epoch(), snap.epoch());
        assert_eq!(analytics.content_checksum(), snap.content_checksum());

        let (entries, _) = flatten_snapshot(&snap);
        let batch = Analytics::from_entries(resolver(), &entries);
        assert_eq!(analytics.checksums(), batch.checksums());
        assert_eq!(analytics.density(4).addresses, snap.len());
    }

    #[test]
    fn tailing_a_persistent_store_tracks_epochs() {
        let dir = v6store::scratch_dir("serve_stream_tail");
        let store =
            HitlistStore::persistent("svc", 2, v6store::StoreConfig::new(&dir).with_fsync(false))
                .unwrap();
        let analytics = StreamAnalytics::new(resolver()).tail_log(&dir);

        for week in 1..=3u32 {
            let mut b = SnapshotBuilder::new("svc", 2);
            for w in 1..=week {
                b.add_bits((0x2001_0db8u128 << 96) | u128::from(w), w);
            }
            store.publish(b.build()).unwrap();
            let offers = analytics.poll().unwrap();
            assert_eq!(offers, vec![Offer::Applied(1)]);
        }
        let snap = store.snapshot();
        assert_eq!(analytics.epoch(), snap.epoch());
        assert_eq!(analytics.content_checksum(), snap.content_checksum());
        std::fs::remove_dir_all(&dir).ok();
    }
}
