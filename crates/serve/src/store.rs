//! Epoch-swapped snapshot publication.
//!
//! The store holds the current [`Snapshot`] behind `RwLock<Arc<Snapshot>>`.
//! Readers take the read lock just long enough to clone the `Arc` — a
//! few nanoseconds — and then query their snapshot without any lock at
//! all. Publishing validates the new snapshot *outside* the lock, then
//! takes the write lock only to compare epochs and swap one pointer, so
//! a publication never blocks readers for longer than that swap.
//!
//! The alternative — a mutex around a mutable store — would stall every
//! reader for the full duration of a weekly merge (millions of
//! addresses); the ablation in DESIGN.md quantifies the difference.
//!
//! # Durability
//!
//! A store opened with [`HitlistStore::persistent`] additionally writes
//! each epoch through a [`v6store::EpochLog`] *before* the pointer swap
//! (write-ahead: durable-before-visible), and can be rebuilt from its
//! directory with [`HitlistStore::recover`]. A store built with
//! [`HitlistStore::new`] keeps the previous in-memory-only behavior.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use v6chaos::{Chaos, NoChaos};
use v6store::{EpochLog, EpochView, RecoverError, RecoveryReport, StoreConfig};

use crate::metrics::ServeMetrics;
use crate::persist::{flatten_snapshot, snapshot_from_state};
use crate::snapshot::Snapshot;

/// Why a publication was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The snapshot failed [`Snapshot::verify_integrity`].
    IntegrityFailure,
    /// The snapshot's shard count differs from the store's.
    ShardMismatch {
        /// Shards the store serves.
        expected: usize,
        /// Shards the snapshot has.
        got: usize,
    },
    /// The write-ahead log append failed: the epoch is *not* durable and
    /// was not made visible to readers. The store stays on its previous
    /// epoch and remains usable; the failed epoch number is burned.
    Persistence(String),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::IntegrityFailure => write!(f, "snapshot failed integrity verification"),
            PublishError::ShardMismatch { expected, got } => {
                write!(f, "snapshot has {got} shards, store serves {expected}")
            }
            PublishError::Persistence(e) => write!(f, "write-ahead log append failed: {e}"),
        }
    }
}

impl std::error::Error for PublishError {}

/// What a successful publication did and what it cost.
#[derive(Debug, Clone, Copy)]
pub struct PublishReceipt {
    /// The epoch assigned to the published snapshot.
    pub epoch: u64,
    /// Addresses in the published snapshot.
    pub addresses: u64,
    /// Time spent validating outside the lock.
    pub validate: Duration,
    /// Time the write lock was actually held (the pointer swap).
    pub swap: Duration,
    /// Time spent making the epoch durable (zero for in-memory stores).
    pub persist: Duration,
}

/// The concurrently readable hitlist store.
#[derive(Debug)]
pub struct HitlistStore {
    current: RwLock<Arc<Snapshot>>,
    next_epoch: AtomicU64,
    shard_count: usize,
    metrics: Arc<ServeMetrics>,
    /// Write-ahead epoch log; `None` for in-memory stores. The mutex
    /// covers epoch allocation + append so the on-disk epoch sequence
    /// is strictly monotonic even with concurrent publishers.
    log: Option<Mutex<EpochLog>>,
}

impl HitlistStore {
    /// An empty in-memory store serving `shard_count` (power of two)
    /// shards. State does not survive a restart; see
    /// [`HitlistStore::persistent`].
    pub fn new(name: impl Into<String>, shard_count: usize) -> Self {
        HitlistStore {
            current: RwLock::new(Arc::new(Snapshot::empty(name, shard_count))),
            next_epoch: AtomicU64::new(1),
            shard_count,
            metrics: Arc::new(ServeMetrics::default()),
            log: None,
        }
    }

    /// An empty *durable* store: every published epoch is appended and
    /// fsynced to the write-ahead log in `cfg.dir` before it becomes
    /// visible, and [`HitlistStore::recover`] can rebuild the store
    /// from that directory after a crash. Any previous store files in
    /// the directory are wiped.
    pub fn persistent(
        name: impl Into<String>,
        shard_count: usize,
        cfg: StoreConfig,
    ) -> io::Result<Self> {
        Self::persistent_with(name, shard_count, cfg, Arc::new(NoChaos))
    }

    /// [`HitlistStore::persistent`] with fault injection on the write
    /// path (`store.append.*`, `store.bitrot.*`, `store.checkpoint.*`).
    pub fn persistent_with(
        name: impl Into<String>,
        shard_count: usize,
        cfg: StoreConfig,
        chaos: Arc<dyn Chaos>,
    ) -> io::Result<Self> {
        let name = name.into();
        assert!(
            shard_count.is_power_of_two(),
            "shard count must be a power of two, got {shard_count}"
        );
        let metrics = Arc::new(ServeMetrics::default());
        let log = EpochLog::create_with(
            cfg,
            &name,
            shard_count.trailing_zeros(),
            metrics.registry(),
            chaos,
        )?;
        Ok(HitlistStore {
            current: RwLock::new(Arc::new(Snapshot::empty(name, shard_count))),
            next_epoch: AtomicU64::new(1),
            shard_count,
            metrics,
            log: Some(Mutex::new(log)),
        })
    }

    /// Rebuilds a durable store from its directory: loads the newest
    /// parseable checkpoint, replays the log tail (truncating a torn
    /// tail, quarantining bit-rotted frames), verifies the rebuilt
    /// content checksum against the one recorded at publish time, and
    /// reopens the log for further publication.
    pub fn recover(cfg: StoreConfig) -> Result<(Self, RecoveryReport), RecoverError> {
        Self::recover_with(cfg, Arc::new(NoChaos))
    }

    /// [`HitlistStore::recover`] with fault injection on the reopened
    /// write path.
    pub fn recover_with(
        cfg: StoreConfig,
        chaos: Arc<dyn Chaos>,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let metrics = Arc::new(ServeMetrics::default());
        let rec = v6store::recover_with(&cfg.dir, None, metrics.registry())?;
        let snapshot = snapshot_from_state(&rec.state);
        if snapshot.content_checksum() != rec.state.content_checksum {
            return Err(RecoverError::Io(io::Error::other(format!(
                "recovered epoch {} rebuilds to checksum {:#x}, log recorded {:#x}",
                rec.state.epoch,
                snapshot.content_checksum(),
                rec.state.content_checksum
            ))));
        }
        let shard_count = 1usize << rec.state.shard_bits;
        let next = rec.state.epoch + 1;
        let log = EpochLog::resume(cfg, rec.state, &rec.report, metrics.registry(), chaos)
            .map_err(RecoverError::Io)?;
        Ok((
            HitlistStore {
                current: RwLock::new(Arc::new(snapshot)),
                next_epoch: AtomicU64::new(next),
                shard_count,
                metrics,
                log: Some(Mutex::new(log)),
            },
            rec.report,
        ))
    }

    /// True when this store writes epochs through a write-ahead log.
    pub fn is_persistent(&self) -> bool {
        self.log.is_some()
    }

    /// The shared metrics counters.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The current snapshot. Readers hold no lock after this returns.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().clone()
    }

    /// The current publication epoch (0 until the first publish).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Validates and publishes a snapshot, assigning it the next epoch.
    ///
    /// Integrity verification runs before taking any lock; the write lock
    /// is held only for an epoch comparison and an `Arc` swap. Concurrent
    /// publishers are safe: epochs are allocated atomically and a stale
    /// publisher can never roll back a newer epoch.
    ///
    /// On a persistent store the epoch is appended and fsynced to the
    /// write-ahead log *before* the swap. A failed append returns
    /// [`PublishError::Persistence`] and leaves the store serving its
    /// previous epoch — readers can never observe an epoch that would
    /// not survive a crash.
    pub fn publish(&self, snapshot: Snapshot) -> Result<PublishReceipt, PublishError> {
        self.publish_impl(snapshot, None)
    }

    /// [`HitlistStore::publish`] under a caller-chosen epoch number,
    /// for replicas that must stay on an externally coordinated epoch
    /// sequence (a cluster assigns epochs globally; a node that was
    /// down for epochs 5–7 publishes epoch 8 next, and its write-ahead
    /// log records the same gap every peer's does).
    ///
    /// The epoch must exceed everything this store has published —
    /// gaps are fine, rollback is not. On a persistent store a
    /// non-monotonic epoch fails the write-ahead append and returns
    /// [`PublishError::Persistence`]; on an in-memory store the swap is
    /// skipped and readers keep the newer epoch.
    pub fn publish_as(
        &self,
        snapshot: Snapshot,
        epoch: u64,
    ) -> Result<PublishReceipt, PublishError> {
        self.publish_impl(snapshot, Some(epoch))
    }

    fn publish_impl(
        &self,
        mut snapshot: Snapshot,
        explicit: Option<u64>,
    ) -> Result<PublishReceipt, PublishError> {
        if snapshot.shard_count() != self.shard_count {
            return Err(PublishError::ShardMismatch {
                expected: self.shard_count,
                got: snapshot.shard_count(),
            });
        }
        let t0 = Instant::now();
        if !snapshot.verify_integrity() {
            return Err(PublishError::IntegrityFailure);
        }
        let validate = t0.elapsed();

        // An explicit epoch reserves itself in the allocator so later
        // auto-assigned epochs continue past it; auto allocation keeps
        // the fetch_add fast path.
        let allocate = |explicit: Option<u64>| match explicit {
            None => self.next_epoch.fetch_add(1, Ordering::Relaxed),
            Some(e) => {
                self.next_epoch.fetch_max(e + 1, Ordering::Relaxed);
                e
            }
        };

        let mut persist = Duration::ZERO;
        let epoch = match &self.log {
            None => allocate(explicit),
            Some(log) => {
                // Epoch allocation and append happen under the log mutex
                // so the on-disk sequence is strictly monotonic.
                let tp = Instant::now();
                let mut log = log.lock();
                let epoch = allocate(explicit);
                let (entries, aliases) = flatten_snapshot(&snapshot);
                log.append(EpochView {
                    epoch,
                    week: snapshot.week(),
                    content_checksum: snapshot.content_checksum(),
                    missing_shards: snapshot.missing_shards(),
                    entries: &entries,
                    aliases: &aliases,
                })
                .map_err(|e| PublishError::Persistence(e.to_string()))?;
                persist = tp.elapsed();
                epoch
            }
        };
        snapshot.epoch = epoch;
        let addresses = snapshot.len();
        let degraded = snapshot.is_degraded();
        let arc = Arc::new(snapshot);

        let t1 = Instant::now();
        {
            let mut current = self.current.write();
            if current.epoch() < epoch {
                *current = arc;
            }
        }
        let swap = t1.elapsed();
        self.metrics.record_publish();
        {
            // Export the published epoch's memory footprint: raw is what
            // the old Vec<u128>+Vec<u32> columns would cost, compressed
            // is what the tiered representation actually holds.
            let current = self.current.read();
            self.metrics
                .set_store_bytes(current.raw_bytes(), current.stored_bytes());
        }
        if degraded {
            self.metrics.record_degraded_publish();
        }
        Ok(PublishReceipt {
            epoch,
            addresses,
            validate,
            swap,
            persist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;
    use std::net::Ipv6Addr;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn publish_swaps_epochs() {
        let store = HitlistStore::new("svc", 4);
        assert_eq!(store.epoch(), 0);
        assert!(store.snapshot().is_empty());

        let mut b = SnapshotBuilder::new("svc", 4);
        b.add_address(addr("2001:db8::1"), 0);
        let receipt = store.publish(b.build()).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.addresses, 1);
        assert_eq!(store.epoch(), 1);
        assert!(store.snapshot().contains(addr("2001:db8::1")));
        assert_eq!(store.metrics().publishes(), 1);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let store = HitlistStore::new("svc", 1);
        let mut b = SnapshotBuilder::new("svc", 1);
        b.add_address(addr("2001:db8::1"), 0);
        store.publish(b.build()).unwrap();

        let held = store.snapshot();
        let mut b = SnapshotBuilder::new("svc", 1);
        b.add_address(addr("2001:db8::2"), 1);
        store.publish(b.build()).unwrap();

        // The old epoch stays fully usable after the swap.
        assert_eq!(held.epoch(), 1);
        assert!(held.contains(addr("2001:db8::1")));
        assert!(!held.contains(addr("2001:db8::2")));
        assert!(store.snapshot().contains(addr("2001:db8::2")));
    }

    #[test]
    fn publish_as_keeps_an_external_epoch_sequence() {
        let store = HitlistStore::new("svc", 2);
        let mut b = SnapshotBuilder::new("svc", 2);
        b.add_address(addr("2001:db8::1"), 0);
        let receipt = store.publish_as(b.build(), 5).unwrap();
        assert_eq!(receipt.epoch, 5);
        assert_eq!(store.epoch(), 5);

        // Auto allocation continues past the reserved epoch.
        let mut b = SnapshotBuilder::new("svc", 2);
        b.add_address(addr("2001:db8::2"), 1);
        assert_eq!(store.publish(b.build()).unwrap().epoch, 6);

        // A stale explicit epoch can never roll visible state back.
        let mut b = SnapshotBuilder::new("svc", 2);
        b.add_address(addr("2001:db8::3"), 2);
        store.publish_as(b.build(), 3).unwrap();
        assert_eq!(store.epoch(), 6);
        assert!(!store.snapshot().contains(addr("2001:db8::3")));
    }

    #[test]
    fn rejects_wrong_shard_count_and_corruption() {
        let store = HitlistStore::new("svc", 4);
        let b = SnapshotBuilder::new("svc", 2);
        assert!(matches!(
            store.publish(b.build()),
            Err(PublishError::ShardMismatch {
                expected: 4,
                got: 2
            })
        ));

        let mut b = SnapshotBuilder::new("svc", 4);
        b.add_address(addr("2001:db8::1"), 0);
        let mut snap = b.build();
        snap.total += 1; // corrupt
        assert!(matches!(
            store.publish(snap),
            Err(PublishError::IntegrityFailure)
        ));
    }
}
