//! Epoch-swapped snapshot publication.
//!
//! The store holds the current [`Snapshot`] behind `RwLock<Arc<Snapshot>>`.
//! Readers take the read lock just long enough to clone the `Arc` — a
//! few nanoseconds — and then query their snapshot without any lock at
//! all. Publishing validates the new snapshot *outside* the lock, then
//! takes the write lock only to compare epochs and swap one pointer, so
//! a publication never blocks readers for longer than that swap.
//!
//! The alternative — a mutex around a mutable store — would stall every
//! reader for the full duration of a weekly merge (millions of
//! addresses); the ablation in DESIGN.md quantifies the difference.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::metrics::ServeMetrics;
use crate::snapshot::Snapshot;

/// Why a publication was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The snapshot failed [`Snapshot::verify_integrity`].
    IntegrityFailure,
    /// The snapshot's shard count differs from the store's.
    ShardMismatch {
        /// Shards the store serves.
        expected: usize,
        /// Shards the snapshot has.
        got: usize,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::IntegrityFailure => write!(f, "snapshot failed integrity verification"),
            PublishError::ShardMismatch { expected, got } => {
                write!(f, "snapshot has {got} shards, store serves {expected}")
            }
        }
    }
}

impl std::error::Error for PublishError {}

/// What a successful publication did and what it cost.
#[derive(Debug, Clone, Copy)]
pub struct PublishReceipt {
    /// The epoch assigned to the published snapshot.
    pub epoch: u64,
    /// Addresses in the published snapshot.
    pub addresses: u64,
    /// Time spent validating outside the lock.
    pub validate: Duration,
    /// Time the write lock was actually held (the pointer swap).
    pub swap: Duration,
}

/// The concurrently readable hitlist store.
#[derive(Debug)]
pub struct HitlistStore {
    current: RwLock<Arc<Snapshot>>,
    next_epoch: AtomicU64,
    shard_count: usize,
    metrics: Arc<ServeMetrics>,
}

impl HitlistStore {
    /// An empty store serving `shard_count` (power of two) shards.
    pub fn new(name: impl Into<String>, shard_count: usize) -> Self {
        HitlistStore {
            current: RwLock::new(Arc::new(Snapshot::empty(name, shard_count))),
            next_epoch: AtomicU64::new(1),
            shard_count,
            metrics: Arc::new(ServeMetrics::default()),
        }
    }

    /// The shared metrics counters.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The current snapshot. Readers hold no lock after this returns.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().clone()
    }

    /// The current publication epoch (0 until the first publish).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Validates and publishes a snapshot, assigning it the next epoch.
    ///
    /// Integrity verification runs before taking any lock; the write lock
    /// is held only for an epoch comparison and an `Arc` swap. Concurrent
    /// publishers are safe: epochs are allocated atomically and a stale
    /// publisher can never roll back a newer epoch.
    pub fn publish(&self, mut snapshot: Snapshot) -> Result<PublishReceipt, PublishError> {
        if snapshot.shard_count() != self.shard_count {
            return Err(PublishError::ShardMismatch {
                expected: self.shard_count,
                got: snapshot.shard_count(),
            });
        }
        let t0 = Instant::now();
        if !snapshot.verify_integrity() {
            return Err(PublishError::IntegrityFailure);
        }
        let validate = t0.elapsed();

        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        snapshot.epoch = epoch;
        let addresses = snapshot.len();
        let degraded = snapshot.is_degraded();
        let arc = Arc::new(snapshot);

        let t1 = Instant::now();
        {
            let mut current = self.current.write();
            if current.epoch() < epoch {
                *current = arc;
            }
        }
        let swap = t1.elapsed();
        self.metrics.record_publish();
        if degraded {
            self.metrics.record_degraded_publish();
        }
        Ok(PublishReceipt {
            epoch,
            addresses,
            validate,
            swap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;
    use std::net::Ipv6Addr;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn publish_swaps_epochs() {
        let store = HitlistStore::new("svc", 4);
        assert_eq!(store.epoch(), 0);
        assert!(store.snapshot().is_empty());

        let mut b = SnapshotBuilder::new("svc", 4);
        b.add_address(addr("2001:db8::1"), 0);
        let receipt = store.publish(b.build()).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.addresses, 1);
        assert_eq!(store.epoch(), 1);
        assert!(store.snapshot().contains(addr("2001:db8::1")));
        assert_eq!(store.metrics().publishes(), 1);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let store = HitlistStore::new("svc", 1);
        let mut b = SnapshotBuilder::new("svc", 1);
        b.add_address(addr("2001:db8::1"), 0);
        store.publish(b.build()).unwrap();

        let held = store.snapshot();
        let mut b = SnapshotBuilder::new("svc", 1);
        b.add_address(addr("2001:db8::2"), 1);
        store.publish(b.build()).unwrap();

        // The old epoch stays fully usable after the swap.
        assert_eq!(held.epoch(), 1);
        assert!(held.contains(addr("2001:db8::1")));
        assert!(!held.contains(addr("2001:db8::2")));
        assert!(store.snapshot().contains(addr("2001:db8::2")));
    }

    #[test]
    fn rejects_wrong_shard_count_and_corruption() {
        let store = HitlistStore::new("svc", 4);
        let b = SnapshotBuilder::new("svc", 2);
        assert!(matches!(
            store.publish(b.build()),
            Err(PublishError::ShardMismatch {
                expected: 4,
                got: 2
            })
        ));

        let mut b = SnapshotBuilder::new("svc", 4);
        b.add_address(addr("2001:db8::1"), 0);
        let mut snap = b.build();
        snap.total += 1; // corrupt
        assert!(matches!(
            store.publish(snap),
            Err(PublishError::IntegrityFailure)
        ));
    }
}
