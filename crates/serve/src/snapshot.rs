//! Immutable, sharded snapshots of one hitlist publication epoch.
//!
//! A [`Snapshot`] is the unit of publication: once built it is never
//! mutated, so any number of reader threads can query it without
//! synchronization while the ingestion pipeline assembles the next epoch.
//!
//! Addresses are partitioned into `2^shard_bits` [`Shard`]s keyed by the
//! *low* bits of each address's /48 prefix ([`v6addr::shard48`]): the high
//! bits would skew badly (announced space concentrates under `2000::/3`),
//! and keeping whole /48s shard-local makes per-/48 density aggregates a
//! single-shard operation. Each shard stores its addresses as one sorted
//! `u128` vector (binary-search membership, cache-dense scans) with a
//! parallel first-published-week vector, plus a radix trie of aliased
//! prefixes for longest-prefix alias answers.

use std::net::Ipv6Addr;

use v6addr::{shard48, Prefix, PrefixMap};

/// One partition of a snapshot: the addresses whose /48 low bits select it.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    /// Sorted, deduplicated address bits.
    pub(crate) addrs: Vec<u128>,
    /// Parallel to `addrs`: study week each address was first published.
    pub(crate) first_week: Vec<u32>,
    /// Aliased prefixes relevant to this shard (week registered as value).
    pub(crate) aliases: PrefixMap<u32>,
    /// `(network bits, count)` per distinct /48, ascending.
    pub(crate) agg48: Vec<(u128, u32)>,
    /// `(week, newly published count)` pairs, ascending by week.
    pub(crate) week_counts: Vec<(u32, u64)>,
}

impl Shard {
    /// Number of addresses in this shard.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the shard holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The sorted address bits.
    pub fn addrs(&self) -> &[u128] {
        &self.addrs
    }

    /// Exact membership of an address (by bits).
    pub fn contains_bits(&self, bits: u128) -> bool {
        self.addrs.binary_search(&bits).is_ok()
    }

    /// The week an address was first published, if present.
    pub fn first_week_of(&self, bits: u128) -> Option<u32> {
        self.addrs
            .binary_search(&bits)
            .ok()
            .map(|i| self.first_week[i])
    }

    /// Longest aliased prefix covering `addr`, if any.
    pub fn longest_alias(&self, addr: Ipv6Addr) -> Option<Prefix> {
        self.aliases.longest_match(addr).map(|(p, _)| p)
    }

    /// Addresses published in this shard's /48 with the given network bits.
    pub fn count48(&self, net48: u128) -> u64 {
        self.agg48
            .binary_search_by_key(&net48, |&(net, _)| net)
            .map(|i| u64::from(self.agg48[i].1))
            .unwrap_or(0)
    }

    fn rebuild_aggregates(&mut self) {
        let mask48 = Prefix::mask(48);
        self.agg48.clear();
        for &a in &self.addrs {
            let net = a & mask48;
            match self.agg48.last_mut() {
                Some((last, n)) if *last == net => *n += 1,
                _ => self.agg48.push((net, 1)),
            }
        }
        let mut weeks: Vec<u32> = self.first_week.clone();
        weeks.sort_unstable();
        self.week_counts.clear();
        for w in weeks {
            match self.week_counts.last_mut() {
                Some((last, n)) if *last == w => *n += 1,
                _ => self.week_counts.push((w, 1)),
            }
        }
    }
}

/// Health of a published epoch, as surfaced to readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeStatus {
    /// Every shard reflects all ingested updates.
    Ok,
    /// Some shards are quarantined: their content is the last good
    /// merge, not the latest updates. Readers still get answers — they
    /// are just possibly stale for addresses in these shards.
    Degraded {
        /// Shard indices whose latest updates are held in quarantine.
        missing_shards: Vec<u32>,
    },
}

/// An immutable view of one publication epoch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) name: String,
    pub(crate) epoch: u64,
    pub(crate) week: u64,
    pub(crate) shard_bits: u32,
    pub(crate) shards: Vec<Shard>,
    pub(crate) total: u64,
    pub(crate) checksum: u64,
    /// Sorted indices of shards serving stale (pre-quarantine) content.
    pub(crate) missing_shards: Vec<u32>,
}

/// Order-independent content checksum over `(bits, week)` pairs.
fn fold_addr(acc: u64, bits: u128, week: u32) -> u64 {
    let mixed = (bits as u64)
        ^ ((bits >> 64) as u64).rotate_left(17)
        ^ u64::from(week).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    acc.wrapping_add(mixed.wrapping_mul(0xbf58_476d_1ce4_e5b9) | 1)
}

impl Snapshot {
    /// An empty snapshot (epoch 0) with `shard_count` shards.
    ///
    /// # Panics
    /// Panics unless `shard_count` is a power of two.
    pub fn empty(name: impl Into<String>, shard_count: usize) -> Self {
        assert!(
            shard_count.is_power_of_two(),
            "shard count must be a power of two, got {shard_count}"
        );
        let shard_bits = shard_count.trailing_zeros();
        Snapshot {
            name: name.into(),
            epoch: 0,
            week: 0,
            shard_bits,
            shards: vec![Shard::default(); shard_count],
            total: 0,
            checksum: 0,
            missing_shards: Vec::new(),
        }
    }

    /// Builds from per-shard `(bits, week)` vectors that are already
    /// sorted by bits and deduplicated, plus `(prefix, week)` alias
    /// registrations. This is the O(n) path the ingestion merger uses.
    pub(crate) fn from_sorted_parts(
        name: impl Into<String>,
        shard_bits: u32,
        shard_data: &[Vec<(u128, u32)>],
        aliases: &[(Prefix, u32)],
    ) -> Self {
        assert_eq!(shard_data.len(), 1usize << shard_bits);
        let mut snap = Snapshot::empty(name, 1usize << shard_bits);
        let mut checksum = 0u64;
        let mut total = 0u64;
        let mut max_week = 0u64;
        for (shard, data) in snap.shards.iter_mut().zip(shard_data) {
            shard.addrs = data.iter().map(|&(b, _)| b).collect();
            shard.first_week = data.iter().map(|&(_, w)| w).collect();
            debug_assert!(shard.addrs.windows(2).all(|w| w[0] < w[1]));
            for &(b, w) in data {
                checksum = fold_addr(checksum, b, w);
                max_week = max_week.max(u64::from(w));
            }
            total += data.len() as u64;
            shard.rebuild_aggregates();
        }
        for &(prefix, week) in aliases {
            match prefix.shard48(shard_bits) {
                Some(i) => {
                    snap.shards[i].aliases.insert(prefix, week);
                }
                None => {
                    for shard in &mut snap.shards {
                        shard.aliases.insert(prefix, week);
                    }
                }
            }
        }
        snap.total = total;
        snap.week = max_week;
        snap.checksum = checksum;
        snap
    }

    /// Service name this snapshot was published under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publication sequence number (0 = never published).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Latest study week included.
    pub fn week(&self) -> u64 {
        self.week
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total addresses across all shards.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no addresses are published.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The order-independent content checksum over `(bits, week)` pairs.
    ///
    /// Two snapshots with the same addresses and first-seen weeks have
    /// the same checksum regardless of how they were assembled — the
    /// equality the chaos suite uses to prove quarantine recovery
    /// restored the full content.
    pub fn content_checksum(&self) -> u64 {
        self.checksum
    }

    /// This epoch's health: `Ok`, or `Degraded` listing stale shards.
    pub fn status(&self) -> ServeStatus {
        if self.missing_shards.is_empty() {
            ServeStatus::Ok
        } else {
            ServeStatus::Degraded {
                missing_shards: self.missing_shards.clone(),
            }
        }
    }

    /// True when any shard is serving stale (quarantined) content.
    pub fn is_degraded(&self) -> bool {
        !self.missing_shards.is_empty()
    }

    /// Sorted indices of shards serving stale content.
    pub fn missing_shards(&self) -> &[u32] {
        &self.missing_shards
    }

    /// True when `addr` falls in a shard serving stale content.
    pub fn shard_missing(&self, addr: Ipv6Addr) -> bool {
        let i = shard48(u128::from(addr), self.shard_bits) as u32;
        self.missing_shards.binary_search(&i).is_ok()
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard an address belongs to.
    pub fn shard_for(&self, addr: Ipv6Addr) -> &Shard {
        &self.shards[shard48(u128::from(addr), self.shard_bits)]
    }

    /// Exact membership.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.shard_for(addr).contains_bits(u128::from(addr))
    }

    /// The week `addr` was first published, if it is in the hitlist.
    pub fn first_week(&self, addr: Ipv6Addr) -> Option<u32> {
        self.shard_for(addr).first_week_of(u128::from(addr))
    }

    /// Longest registered aliased prefix covering `addr`, if any.
    pub fn longest_alias(&self, addr: Ipv6Addr) -> Option<Prefix> {
        self.shard_for(addr).longest_alias(addr)
    }

    /// True when `addr` falls under a registered aliased prefix.
    pub fn is_aliased(&self, addr: Ipv6Addr) -> bool {
        self.longest_alias(addr).is_some()
    }

    /// Number of published addresses inside `prefix`.
    ///
    /// Prefixes of length >= 48 resolve within one shard; shorter ones
    /// sum the per-/48 aggregates across shards.
    pub fn count_within(&self, prefix: &Prefix) -> u64 {
        if prefix.len() >= 48 {
            let shard = &self.shards[prefix
                .shard48(self.shard_bits)
                .expect("len >= 48 is shard-local")];
            let lo = prefix.bits();
            let hi = u128::from(prefix.last());
            let start = shard.addrs.partition_point(|&a| a < lo);
            let end = shard.addrs.partition_point(|&a| a <= hi);
            (end - start) as u64
        } else {
            let lo = prefix.bits();
            let hi = u128::from(prefix.last());
            self.shards
                .iter()
                .map(|s| {
                    let start = s.agg48.partition_point(|&(net, _)| net < lo);
                    let end = s.agg48.partition_point(|&(net, _)| net <= hi);
                    s.agg48[start..end]
                        .iter()
                        .map(|&(_, n)| u64::from(n))
                        .sum::<u64>()
                })
                .sum()
        }
    }

    /// Number of addresses first published *after* study week `week` —
    /// the "what's new since the release I already hold" diff query.
    pub fn new_since(&self, week: u64) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let start = s
                    .week_counts
                    .partition_point(|&(w, _)| u64::from(w) <= week);
                s.week_counts[start..].iter().map(|&(_, n)| n).sum::<u64>()
            })
            .sum()
    }

    /// Recomputes every structural invariant and the content checksum.
    ///
    /// The store calls this before publishing; the load harness calls it
    /// on snapshots observed mid-run to prove concurrent publication
    /// never exposed a torn view.
    pub fn verify_integrity(&self) -> bool {
        if self.shards.len() != 1usize << self.shard_bits {
            return false;
        }
        if self.missing_shards.windows(2).any(|w| w[0] >= w[1])
            || self
                .missing_shards
                .iter()
                .any(|&i| i as usize >= self.shards.len())
        {
            return false;
        }
        let mut checksum = 0u64;
        let mut total = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.addrs.len() != shard.first_week.len() {
                return false;
            }
            if !shard.addrs.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            if shard
                .addrs
                .iter()
                .any(|&b| shard48(b, self.shard_bits) != i)
            {
                return false;
            }
            let agg_total: u64 = shard.agg48.iter().map(|&(_, n)| u64::from(n)).sum();
            let week_total: u64 = shard.week_counts.iter().map(|&(_, n)| n).sum();
            if agg_total != shard.addrs.len() as u64 || week_total != agg_total {
                return false;
            }
            for (&b, &w) in shard.addrs.iter().zip(&shard.first_week) {
                checksum = fold_addr(checksum, b, w);
            }
            total += shard.addrs.len() as u64;
        }
        checksum == self.checksum && total == self.total
    }
}

/// Accumulates addresses and aliases, then builds a [`Snapshot`].
///
/// Accepts unsorted input with duplicates; duplicates keep their earliest
/// week (re-publishing an address in a later weekly release must not move
/// its first-seen week).
pub struct SnapshotBuilder {
    name: String,
    shard_bits: u32,
    pending: Vec<(u128, u32)>,
    aliases: Vec<(Prefix, u32)>,
}

impl SnapshotBuilder {
    /// A builder for `shard_count` (power of two) shards.
    pub fn new(name: impl Into<String>, shard_count: usize) -> Self {
        assert!(
            shard_count.is_power_of_two(),
            "shard count must be a power of two, got {shard_count}"
        );
        SnapshotBuilder {
            name: name.into(),
            shard_bits: shard_count.trailing_zeros(),
            pending: Vec::new(),
            aliases: Vec::new(),
        }
    }

    /// Adds one address, first published in `week`.
    pub fn add_address(&mut self, addr: Ipv6Addr, week: u32) {
        self.pending.push((u128::from(addr), week));
    }

    /// Adds raw address bits, first published in `week`.
    pub fn add_bits(&mut self, bits: u128, week: u32) {
        self.pending.push((bits, week));
    }

    /// Adds a whole weekly release.
    pub fn add_week(&mut self, week: u32, addresses: &[Ipv6Addr]) {
        self.pending
            .extend(addresses.iter().map(|&a| (u128::from(a), week)));
    }

    /// Registers an aliased prefix (seen from `week` on).
    pub fn add_alias(&mut self, prefix: Prefix, week: u32) {
        self.aliases.push((prefix, week));
    }

    /// Re-adds everything from an existing snapshot (incremental rebuild).
    pub fn merge_snapshot(&mut self, snap: &Snapshot) {
        for shard in &snap.shards {
            self.pending.extend(
                shard
                    .addrs
                    .iter()
                    .copied()
                    .zip(shard.first_week.iter().copied()),
            );
            for (prefix, &week) in shard.aliases.iter() {
                self.aliases.push((prefix, week));
            }
        }
    }

    /// Builds the snapshot (epoch 0 until published through a store).
    pub fn build(self) -> Snapshot {
        self.build_counting().0
    }

    /// Builds the snapshot, also returning how many duplicate address
    /// submissions were coalesced.
    pub fn build_counting(mut self) -> (Snapshot, u64) {
        // Sorting by (bits, week) makes the earliest week the first entry
        // of each equal-bits run, so dedup-keep-first is dedup-keep-min.
        self.pending.sort_unstable();
        let before = self.pending.len();
        self.pending.dedup_by_key(|&mut (b, _)| b);
        let duplicates = (before - self.pending.len()) as u64;

        let mut shard_data: Vec<Vec<(u128, u32)>> = vec![Vec::new(); 1usize << self.shard_bits];
        for &(b, w) in &self.pending {
            shard_data[shard48(b, self.shard_bits)].push((b, w));
        }
        self.aliases
            .sort_unstable_by_key(|&(p, w)| (p.bits(), p.len(), w));
        self.aliases.dedup_by_key(|&mut (p, _)| p);
        let snap =
            Snapshot::from_sorted_parts(self.name, self.shard_bits, &shard_data, &self.aliases);
        (snap, duplicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample() -> Snapshot {
        let mut b = SnapshotBuilder::new("test", 4);
        b.add_week(
            0,
            &[
                addr("2001:db8:1::1"),
                addr("2001:db8:1::2"),
                addr("2001:db8:2::1"),
            ],
        );
        b.add_week(2, &[addr("2001:db8:3::1"), addr("2001:db8:1::1")]);
        b.add_alias(pfx("2001:db8:2::/48"), 0);
        b.build()
    }

    #[test]
    fn membership_and_first_week() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert!(s.contains(addr("2001:db8:1::1")));
        assert!(!s.contains(addr("2001:db8:9::1")));
        // Duplicate re-publication in week 2 keeps the week-0 first-seen.
        assert_eq!(s.first_week(addr("2001:db8:1::1")), Some(0));
        assert_eq!(s.first_week(addr("2001:db8:3::1")), Some(2));
        assert_eq!(s.first_week(addr("2001:db8:9::1")), None);
        assert_eq!(s.week(), 2);
    }

    #[test]
    fn alias_lookup_is_longest_match() {
        let mut b = SnapshotBuilder::new("test", 4);
        b.add_address(addr("2001:db8:2::1"), 0);
        b.add_alias(pfx("2001:db8::/32"), 0);
        b.add_alias(pfx("2001:db8:2::/48"), 1);
        let s = b.build();
        assert_eq!(
            s.longest_alias(addr("2001:db8:2::1")),
            Some(pfx("2001:db8:2::/48"))
        );
        assert_eq!(
            s.longest_alias(addr("2001:db8:7::1")),
            Some(pfx("2001:db8::/32"))
        );
        assert!(s.is_aliased(addr("2001:db8:ffff::1")));
        assert!(!s.is_aliased(addr("2001:db9::1")));
    }

    #[test]
    fn counts_and_diffs() {
        let s = sample();
        assert_eq!(s.count_within(&pfx("2001:db8:1::/48")), 2);
        assert_eq!(s.count_within(&pfx("2001:db8::/32")), 4);
        assert_eq!(s.count_within(&pfx("2001:db8:1::/64")), 2);
        assert_eq!(s.count_within(&pfx("2001:db9::/32")), 0);
        assert_eq!(s.new_since(0), 1); // only 2001:db8:3::1 is newer
        assert_eq!(s.new_since(2), 0);
    }

    #[test]
    fn integrity_detects_corruption() {
        let s = sample();
        assert!(s.verify_integrity());
        let mut broken = s.clone();
        let shard = broken.shards.iter_mut().find(|sh| !sh.is_empty()).unwrap();
        shard.first_week[0] ^= 1;
        assert!(!broken.verify_integrity());

        let mut broken = s;
        broken.total += 1;
        assert!(!broken.verify_integrity());
    }

    #[test]
    fn shard_counts_agree() {
        for shard_count in [1usize, 4, 16] {
            let mut b = SnapshotBuilder::new("test", shard_count);
            for i in 0..200u32 {
                b.add_address(addr(&format!("2001:db8:{:x}::{:x}", i % 23, i)), i % 5);
            }
            let s = b.build();
            assert_eq!(s.shard_count(), shard_count);
            assert_eq!(s.len(), 200);
            assert!(s.verify_integrity());
            let per_shard: u64 = s.shards().iter().map(|sh| sh.len() as u64).sum();
            assert_eq!(per_shard, 200);
        }
    }
}
