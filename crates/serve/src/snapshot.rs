//! Immutable, sharded snapshots of one hitlist publication epoch.
//!
//! A [`Snapshot`] is the unit of publication: once built it is never
//! mutated, so any number of reader threads can query it without
//! synchronization while the ingestion pipeline assembles the next epoch.
//!
//! Addresses are partitioned into `2^shard_bits` [`Shard`]s keyed by the
//! *low* bits of each address's /48 prefix ([`v6addr::shard48`]): the high
//! bits would skew badly (announced space concentrates under `2000::/3`),
//! and keeping whole /48s shard-local makes per-/48 density aggregates a
//! single-shard operation.
//!
//! Each shard stores its addresses as a [`CompressedRun`] — a
//! prefix-compressed sorted run that factors out the shared high-64 bits
//! real hitlists cluster under ("Clusters in the Expanse", IMC 2018) —
//! with a parallel first-published-week vector, an optional blocked
//! bloom front ([`crate::bloom::BlockedBloom`], the `V6_BLOOM` toggle)
//! for cheap "definitely absent" answers, plus a radix trie of aliased
//! prefixes for longest-prefix alias answers.

use std::net::Ipv6Addr;

use v6addr::{shard48, Prefix, PrefixMap};

use crate::bloom::BlockedBloom;

/// A prefix-compressed sorted run of address bits.
///
/// The sorted `u128` addresses are factored into a sorted array of
/// *distinct* high-64 `keys`, each pointing (via `offsets`) at a dense
/// sorted block of low-64 `lows`. The address at global rank `i` is
/// `(keys[k] as u128) << 64 | lows[i]` where `k` is the block containing
/// `i`. Because hitlist addresses cluster under long shared /48–/64
/// prefixes, many addresses share one key, cutting the 16 bytes/address
/// of a raw `Vec<u128>` to 8 bytes plus an amortized per-key overhead.
///
/// Membership is a two-level binary search: first over `keys`, then
/// inside one dense `lows` block — better cache locality than one wide
/// search over 16-byte elements. Ranks returned by the search methods
/// index the *global* run (and any parallel vector such as a shard's
/// first-week column) exactly as indices into the old sorted vector did.
#[derive(Debug, Clone)]
pub struct CompressedRun {
    /// Distinct high-64 address bits, strictly ascending.
    keys: Vec<u64>,
    /// `keys.len() + 1` block boundaries into `lows`; `offsets[k]..offsets[k+1]`
    /// is key `k`'s block. `u32` caps one run at ~4.3B addresses, which the
    /// sharding keeps comfortably out of reach even at paper scale.
    offsets: Vec<u32>,
    /// Low-64 address bits, strictly ascending within each block.
    lows: Vec<u64>,
}

// Not derived: an empty run still needs the leading `0` offset sentinel
// (`offsets.len() == keys.len() + 1` always holds).
impl Default for CompressedRun {
    fn default() -> Self {
        CompressedRun {
            keys: Vec::new(),
            offsets: vec![0],
            lows: Vec::new(),
        }
    }
}

impl CompressedRun {
    /// Builds from strictly-ascending address bits.
    pub fn from_sorted(bits: impl Iterator<Item = u128>) -> CompressedRun {
        let mut run = CompressedRun::default();
        for b in bits {
            run.push(b);
        }
        run
    }

    /// Appends one address; must be strictly greater than the last.
    pub(crate) fn push(&mut self, bits: u128) {
        let hi = (bits >> 64) as u64;
        let lo = bits as u64;
        debug_assert!(
            self.lows.is_empty() || self.get(self.lows.len() - 1) < bits,
            "CompressedRun::push requires strictly ascending input"
        );
        if self.keys.last() != Some(&hi) {
            self.keys.push(hi);
            self.offsets.push(self.lows.len() as u32);
        }
        self.lows.push(lo);
        assert!(
            self.lows.len() <= u32::MAX as usize,
            "CompressedRun exceeds u32 offset capacity"
        );
        *self.offsets.last_mut().expect("offsets never empty") = self.lows.len() as u32;
    }

    /// Number of addresses in the run.
    pub fn len(&self) -> usize {
        self.lows.len()
    }

    /// True when the run holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.lows.is_empty()
    }

    /// Number of distinct high-64 keys (compression granularity).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// The address at global rank `i` (ascending order).
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> u128 {
        let lo = self.lows[i];
        let k = self
            .offsets
            .partition_point(|&o| o as usize <= i)
            .saturating_sub(1);
        (u128::from(self.keys[k]) << 64) | u128::from(lo)
    }

    /// Iterates all addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u128> + '_ {
        self.keys.iter().enumerate().flat_map(move |(k, &hi)| {
            let block = &self.lows[self.offsets[k] as usize..self.offsets[k + 1] as usize];
            block
                .iter()
                .map(move |&lo| (u128::from(hi) << 64) | u128::from(lo))
        })
    }

    /// Global rank of `bits` when present: two-level binary search.
    pub fn rank(&self, bits: u128) -> Option<usize> {
        let hi = (bits >> 64) as u64;
        let lo = bits as u64;
        let k = self.keys.binary_search(&hi).ok()?;
        let base = self.offsets[k] as usize;
        let block = &self.lows[base..self.offsets[k + 1] as usize];
        block.binary_search(&lo).ok().map(|i| base + i)
    }

    /// Number of addresses strictly below `bits` (global partition point).
    pub fn rank_lower(&self, bits: u128) -> usize {
        self.rank_bound(bits, false)
    }

    /// Number of addresses at or below `bits`.
    pub fn rank_upper(&self, bits: u128) -> usize {
        self.rank_bound(bits, true)
    }

    fn rank_bound(&self, bits: u128, inclusive: bool) -> usize {
        let hi = (bits >> 64) as u64;
        let lo = bits as u64;
        match self.keys.binary_search(&hi) {
            Ok(k) => {
                let base = self.offsets[k] as usize;
                let block = &self.lows[base..self.offsets[k + 1] as usize];
                let within = if inclusive {
                    block.partition_point(|&l| l <= lo)
                } else {
                    block.partition_point(|&l| l < lo)
                };
                base + within
            }
            // All blocks for keys < hi lie entirely below `bits`.
            Err(k) => self.offsets[k] as usize,
        }
    }

    /// Heap bytes of the compressed representation.
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * 8 + self.offsets.len() * 4 + self.lows.len() * 8
    }

    /// Structural invariants: strictly ascending keys, monotone offsets
    /// bracketing `lows`, strictly ascending lows within each block.
    fn check_invariants(&self) -> bool {
        if self.offsets.len() != self.keys.len() + 1
            || self.offsets.first() != Some(&0)
            || self.offsets.last().copied() != Some(self.lows.len() as u32)
        {
            return false;
        }
        if !self.keys.windows(2).all(|w| w[0] < w[1]) {
            return false;
        }
        // Offsets strictly increase (no empty blocks), lows strictly
        // increase inside each block.
        self.offsets.windows(2).all(|w| {
            w[0] < w[1]
                && self.lows[w[0] as usize..w[1] as usize]
                    .windows(2)
                    .all(|l| l[0] < l[1])
        })
    }
}

/// What a bloom-fronted membership probe observed — enough for the
/// query layer to answer *and* account `serve.bloom.*` traffic without
/// re-deriving anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// The bloom front answered "definitely absent"; the exact tier was
    /// never consulted (`serve.bloom.hit`).
    BloomFiltered,
    /// The exact tier confirmed the address, at the given global rank in
    /// its shard. `bloom_checked` is true when a bloom front passed the
    /// probe through first (`serve.bloom.miss`).
    Present {
        /// Global rank inside the shard's run (indexes `first_week`).
        rank: usize,
        /// True when a bloom front was consulted before the exact tier.
        bloom_checked: bool,
    },
    /// The exact tier did not find the address. `bloom_checked` true
    /// means the bloom front let an absent address through — a false
    /// positive (`serve.bloom.false_positive`).
    Absent {
        /// True when a bloom front was consulted before the exact tier.
        bloom_checked: bool,
    },
}

impl Membership {
    /// Whether the probed address is in the hitlist.
    pub fn is_present(&self) -> bool {
        matches!(self, Membership::Present { .. })
    }
}

/// One partition of a snapshot: the addresses whose /48 low bits select it.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    /// Prefix-compressed sorted, deduplicated address bits.
    pub(crate) run: CompressedRun,
    /// Parallel to the run's global ranks: study week each address was
    /// first published.
    pub(crate) first_week: Vec<u32>,
    /// Optional approximate-membership front over the run.
    pub(crate) bloom: Option<BlockedBloom>,
    /// Aliased prefixes relevant to this shard (week registered as value).
    pub(crate) aliases: PrefixMap<u32>,
    /// `(network bits, count)` per distinct /48, ascending.
    pub(crate) agg48: Vec<(u128, u32)>,
    /// `(week, newly published count)` pairs, ascending by week.
    pub(crate) week_counts: Vec<(u32, u64)>,
}

impl Shard {
    /// Number of addresses in this shard.
    pub fn len(&self) -> usize {
        self.run.len()
    }

    /// True when the shard holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// The compressed address run.
    pub fn run(&self) -> &CompressedRun {
        &self.run
    }

    /// Iterates the sorted address bits.
    pub fn iter_bits(&self) -> impl Iterator<Item = u128> + '_ {
        self.run.iter()
    }

    /// The address bits at global rank `i` (ascending order).
    pub fn get_bits(&self, i: usize) -> u128 {
        self.run.get(i)
    }

    /// Exact membership of an address (by bits), bypassing any bloom front.
    pub fn contains_bits(&self, bits: u128) -> bool {
        self.run.rank(bits).is_some()
    }

    /// Bloom-fronted membership probe: consults the approximate front
    /// first when one was built, then the exact tier only if needed.
    pub fn membership_bits(&self, bits: u128) -> Membership {
        let bloom_checked = match &self.bloom {
            Some(bloom) => {
                if !bloom.may_contain(bits) {
                    return Membership::BloomFiltered;
                }
                true
            }
            None => false,
        };
        match self.run.rank(bits) {
            Some(rank) => Membership::Present {
                rank,
                bloom_checked,
            },
            None => Membership::Absent { bloom_checked },
        }
    }

    /// The week an address was first published, if present.
    pub fn first_week_of(&self, bits: u128) -> Option<u32> {
        self.run.rank(bits).map(|i| self.first_week[i])
    }

    /// First-published week at a global rank (as returned by
    /// [`Membership::Present`] or [`CompressedRun::rank`]).
    ///
    /// # Panics
    /// Panics when `rank >= len()`.
    pub fn first_week_at(&self, rank: usize) -> u32 {
        self.first_week[rank]
    }

    /// Longest aliased prefix covering `addr`, if any.
    pub fn longest_alias(&self, addr: Ipv6Addr) -> Option<Prefix> {
        self.aliases.longest_match(addr).map(|(p, _)| p)
    }

    /// Addresses published in this shard's /48 with the given network bits.
    pub fn count48(&self, net48: u128) -> u64 {
        self.agg48
            .binary_search_by_key(&net48, |&(net, _)| net)
            .map(|i| u64::from(self.agg48[i].1))
            .unwrap_or(0)
    }

    /// Heap bytes of the address columns as stored (compressed run +
    /// first-week column + bloom front if built).
    pub fn stored_bytes(&self) -> usize {
        self.run.heap_bytes()
            + self.first_week.len() * 4
            + self.bloom.as_ref().map_or(0, |b| b.heap_bytes())
    }

    /// Heap bytes the old raw representation would need for the same
    /// content: a `Vec<u128>` plus the `Vec<u32>` week column.
    pub fn raw_bytes(&self) -> usize {
        self.run.len() * (16 + 4)
    }

    fn rebuild_aggregates(&mut self) {
        let mask48 = Prefix::mask(48);
        self.agg48.clear();
        for a in self.run.iter() {
            let net = a & mask48;
            match self.agg48.last_mut() {
                Some((last, n)) if *last == net => *n += 1,
                _ => self.agg48.push((net, 1)),
            }
        }
        let mut weeks: Vec<u32> = self.first_week.clone();
        weeks.sort_unstable();
        self.week_counts.clear();
        for w in weeks {
            match self.week_counts.last_mut() {
                Some((last, n)) if *last == w => *n += 1,
                _ => self.week_counts.push((w, 1)),
            }
        }
    }
}

/// Health of a published epoch, as surfaced to readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeStatus {
    /// Every shard reflects all ingested updates.
    Ok,
    /// Some shards are quarantined: their content is the last good
    /// merge, not the latest updates. Readers still get answers — they
    /// are just possibly stale for addresses in these shards.
    Degraded {
        /// Shard indices whose latest updates are held in quarantine.
        missing_shards: Vec<u32>,
    },
}

/// An immutable view of one publication epoch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) name: String,
    pub(crate) epoch: u64,
    pub(crate) week: u64,
    pub(crate) shard_bits: u32,
    pub(crate) shards: Vec<Shard>,
    pub(crate) total: u64,
    pub(crate) checksum: u64,
    /// Sorted indices of shards serving stale (pre-quarantine) content.
    pub(crate) missing_shards: Vec<u32>,
}

/// Order-independent content checksum over `(bits, week)` pairs.
///
/// The canonical definition lives in [`v6stream::fold_content`] — the
/// streaming analytics layer maintains this exact sum incrementally
/// (`± content_term` per delta entry) and uses it to verify each
/// [`v6store::DeltaRecord`] against its corpus mirror. Changing the
/// fold changes the wire/disk-visible `content_checksum` everywhere.
#[inline]
fn fold_addr(acc: u64, bits: u128, week: u32) -> u64 {
    v6stream::fold_content(acc, bits, week)
}

/// Whether snapshots should build a bloom front by default: the
/// `V6_BLOOM` environment toggle (`1`/`true` enable). Builders can
/// override explicitly so tests never race on the environment.
pub(crate) fn bloom_default() -> bool {
    matches!(
        std::env::var("V6_BLOOM").as_deref(),
        Ok("1") | Ok("true") | Ok("TRUE")
    )
}

/// Per-shard bloom seed: fixed base mixed with the shard index so equal
/// content always builds an identical filter.
fn bloom_seed(shard_index: usize) -> u64 {
    0x06b1_00f1_17e5_5eed_u64 ^ ((shard_index as u64) << 32)
}

impl Snapshot {
    /// An empty snapshot (epoch 0) with `shard_count` shards.
    ///
    /// # Panics
    /// Panics unless `shard_count` is a power of two.
    pub fn empty(name: impl Into<String>, shard_count: usize) -> Self {
        assert!(
            shard_count.is_power_of_two(),
            "shard count must be a power of two, got {shard_count}"
        );
        let shard_bits = shard_count.trailing_zeros();
        Snapshot {
            name: name.into(),
            epoch: 0,
            week: 0,
            shard_bits,
            shards: vec![Shard::default(); shard_count],
            total: 0,
            checksum: 0,
            missing_shards: Vec::new(),
        }
    }

    /// Builds from per-shard `(bits, week)` vectors that are already
    /// sorted by bits and deduplicated, plus `(prefix, week)` alias
    /// registrations. This is the O(n) path the ingestion merger uses;
    /// the compressed run is assembled directly from the sorted stream,
    /// never materializing a raw `Vec<u128>`. `bloom` controls whether
    /// each shard gets an approximate-membership front.
    pub(crate) fn from_sorted_parts(
        name: impl Into<String>,
        shard_bits: u32,
        shard_data: &[Vec<(u128, u32)>],
        aliases: &[(Prefix, u32)],
        bloom: bool,
    ) -> Self {
        assert_eq!(shard_data.len(), 1usize << shard_bits);
        let mut snap = Snapshot::empty(name, 1usize << shard_bits);
        let mut checksum = 0u64;
        let mut total = 0u64;
        let mut max_week = 0u64;
        for (i, (shard, data)) in snap.shards.iter_mut().zip(shard_data).enumerate() {
            debug_assert!(data.windows(2).all(|w| w[0].0 < w[1].0));
            shard.first_week = Vec::with_capacity(data.len());
            for &(b, w) in data {
                shard.run.push(b);
                shard.first_week.push(w);
                checksum = fold_addr(checksum, b, w);
                max_week = max_week.max(u64::from(w));
            }
            if bloom && !data.is_empty() {
                shard.bloom = Some(BlockedBloom::build(
                    bloom_seed(i),
                    data.iter().map(|&(b, _)| b),
                    data.len(),
                ));
            }
            total += data.len() as u64;
            shard.rebuild_aggregates();
        }
        for &(prefix, week) in aliases {
            match prefix.shard48(shard_bits) {
                Some(i) => {
                    snap.shards[i].aliases.insert(prefix, week);
                }
                None => {
                    for shard in &mut snap.shards {
                        shard.aliases.insert(prefix, week);
                    }
                }
            }
        }
        snap.total = total;
        snap.week = max_week;
        snap.checksum = checksum;
        snap
    }

    /// Service name this snapshot was published under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publication sequence number (0 = never published).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Latest study week included.
    pub fn week(&self) -> u64 {
        self.week
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total addresses across all shards.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no addresses are published.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The order-independent content checksum over `(bits, week)` pairs.
    ///
    /// Two snapshots with the same addresses and first-seen weeks have
    /// the same checksum regardless of how they were assembled — the
    /// equality the chaos suite uses to prove quarantine recovery
    /// restored the full content. The checksum is a function of content
    /// only: compressed and raw representations of the same set fold to
    /// the same value.
    pub fn content_checksum(&self) -> u64 {
        self.checksum
    }

    /// This epoch's health: `Ok`, or `Degraded` listing stale shards.
    pub fn status(&self) -> ServeStatus {
        if self.missing_shards.is_empty() {
            ServeStatus::Ok
        } else {
            ServeStatus::Degraded {
                missing_shards: self.missing_shards.clone(),
            }
        }
    }

    /// True when any shard is serving stale (quarantined) content.
    pub fn is_degraded(&self) -> bool {
        !self.missing_shards.is_empty()
    }

    /// Sorted indices of shards serving stale content.
    pub fn missing_shards(&self) -> &[u32] {
        &self.missing_shards
    }

    /// True when `addr` falls in a shard serving stale content.
    pub fn shard_missing(&self, addr: Ipv6Addr) -> bool {
        let i = shard48(u128::from(addr), self.shard_bits) as u32;
        self.missing_shards.binary_search(&i).is_ok()
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard an address belongs to.
    pub fn shard_for(&self, addr: Ipv6Addr) -> &Shard {
        &self.shards[shard48(u128::from(addr), self.shard_bits)]
    }

    /// Exact membership.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.shard_for(addr).contains_bits(u128::from(addr))
    }

    /// Bloom-fronted membership probe (see [`Membership`]); answers are
    /// identical to [`Snapshot::contains`], the variants additionally
    /// carry what the approximate front observed.
    pub fn membership(&self, addr: Ipv6Addr) -> Membership {
        self.shard_for(addr).membership_bits(u128::from(addr))
    }

    /// True when any shard carries a bloom front.
    pub fn has_bloom(&self) -> bool {
        self.shards.iter().any(|s| s.bloom.is_some())
    }

    /// Heap bytes of the address columns as stored across all shards
    /// (compressed runs + week columns + bloom fronts).
    pub fn stored_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.stored_bytes() as u64).sum()
    }

    /// Heap bytes the raw (uncompressed) representation would need.
    pub fn raw_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.raw_bytes() as u64).sum()
    }

    /// The week `addr` was first published, if it is in the hitlist.
    pub fn first_week(&self, addr: Ipv6Addr) -> Option<u32> {
        self.shard_for(addr).first_week_of(u128::from(addr))
    }

    /// Longest registered aliased prefix covering `addr`, if any.
    pub fn longest_alias(&self, addr: Ipv6Addr) -> Option<Prefix> {
        self.shard_for(addr).longest_alias(addr)
    }

    /// True when `addr` falls under a registered aliased prefix.
    pub fn is_aliased(&self, addr: Ipv6Addr) -> bool {
        self.longest_alias(addr).is_some()
    }

    /// Number of published addresses inside `prefix`.
    ///
    /// Prefixes of length >= 48 resolve within one shard; shorter ones
    /// sum the per-/48 aggregates across shards.
    pub fn count_within(&self, prefix: &Prefix) -> u64 {
        if prefix.len() >= 48 {
            let shard = &self.shards[prefix
                .shard48(self.shard_bits)
                .expect("len >= 48 is shard-local")];
            let lo = prefix.bits();
            let hi = u128::from(prefix.last());
            (shard.run.rank_upper(hi) - shard.run.rank_lower(lo)) as u64
        } else {
            let lo = prefix.bits();
            let hi = u128::from(prefix.last());
            self.shards
                .iter()
                .map(|s| {
                    let start = s.agg48.partition_point(|&(net, _)| net < lo);
                    let end = s.agg48.partition_point(|&(net, _)| net <= hi);
                    s.agg48[start..end]
                        .iter()
                        .map(|&(_, n)| u64::from(n))
                        .sum::<u64>()
                })
                .sum()
        }
    }

    /// Number of addresses first published *after* study week `week` —
    /// the "what's new since the release I already hold" diff query.
    pub fn new_since(&self, week: u64) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let start = s
                    .week_counts
                    .partition_point(|&(w, _)| u64::from(w) <= week);
                s.week_counts[start..].iter().map(|&(_, n)| n).sum::<u64>()
            })
            .sum()
    }

    /// Recomputes every structural invariant and the content checksum.
    ///
    /// The store calls this before publishing; the load harness calls it
    /// on snapshots observed mid-run to prove concurrent publication
    /// never exposed a torn view.
    pub fn verify_integrity(&self) -> bool {
        if self.shards.len() != 1usize << self.shard_bits {
            return false;
        }
        if self.missing_shards.windows(2).any(|w| w[0] >= w[1])
            || self
                .missing_shards
                .iter()
                .any(|&i| i as usize >= self.shards.len())
        {
            return false;
        }
        let mut checksum = 0u64;
        let mut total = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            if !shard.run.check_invariants() {
                return false;
            }
            if shard.run.len() != shard.first_week.len() {
                return false;
            }
            let agg_total: u64 = shard.agg48.iter().map(|&(_, n)| u64::from(n)).sum();
            let week_total: u64 = shard.week_counts.iter().map(|&(_, n)| n).sum();
            if agg_total != shard.run.len() as u64 || week_total != agg_total {
                return false;
            }
            for (b, &w) in shard.run.iter().zip(&shard.first_week) {
                if shard48(b, self.shard_bits) != i {
                    return false;
                }
                // A bloom front must never produce a false negative.
                if let Some(bloom) = &shard.bloom {
                    if !bloom.may_contain(b) {
                        return false;
                    }
                }
                checksum = fold_addr(checksum, b, w);
            }
            total += shard.run.len() as u64;
        }
        checksum == self.checksum && total == self.total
    }
}

/// Accumulates addresses and aliases, then builds a [`Snapshot`].
///
/// Accepts unsorted input with duplicates; duplicates keep their earliest
/// week (re-publishing an address in a later weekly release must not move
/// its first-seen week).
pub struct SnapshotBuilder {
    name: String,
    shard_bits: u32,
    pending: Vec<(u128, u32)>,
    aliases: Vec<(Prefix, u32)>,
    bloom: Option<bool>,
    quarantined: Vec<u32>,
}

impl SnapshotBuilder {
    /// A builder for `shard_count` (power of two) shards.
    pub fn new(name: impl Into<String>, shard_count: usize) -> Self {
        assert!(
            shard_count.is_power_of_two(),
            "shard count must be a power of two, got {shard_count}"
        );
        SnapshotBuilder {
            name: name.into(),
            shard_bits: shard_count.trailing_zeros(),
            pending: Vec::new(),
            aliases: Vec::new(),
            bloom: None,
            quarantined: Vec::new(),
        }
    }

    /// Marks shards as quarantined in the built snapshot, yielding a
    /// `Degraded` status exactly as the ingest quarantine path does.
    /// Tests (and the wire front door's degraded-labeling suite) use
    /// this to build degraded epochs without staging an ingest failure.
    ///
    /// # Panics
    /// Panics if a shard index is out of range or the list is not
    /// strictly increasing.
    pub fn with_quarantined(mut self, shards: Vec<u32>) -> Self {
        let count = 1u32 << self.shard_bits;
        assert!(
            shards.windows(2).all(|w| w[0] < w[1]),
            "quarantined shard list must be strictly increasing"
        );
        assert!(
            shards.iter().all(|&s| s < count),
            "quarantined shard index out of range (shard count {count})"
        );
        self.quarantined = shards;
        self
    }

    /// Overrides the bloom-front decision for this build. Without an
    /// override the `V6_BLOOM` environment toggle decides (read once at
    /// build time); tests pin behavior here instead of mutating the
    /// environment.
    pub fn with_bloom(mut self, bloom: bool) -> Self {
        self.bloom = Some(bloom);
        self
    }

    /// Adds one address, first published in `week`.
    pub fn add_address(&mut self, addr: Ipv6Addr, week: u32) {
        self.pending.push((u128::from(addr), week));
    }

    /// Adds raw address bits, first published in `week`.
    pub fn add_bits(&mut self, bits: u128, week: u32) {
        self.pending.push((bits, week));
    }

    /// Adds a whole weekly release.
    pub fn add_week(&mut self, week: u32, addresses: &[Ipv6Addr]) {
        self.pending
            .extend(addresses.iter().map(|&a| (u128::from(a), week)));
    }

    /// Registers an aliased prefix (seen from `week` on).
    pub fn add_alias(&mut self, prefix: Prefix, week: u32) {
        self.aliases.push((prefix, week));
    }

    /// Re-adds everything from an existing snapshot (incremental rebuild).
    pub fn merge_snapshot(&mut self, snap: &Snapshot) {
        for shard in &snap.shards {
            self.pending
                .extend(shard.iter_bits().zip(shard.first_week.iter().copied()));
            for (prefix, &week) in shard.aliases.iter() {
                self.aliases.push((prefix, week));
            }
        }
    }

    /// Builds the snapshot (epoch 0 until published through a store).
    pub fn build(self) -> Snapshot {
        self.build_counting().0
    }

    /// Builds the snapshot, also returning how many duplicate address
    /// submissions were coalesced.
    pub fn build_counting(mut self) -> (Snapshot, u64) {
        // Radix-sorting by (bits, week) makes the earliest week the first
        // entry of each equal-bits run, so dedup-keep-first is
        // dedup-keep-min. The radix kernel is exact-equivalent to
        // `sort_unstable` for these integer pairs.
        v6par::radix_sort_by_key(&mut self.pending, |&(b, w)| (b, u64::from(w)));
        let before = self.pending.len();
        self.pending.dedup_by_key(|&mut (b, _)| b);
        let duplicates = (before - self.pending.len()) as u64;

        let mut shard_data: Vec<Vec<(u128, u32)>> = vec![Vec::new(); 1usize << self.shard_bits];
        for &(b, w) in &self.pending {
            shard_data[shard48(b, self.shard_bits)].push((b, w));
        }
        self.aliases
            .sort_unstable_by_key(|&(p, w)| (p.bits(), p.len(), w));
        self.aliases.dedup_by_key(|&mut (p, _)| p);
        let mut snap = Snapshot::from_sorted_parts(
            self.name,
            self.shard_bits,
            &shard_data,
            &self.aliases,
            self.bloom.unwrap_or_else(bloom_default),
        );
        snap.missing_shards = self.quarantined;
        (snap, duplicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample() -> Snapshot {
        let mut b = SnapshotBuilder::new("test", 4);
        b.add_week(
            0,
            &[
                addr("2001:db8:1::1"),
                addr("2001:db8:1::2"),
                addr("2001:db8:2::1"),
            ],
        );
        b.add_week(2, &[addr("2001:db8:3::1"), addr("2001:db8:1::1")]);
        b.add_alias(pfx("2001:db8:2::/48"), 0);
        b.build()
    }

    #[test]
    fn membership_and_first_week() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert!(s.contains(addr("2001:db8:1::1")));
        assert!(!s.contains(addr("2001:db8:9::1")));
        // Duplicate re-publication in week 2 keeps the week-0 first-seen.
        assert_eq!(s.first_week(addr("2001:db8:1::1")), Some(0));
        assert_eq!(s.first_week(addr("2001:db8:3::1")), Some(2));
        assert_eq!(s.first_week(addr("2001:db8:9::1")), None);
        assert_eq!(s.week(), 2);
    }

    #[test]
    fn compressed_run_round_trips_and_ranks() {
        let bits: Vec<u128> = vec![
            (1u128 << 64) | 5,
            (1u128 << 64) | 9,
            (2u128 << 64),
            (2u128 << 64) | u128::from(u64::MAX),
            (7u128 << 64) | 3,
        ];
        let run = CompressedRun::from_sorted(bits.iter().copied());
        assert_eq!(run.len(), 5);
        assert_eq!(run.key_count(), 3);
        assert_eq!(run.iter().collect::<Vec<_>>(), bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(run.get(i), b);
            assert_eq!(run.rank(b), Some(i));
            assert_eq!(run.rank_lower(b), i);
            assert_eq!(run.rank_upper(b), i + 1);
        }
        assert_eq!(run.rank((1u128 << 64) | 6), None);
        assert_eq!(run.rank_lower(1u128 << 64), 0);
        assert_eq!(run.rank_lower(3u128 << 64), 4);
        assert_eq!(run.rank_upper(u128::MAX), 5);
        // 5 lows × 8 + 3 keys × 8 + 4 offsets × 4 = 80: even this barely
        // clustered run (1.7 addrs/key) matches 5 × 16 raw; real
        // clustering wins outright (see stored_bytes_beat_raw_* below).
        assert_eq!(run.heap_bytes(), bits.len() * 16);
    }

    #[test]
    fn bloom_front_preserves_answers_and_accounts_probes() {
        let mut b = SnapshotBuilder::new("test", 4).with_bloom(true);
        for i in 0..500u32 {
            b.add_address(addr(&format!("2001:db8:{:x}::{:x}", i % 7, i)), i % 3);
        }
        let s = b.build();
        assert!(s.has_bloom());
        assert!(s.verify_integrity());
        // Present addresses are found at their first-week rank.
        let probe = addr("2001:db8:1::1");
        assert!(matches!(
            s.membership(probe),
            Membership::Present {
                bloom_checked: true,
                ..
            }
        ));
        // Absent probes are either bloom-filtered or confirmed absent —
        // never reported present.
        for i in 1000..1200u32 {
            let a = addr(&format!("2001:db8:{:x}::dead:{:x}", i % 7, i));
            assert!(!s.membership(a).is_present());
            assert!(!s.contains(a));
        }
        // Same content without the front: identical checksum and answers.
        let mut b2 = SnapshotBuilder::new("test", 4).with_bloom(false);
        for i in 0..500u32 {
            b2.add_address(addr(&format!("2001:db8:{:x}::{:x}", i % 7, i)), i % 3);
        }
        let s2 = b2.build();
        assert!(!s2.has_bloom());
        assert_eq!(s.content_checksum(), s2.content_checksum());
        assert_eq!(
            s2.membership(probe),
            Membership::Present {
                rank: match s2.shard_for(probe).run().rank(u128::from(probe)) {
                    Some(r) => r,
                    None => unreachable!(),
                },
                bloom_checked: false,
            }
        );
    }

    #[test]
    fn alias_lookup_is_longest_match() {
        let mut b = SnapshotBuilder::new("test", 4);
        b.add_address(addr("2001:db8:2::1"), 0);
        b.add_alias(pfx("2001:db8::/32"), 0);
        b.add_alias(pfx("2001:db8:2::/48"), 1);
        let s = b.build();
        assert_eq!(
            s.longest_alias(addr("2001:db8:2::1")),
            Some(pfx("2001:db8:2::/48"))
        );
        assert_eq!(
            s.longest_alias(addr("2001:db8:7::1")),
            Some(pfx("2001:db8::/32"))
        );
        assert!(s.is_aliased(addr("2001:db8:ffff::1")));
        assert!(!s.is_aliased(addr("2001:db9::1")));
    }

    #[test]
    fn counts_and_diffs() {
        let s = sample();
        assert_eq!(s.count_within(&pfx("2001:db8:1::/48")), 2);
        assert_eq!(s.count_within(&pfx("2001:db8::/32")), 4);
        assert_eq!(s.count_within(&pfx("2001:db8:1::/64")), 2);
        assert_eq!(s.count_within(&pfx("2001:db9::/32")), 0);
        assert_eq!(s.new_since(0), 1); // only 2001:db8:3::1 is newer
        assert_eq!(s.new_since(2), 0);
    }

    #[test]
    fn integrity_detects_corruption() {
        let s = sample();
        assert!(s.verify_integrity());
        let mut broken = s.clone();
        let shard = broken.shards.iter_mut().find(|sh| !sh.is_empty()).unwrap();
        shard.first_week[0] ^= 1;
        assert!(!broken.verify_integrity());

        let mut broken = s;
        broken.total += 1;
        assert!(!broken.verify_integrity());
    }

    #[test]
    fn stored_bytes_beat_raw_on_clustered_content() {
        let mut b = SnapshotBuilder::new("test", 4).with_bloom(false);
        // 32 /64s × 512 structured IIDs: the clustering real hitlists show.
        for net in 0..32u32 {
            for iid in 0..512u32 {
                b.add_address(addr(&format!("2001:db8:{net:x}::{iid:x}")), 0);
            }
        }
        let s = b.build();
        assert_eq!(s.len(), 32 * 512);
        let ratio = s.stored_bytes() as f64 / s.raw_bytes() as f64;
        assert!(ratio < 0.7, "compression ratio {ratio} not under 0.7");
    }

    #[test]
    fn shard_counts_agree() {
        for shard_count in [1usize, 4, 16] {
            let mut b = SnapshotBuilder::new("test", shard_count);
            for i in 0..200u32 {
                b.add_address(addr(&format!("2001:db8:{:x}::{:x}", i % 23, i)), i % 5);
            }
            let s = b.build();
            assert_eq!(s.shard_count(), shard_count);
            assert_eq!(s.len(), 200);
            assert!(s.verify_integrity());
            let per_shard: u64 = s.shards().iter().map(|sh| sh.len() as u64).sum();
            assert_eq!(per_shard, 200);
        }
    }
}
