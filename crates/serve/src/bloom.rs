//! Blocked bloom filter: the optional approximate-membership front for
//! the hot `serve.query.membership` path.
//!
//! Layout: one 512-bit block (a cache line) per 32 keys, so every probe
//! touches exactly one cache line. Each key sets `PROBES` bits inside
//! its block, derived from two seeded FNV-1a hashes — zero dependencies
//! and deterministic across platforms. With 16 bits budgeted per key
//! and 6 probes the false-positive rate lands around 1% (the blocked
//! layout costs roughly 1.5× the unblocked rate in exchange for the
//! single-cache-line probe); `crates/serve/tests/compressed_equivalence.rs`
//! pins an upper bound.
//!
//! A bloom front can only say "definitely absent" or "ask the exact
//! tier": false negatives are impossible by construction, so enabling
//! it (the `V6_BLOOM` env toggle, or
//! [`crate::snapshot::SnapshotBuilder::with_bloom`]) never changes a
//! query answer — only how much work an absent-address miss costs.

/// Bits budgeted per key (filter sizing).
const BITS_PER_KEY: usize = 16;

/// Words per block: 8 × 64 = 512 bits, one cache line.
const BLOCK_WORDS: usize = 8;

/// Bits set per key inside its block.
const PROBES: usize = 6;

/// Seeded FNV-1a over the 16 address bytes.
fn fnv1a(bits: u128, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in bits.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A blocked bloom filter over address bits.
#[derive(Debug, Clone)]
pub struct BlockedBloom {
    blocks: Vec<[u64; BLOCK_WORDS]>,
    seed: u64,
}

impl BlockedBloom {
    /// Builds a filter sized for the given keys (seeded; two filters
    /// built from the same keys and seed are identical).
    pub fn build(seed: u64, keys: impl Iterator<Item = u128>, count: usize) -> BlockedBloom {
        let block_count = (count * BITS_PER_KEY).div_ceil(BLOCK_WORDS * 64).max(1);
        let mut bloom = BlockedBloom {
            blocks: vec![[0u64; BLOCK_WORDS]; block_count],
            seed,
        };
        for bits in keys {
            let (block, positions) = bloom.probe(bits);
            for p in positions {
                bloom.blocks[block][p >> 6] |= 1u64 << (p & 63);
            }
        }
        bloom
    }

    /// The block index and the [`PROBES`] bit positions for a key.
    fn probe(&self, bits: u128) -> (usize, [usize; PROBES]) {
        let h1 = fnv1a(bits, self.seed);
        let h2 = fnv1a(bits, self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let block = (h1 % self.blocks.len() as u64) as usize;
        let mut positions = [0usize; PROBES];
        for (i, p) in positions.iter_mut().enumerate() {
            // 9 bits address 512 positions; h2 carries 54 > 9 × PROBES.
            *p = ((h2 >> (9 * i)) & 511) as usize;
        }
        (block, positions)
    }

    /// `false` means the key is definitely absent; `true` means the
    /// exact tier must be consulted.
    pub fn may_contain(&self, bits: u128) -> bool {
        let (block, positions) = self.probe(bits);
        let b = &self.blocks[block];
        positions
            .iter()
            .all(|&p| b[p >> 6] & (1u64 << (p & 63)) != 0)
    }

    /// Heap bytes the filter occupies.
    pub fn heap_bytes(&self) -> usize {
        self.blocks.len() * BLOCK_WORDS * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, seed: u64) -> Vec<u128> {
        let mut h = seed | 1;
        (0..n)
            .map(|_| {
                h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29) ^ 0x5eed;
                (0x2001u128 << 112) | u128::from(h)
            })
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000, 3);
        let bloom = BlockedBloom::build(42, ks.iter().copied(), ks.len());
        assert!(ks.iter().all(|&k| bloom.may_contain(k)));
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let ks = keys(50_000, 3);
        let bloom = BlockedBloom::build(42, ks.iter().copied(), ks.len());
        let probes = keys(100_000, 999); // disjoint seed: effectively all absent
        let fp = probes.iter().filter(|&&p| bloom.may_contain(p)).count();
        let rate = fp as f64 / probes.len() as f64;
        assert!(rate < 0.03, "false-positive rate {rate} exceeds 3%");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = BlockedBloom::build(7, std::iter::empty(), 0);
        assert!(!bloom.may_contain(123));
        assert!(bloom.heap_bytes() >= 64);
    }
}
