//! Deterministic load harness for the serving path.
//!
//! Replays a seeded mix of queries from N client threads against a
//! [`QueryEngine`], measuring throughput and per-query latency (log2
//! histogram → p50/p90/p99). The address stream derives entirely from
//! `(seed, thread index, op index)` via the workspace PRNG, so two runs
//! with the same spec issue the same queries in the same per-thread
//! order — only the timing varies.
//!
//! The harness doubles as a correctness check under concurrent
//! publication: addresses drawn from the "present" pool were sampled
//! from the snapshot at start, and because the hitlist only grows,
//! every later epoch must still contain them. Any miss is counted as a
//! verification failure, and the integrity of the snapshot serving the
//! final query is re-verified.

use std::net::Ipv6Addr;
use std::time::Instant;

use v6addr::Prefix;
use v6netsim::rng::{hash64, Rng};

use crate::query::QueryEngine;
use crate::snapshot::Snapshot;

/// Relative weights of the query kinds in the generated stream.
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    /// Exact membership probes.
    pub membership: u32,
    /// Alias-filtered membership probes.
    pub filtered: u32,
    /// Full lookups.
    pub lookup: u32,
    /// Per-/48 density queries.
    pub density: u32,
    /// Weekly-diff queries.
    pub diff: u32,
    /// Batched lookups (each counts `batch_size` queries).
    pub batch: u32,
}

impl Default for QueryMix {
    fn default() -> Self {
        QueryMix {
            membership: 40,
            filtered: 15,
            lookup: 25,
            density: 10,
            diff: 5,
            batch: 5,
        }
    }
}

impl QueryMix {
    fn weights(&self) -> [u32; 6] {
        [
            self.membership,
            self.filtered,
            self.lookup,
            self.density,
            self.diff,
            self.batch,
        ]
    }
}

/// One load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Total queries across all threads (batch addresses counted once
    /// per address).
    pub queries: u64,
    /// Client threads.
    pub threads: usize,
    /// Seed for the deterministic query stream.
    pub seed: u64,
    /// Fraction of single-address probes drawn from the known-present
    /// pool (the rest are pseudorandom and almost surely absent).
    pub hit_fraction: f64,
    /// Addresses per batched lookup.
    pub batch_size: usize,
    /// Query-kind weights.
    pub mix: QueryMix,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            queries: 1_000_000,
            threads: 4,
            seed: 2022,
            hit_fraction: 0.5,
            batch_size: 16,
            mix: QueryMix::default(),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries actually issued (>= spec due to batch rounding).
    pub queries: u64,
    /// Wall-clock for the whole run.
    pub elapsed_secs: f64,
    /// Aggregate throughput.
    pub qps: f64,
    /// Median per-operation latency (log2-bucket upper bound).
    pub p50_ns: u64,
    /// 90th-percentile latency.
    pub p90_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Slowest bucket observed.
    pub max_ns: u64,
    /// Probes that found their address present.
    pub present_hits: u64,
    /// Known-present addresses reported absent (must be 0: snapshots
    /// only grow, so a miss means a torn or corrupted read).
    pub verification_failures: u64,
    /// Epoch at run start.
    pub first_epoch: u64,
    /// Epoch serving the final observation.
    pub last_epoch: u64,
    /// Operations answered by an epoch newer than `first_epoch` (proof
    /// the run overlapped a publication).
    pub queries_after_publish: u64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} queries in {:.3} s  ->  {:.0} queries/s",
            self.queries, self.elapsed_secs, self.qps
        )?;
        writeln!(
            f,
            "latency p50 <= {} ns, p90 <= {} ns, p99 <= {} ns, max <= {} ns",
            self.p50_ns, self.p90_ns, self.p99_ns, self.max_ns
        )?;
        write!(
            f,
            "epochs {}..{}, {} ops after publish, {} hits, {} verification failures",
            self.first_epoch,
            self.last_epoch,
            self.queries_after_publish,
            self.present_hits,
            self.verification_failures
        )
    }
}

/// Log2-bucketed latency histogram: bucket `i` holds counts for
/// durations in `(2^(i-1), 2^i]` nanoseconds.
#[derive(Debug, Clone)]
struct Histogram {
    buckets: [u64; 64],
    count: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
        }
    }

    fn record(&mut self, ns: u64) {
        let bucket = (64 - (ns | 1).leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Upper bound of the bucket containing the q-quantile observation.
    fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 63
    }

    fn max_bucket(&self) -> u64 {
        match self.buckets.iter().rposition(|&n| n > 0) {
            Some(i) => 1u64 << i,
            None => 0,
        }
    }
}

struct WorkerResult {
    hist: Histogram,
    issued: u64,
    hits: u64,
    failures: u64,
    after_publish: u64,
    last_epoch: u64,
}

/// One generated operation, fully materialized: the address(es) to
/// query and whether each was drawn from the known-present pool.
///
/// The stream of these is a pure function of `(seed, thread index)` —
/// extracting it from the worker loop lets other harnesses (the wire
/// front door's adversarial bench, cross-host reproductions) replay the
/// exact request sequence a load run would issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenRequest {
    /// Exact membership probe.
    Membership {
        /// The address to probe.
        addr: Ipv6Addr,
        /// Drawn from the known-present pool (so absence is a failure).
        from_present: bool,
    },
    /// Alias-filtered membership probe.
    MembershipUnaliased {
        /// The address to probe.
        addr: Ipv6Addr,
    },
    /// Full lookup.
    Lookup {
        /// The address to look up.
        addr: Ipv6Addr,
        /// Drawn from the known-present pool.
        from_present: bool,
    },
    /// Per-/48 density query around a drawn address.
    Density {
        /// The /48 containing the drawn address.
        prefix: Prefix,
        /// The drawn address was from the known-present pool.
        from_present: bool,
    },
    /// Weekly-diff query.
    NewSince {
        /// The study week bound.
        week: u64,
    },
    /// Batched lookup.
    Batch {
        /// The batch addresses, in draw order.
        addrs: Vec<Ipv6Addr>,
        /// How many were drawn from the known-present pool (lower bound
        /// on the batch's `present` answer).
        expect_present: u64,
    },
}

impl GenRequest {
    /// Queries this operation counts for (batch addresses counted
    /// individually, matching [`LoadReport::queries`]).
    pub fn cost(&self) -> u64 {
        match self {
            GenRequest::Batch { addrs, .. } => addrs.len() as u64,
            _ => 1,
        }
    }
}

/// The deterministic request stream one load-generation worker follows.
///
/// Infinite: call [`RequestStream::next_request`] (or iterate) as long
/// as needed. Two streams built from the same `(spec.seed, thread
/// index, present pool, max_week)` yield identical sequences — the
/// property `loadgen` runs rely on for reproducibility and that
/// `crates/serve/tests` pins across hosts.
#[derive(Debug, Clone)]
pub struct RequestStream<'a> {
    rng: Rng,
    weights: [u32; 6],
    weight_total: u64,
    present: &'a [u128],
    hit_fraction: f64,
    batch_size: usize,
    max_week: u64,
}

impl<'a> RequestStream<'a> {
    /// The stream worker `thread_index` follows under `spec`.
    ///
    /// `present` is the sampled known-present pool; `max_week` is the
    /// snapshot's latest study week (bounds the `NewSince` draws).
    pub fn new(spec: &LoadSpec, present: &'a [u128], max_week: u64, thread_index: usize) -> Self {
        let weights = spec.mix.weights();
        RequestStream {
            rng: Rng::new(hash64(
                spec.seed,
                format!("loadgen-{thread_index}").as_bytes(),
            )),
            weights,
            weight_total: weights.iter().map(|&w| u64::from(w)).sum::<u64>().max(1),
            present,
            hit_fraction: spec.hit_fraction,
            batch_size: spec.batch_size,
            max_week,
        }
    }

    fn pick_addr(&mut self) -> (Ipv6Addr, bool) {
        let from_present = !self.present.is_empty() && self.rng.chance(self.hit_fraction);
        let addr = if from_present {
            Ipv6Addr::from(self.present[self.rng.below(self.present.len() as u64) as usize])
        } else {
            Ipv6Addr::from(random_probe(&mut self.rng))
        };
        (addr, from_present)
    }

    /// The next operation in the stream (never exhausts).
    pub fn next_request(&mut self) -> GenRequest {
        let mut pick = self.rng.below(self.weight_total);
        let mut kind = 0usize;
        for (i, &w) in self.weights.iter().enumerate() {
            if pick < u64::from(w) {
                kind = i;
                break;
            }
            pick -= u64::from(w);
        }
        match kind {
            0 => {
                let (addr, from_present) = self.pick_addr();
                GenRequest::Membership { addr, from_present }
            }
            1 => {
                let (addr, _) = self.pick_addr();
                GenRequest::MembershipUnaliased { addr }
            }
            2 => {
                let (addr, from_present) = self.pick_addr();
                GenRequest::Lookup { addr, from_present }
            }
            3 => {
                let (addr, from_present) = self.pick_addr();
                GenRequest::Density {
                    prefix: Prefix::of(addr, 48),
                    from_present,
                }
            }
            4 => GenRequest::NewSince {
                week: self.rng.below(self.max_week + 2),
            },
            _ => {
                let n = self.batch_size.max(1);
                let mut addrs = Vec::with_capacity(n);
                let mut expect_present = 0u64;
                for _ in 0..n {
                    let (addr, from_present) = self.pick_addr();
                    expect_present += u64::from(from_present);
                    addrs.push(addr);
                }
                GenRequest::Batch {
                    addrs,
                    expect_present,
                }
            }
        }
    }
}

impl Iterator for RequestStream<'_> {
    type Item = GenRequest;

    fn next(&mut self) -> Option<GenRequest> {
        Some(self.next_request())
    }
}

/// Samples up to `target` present addresses evenly across the snapshot
/// — the known-present pool a [`RequestStream`] draws hits from. Public
/// so other harnesses (the wire adversarial bench) can build the same
/// pool a load run would.
pub fn sample_present(snap: &Snapshot, target: usize) -> Vec<u128> {
    let total = snap.len() as usize;
    if total == 0 {
        return Vec::new();
    }
    let stride = (total / target).max(1);
    let mut out = Vec::with_capacity(total.min(target) + 1);
    for shard in snap.shards() {
        out.extend(shard.iter_bits().step_by(stride));
    }
    out
}

/// A pseudorandom global-unicast address; with ~2^125 candidates it is
/// absent from any realistic snapshot with overwhelming probability.
fn random_probe(rng: &mut Rng) -> u128 {
    (0x2u128 << 124) | (rng.next_u128() >> 4)
}

fn run_worker(
    engine: &QueryEngine,
    spec: &LoadSpec,
    present: &[u128],
    thread_index: usize,
    quota: u64,
    first_epoch: u64,
) -> WorkerResult {
    let max_week = engine.store().snapshot().week();
    let mut stream = RequestStream::new(spec, present, max_week, thread_index);
    let mut hist = Histogram::new();
    let mut result = WorkerResult {
        hist: Histogram::new(),
        issued: 0,
        hits: 0,
        failures: 0,
        after_publish: 0,
        last_epoch: first_epoch,
    };

    while result.issued < quota {
        match stream.next_request() {
            GenRequest::Membership { addr, from_present } => {
                let t = Instant::now();
                let found = engine.contains(addr);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
                result.hits += u64::from(found);
                if from_present && !found {
                    result.failures += 1;
                }
            }
            GenRequest::MembershipUnaliased { addr } => {
                let t = Instant::now();
                let _ = engine.contains_unaliased(addr);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
            }
            GenRequest::Lookup { addr, from_present } => {
                let t = Instant::now();
                let ans = engine.lookup(addr);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
                result.hits += u64::from(ans.present);
                if from_present && !ans.present {
                    result.failures += 1;
                }
                result.last_epoch = result.last_epoch.max(ans.epoch);
                result.after_publish += u64::from(ans.epoch > first_epoch);
            }
            GenRequest::Density {
                prefix,
                from_present,
            } => {
                let t = Instant::now();
                let n = engine.count_within(&prefix);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
                if from_present && n == 0 {
                    result.failures += 1;
                }
            }
            GenRequest::NewSince { week } => {
                let t = Instant::now();
                let _ = engine.new_since(week);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
            }
            GenRequest::Batch {
                addrs,
                expect_present,
            } => {
                let t = Instant::now();
                let ans = engine.batch_lookup(&addrs);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += addrs.len() as u64;
                result.hits += ans.present;
                if ans.present < expect_present {
                    result.failures += 1;
                }
                result.last_epoch = result.last_epoch.max(ans.epoch);
                result.after_publish += u64::from(ans.epoch > first_epoch);
            }
        }
    }
    result.hist = hist;
    result
}

/// Runs the load against `engine` and reports throughput and latency.
pub fn run(engine: &QueryEngine, spec: &LoadSpec) -> LoadReport {
    assert!(spec.threads >= 1, "need at least one client thread");
    let snap0 = engine.store().snapshot();
    let first_epoch = snap0.epoch();
    let present = sample_present(&snap0, 65_536);

    let per_thread = spec.queries / spec.threads as u64;
    let remainder = spec.queries % spec.threads as u64;

    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|t| {
                let quota = per_thread + u64::from((t as u64) < remainder);
                let engine = &*engine;
                let present = &present[..];
                let spec = &*spec;
                scope.spawn(move || run_worker(engine, spec, present, t, quota, first_epoch))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    // The snapshot serving the final observations must still be intact.
    let final_snap = engine.store().snapshot();
    assert!(
        final_snap.verify_integrity(),
        "snapshot integrity violated during load"
    );

    let mut hist = Histogram::new();
    let mut queries = 0u64;
    let mut hits = 0u64;
    let mut failures = 0u64;
    let mut after_publish = 0u64;
    let mut last_epoch = first_epoch;
    for r in &results {
        hist.merge(&r.hist);
        queries += r.issued;
        hits += r.hits;
        failures += r.failures;
        after_publish += r.after_publish;
        last_epoch = last_epoch.max(r.last_epoch);
    }
    last_epoch = last_epoch.max(final_snap.epoch());
    let elapsed_secs = elapsed.as_secs_f64();
    LoadReport {
        queries,
        elapsed_secs,
        qps: queries as f64 / elapsed_secs.max(1e-9),
        p50_ns: hist.percentile(0.50),
        p90_ns: hist.percentile(0.90),
        p99_ns: hist.percentile(0.99),
        max_ns: hist.max_bucket(),
        present_hits: hits,
        verification_failures: failures,
        first_epoch,
        last_epoch,
        queries_after_publish: after_publish,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;
    use crate::store::HitlistStore;
    use std::sync::Arc;

    fn engine_with(n: u32) -> QueryEngine {
        let store = HitlistStore::new("svc", 4);
        let mut b = SnapshotBuilder::new("svc", 4);
        for i in 0..n {
            b.add_bits(
                u128::from(u16::try_from(i % 97).unwrap()) << 80
                    | (0x2001_0db8u128 << 96)
                    | u128::from(i),
                i % 4,
            );
        }
        store.publish(b.build()).unwrap();
        QueryEngine::new(Arc::new(store))
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let mut h = Histogram::new();
        for ns in [10u64, 20, 40, 80, 5000, 100_000] {
            h.record(ns);
        }
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert!(h.percentile(0.9) <= h.percentile(0.99));
        assert!(h.percentile(0.99) <= h.max_bucket());
    }

    #[test]
    fn deterministic_same_seed_same_failures_and_hits() {
        let engine = engine_with(5000);
        let spec = LoadSpec {
            queries: 20_000,
            threads: 2,
            ..Default::default()
        };
        let a = run(&engine, &spec);
        let b = run(&engine, &spec);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.present_hits, b.present_hits);
        assert_eq!(a.verification_failures, 0);
        assert_eq!(b.verification_failures, 0);
    }

    #[test]
    fn request_stream_is_seed_deterministic() {
        let engine = engine_with(500);
        let snap = engine.store().snapshot();
        let present = sample_present(&snap, 1024);
        let spec = LoadSpec::default();

        let a: Vec<GenRequest> = RequestStream::new(&spec, &present, snap.week(), 0)
            .take(2_000)
            .collect();
        let b: Vec<GenRequest> = RequestStream::new(&spec, &present, snap.week(), 0)
            .take(2_000)
            .collect();
        assert_eq!(a, b, "same (seed, thread) must replay identically");

        // Different thread index or seed: a different stream.
        let other_thread: Vec<GenRequest> = RequestStream::new(&spec, &present, snap.week(), 1)
            .take(2_000)
            .collect();
        assert_ne!(a, other_thread);
        let other_seed = LoadSpec {
            seed: spec.seed + 1,
            ..spec
        };
        let reseeded: Vec<GenRequest> = RequestStream::new(&other_seed, &present, snap.week(), 0)
            .take(2_000)
            .collect();
        assert_ne!(a, reseeded);
    }

    #[test]
    fn request_stream_costs_match_run_accounting() {
        let engine = engine_with(200);
        let snap = engine.store().snapshot();
        let present = sample_present(&snap, 256);
        let spec = LoadSpec::default();
        let mut stream = RequestStream::new(&spec, &present, snap.week(), 0);
        let mut issued = 0u64;
        let mut ops = 0u64;
        while issued < 5_000 {
            let req = stream.next_request();
            if let GenRequest::Batch {
                addrs,
                expect_present,
            } = &req
            {
                assert_eq!(addrs.len(), spec.batch_size);
                assert!(*expect_present <= addrs.len() as u64);
            }
            issued += req.cost();
            ops += 1;
        }
        assert!(ops < issued, "batches must compress ops below queries");
    }

    #[test]
    fn quota_split_covers_total() {
        let engine = engine_with(100);
        let spec = LoadSpec {
            queries: 10_001,
            threads: 3,
            ..Default::default()
        };
        let r = run(&engine, &spec);
        // Batched ops may overshoot the quota by at most one batch per
        // thread; never undershoot.
        assert!(r.queries >= 10_001);
        assert!(r.queries <= 10_001 + (spec.batch_size as u64) * 3);
    }
}
