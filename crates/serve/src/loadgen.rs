//! Deterministic load harness for the serving path.
//!
//! Replays a seeded mix of queries from N client threads against a
//! [`QueryEngine`], measuring throughput and per-query latency (log2
//! histogram → p50/p90/p99). The address stream derives entirely from
//! `(seed, thread index, op index)` via the workspace PRNG, so two runs
//! with the same spec issue the same queries in the same per-thread
//! order — only the timing varies.
//!
//! The harness doubles as a correctness check under concurrent
//! publication: addresses drawn from the "present" pool were sampled
//! from the snapshot at start, and because the hitlist only grows,
//! every later epoch must still contain them. Any miss is counted as a
//! verification failure, and the integrity of the snapshot serving the
//! final query is re-verified.

use std::net::Ipv6Addr;
use std::time::Instant;

use v6addr::Prefix;
use v6netsim::rng::{hash64, Rng};

use crate::query::QueryEngine;
use crate::snapshot::Snapshot;

/// Relative weights of the query kinds in the generated stream.
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    /// Exact membership probes.
    pub membership: u32,
    /// Alias-filtered membership probes.
    pub filtered: u32,
    /// Full lookups.
    pub lookup: u32,
    /// Per-/48 density queries.
    pub density: u32,
    /// Weekly-diff queries.
    pub diff: u32,
    /// Batched lookups (each counts `batch_size` queries).
    pub batch: u32,
}

impl Default for QueryMix {
    fn default() -> Self {
        QueryMix {
            membership: 40,
            filtered: 15,
            lookup: 25,
            density: 10,
            diff: 5,
            batch: 5,
        }
    }
}

impl QueryMix {
    fn weights(&self) -> [u32; 6] {
        [
            self.membership,
            self.filtered,
            self.lookup,
            self.density,
            self.diff,
            self.batch,
        ]
    }
}

/// One load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Total queries across all threads (batch addresses counted once
    /// per address).
    pub queries: u64,
    /// Client threads.
    pub threads: usize,
    /// Seed for the deterministic query stream.
    pub seed: u64,
    /// Fraction of single-address probes drawn from the known-present
    /// pool (the rest are pseudorandom and almost surely absent).
    pub hit_fraction: f64,
    /// Addresses per batched lookup.
    pub batch_size: usize,
    /// Query-kind weights.
    pub mix: QueryMix,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            queries: 1_000_000,
            threads: 4,
            seed: 2022,
            hit_fraction: 0.5,
            batch_size: 16,
            mix: QueryMix::default(),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries actually issued (>= spec due to batch rounding).
    pub queries: u64,
    /// Wall-clock for the whole run.
    pub elapsed_secs: f64,
    /// Aggregate throughput.
    pub qps: f64,
    /// Median per-operation latency (log2-bucket upper bound).
    pub p50_ns: u64,
    /// 90th-percentile latency.
    pub p90_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Slowest bucket observed.
    pub max_ns: u64,
    /// Probes that found their address present.
    pub present_hits: u64,
    /// Known-present addresses reported absent (must be 0: snapshots
    /// only grow, so a miss means a torn or corrupted read).
    pub verification_failures: u64,
    /// Epoch at run start.
    pub first_epoch: u64,
    /// Epoch serving the final observation.
    pub last_epoch: u64,
    /// Operations answered by an epoch newer than `first_epoch` (proof
    /// the run overlapped a publication).
    pub queries_after_publish: u64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} queries in {:.3} s  ->  {:.0} queries/s",
            self.queries, self.elapsed_secs, self.qps
        )?;
        writeln!(
            f,
            "latency p50 <= {} ns, p90 <= {} ns, p99 <= {} ns, max <= {} ns",
            self.p50_ns, self.p90_ns, self.p99_ns, self.max_ns
        )?;
        write!(
            f,
            "epochs {}..{}, {} ops after publish, {} hits, {} verification failures",
            self.first_epoch,
            self.last_epoch,
            self.queries_after_publish,
            self.present_hits,
            self.verification_failures
        )
    }
}

/// Log2-bucketed latency histogram: bucket `i` holds counts for
/// durations in `(2^(i-1), 2^i]` nanoseconds.
#[derive(Debug, Clone)]
struct Histogram {
    buckets: [u64; 64],
    count: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
        }
    }

    fn record(&mut self, ns: u64) {
        let bucket = (64 - (ns | 1).leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Upper bound of the bucket containing the q-quantile observation.
    fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 63
    }

    fn max_bucket(&self) -> u64 {
        match self.buckets.iter().rposition(|&n| n > 0) {
            Some(i) => 1u64 << i,
            None => 0,
        }
    }
}

struct WorkerResult {
    hist: Histogram,
    issued: u64,
    hits: u64,
    failures: u64,
    after_publish: u64,
    last_epoch: u64,
}

/// Samples up to `target` present addresses evenly across the snapshot.
fn sample_present(snap: &Snapshot, target: usize) -> Vec<u128> {
    let total = snap.len() as usize;
    if total == 0 {
        return Vec::new();
    }
    let stride = (total / target).max(1);
    let mut out = Vec::with_capacity(total.min(target) + 1);
    for shard in snap.shards() {
        out.extend(shard.iter_bits().step_by(stride));
    }
    out
}

/// A pseudorandom global-unicast address; with ~2^125 candidates it is
/// absent from any realistic snapshot with overwhelming probability.
fn random_probe(rng: &mut Rng) -> u128 {
    (0x2u128 << 124) | (rng.next_u128() >> 4)
}

fn run_worker(
    engine: &QueryEngine,
    spec: &LoadSpec,
    present: &[u128],
    thread_index: usize,
    quota: u64,
    first_epoch: u64,
) -> WorkerResult {
    let mut rng = Rng::new(hash64(
        spec.seed,
        format!("loadgen-{thread_index}").as_bytes(),
    ));
    let weights = spec.mix.weights();
    let weight_total: u64 = weights.iter().map(|&w| u64::from(w)).sum::<u64>().max(1);
    let max_week = engine.store().snapshot().week();
    let mut hist = Histogram::new();
    let mut result = WorkerResult {
        hist: Histogram::new(),
        issued: 0,
        hits: 0,
        failures: 0,
        after_publish: 0,
        last_epoch: first_epoch,
    };

    let pick_addr = |rng: &mut Rng, from_present: &mut bool| -> Ipv6Addr {
        *from_present = !present.is_empty() && rng.chance(spec.hit_fraction);
        if *from_present {
            Ipv6Addr::from(present[rng.below(present.len() as u64) as usize])
        } else {
            Ipv6Addr::from(random_probe(rng))
        }
    };

    while result.issued < quota {
        let mut pick = rng.below(weight_total);
        let mut kind = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if pick < u64::from(w) {
                kind = i;
                break;
            }
            pick -= u64::from(w);
        }
        let mut from_present = false;
        match kind {
            // membership
            0 => {
                let a = pick_addr(&mut rng, &mut from_present);
                let t = Instant::now();
                let found = engine.contains(a);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
                result.hits += u64::from(found);
                if from_present && !found {
                    result.failures += 1;
                }
            }
            // alias-filtered membership
            1 => {
                let a = pick_addr(&mut rng, &mut from_present);
                let t = Instant::now();
                let _ = engine.contains_unaliased(a);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
            }
            // full lookup
            2 => {
                let a = pick_addr(&mut rng, &mut from_present);
                let t = Instant::now();
                let ans = engine.lookup(a);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
                result.hits += u64::from(ans.present);
                if from_present && !ans.present {
                    result.failures += 1;
                }
                result.last_epoch = result.last_epoch.max(ans.epoch);
                result.after_publish += u64::from(ans.epoch > first_epoch);
            }
            // per-/48 density
            3 => {
                let a = pick_addr(&mut rng, &mut from_present);
                let p = Prefix::of(a, 48);
                let t = Instant::now();
                let n = engine.count_within(&p);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
                if from_present && n == 0 {
                    result.failures += 1;
                }
            }
            // weekly diff
            4 => {
                let week = rng.below(max_week + 2);
                let t = Instant::now();
                let _ = engine.new_since(week);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += 1;
            }
            // batched lookup
            _ => {
                let mut batch = Vec::with_capacity(spec.batch_size);
                let mut expect_present = 0u64;
                for _ in 0..spec.batch_size.max(1) {
                    let a = pick_addr(&mut rng, &mut from_present);
                    expect_present += u64::from(from_present);
                    batch.push(a);
                }
                let t = Instant::now();
                let ans = engine.batch_lookup(&batch);
                hist.record(t.elapsed().as_nanos() as u64);
                result.issued += batch.len() as u64;
                result.hits += ans.present;
                if ans.present < expect_present {
                    result.failures += 1;
                }
                result.last_epoch = result.last_epoch.max(ans.epoch);
                result.after_publish += u64::from(ans.epoch > first_epoch);
            }
        }
    }
    result.hist = hist;
    result
}

/// Runs the load against `engine` and reports throughput and latency.
pub fn run(engine: &QueryEngine, spec: &LoadSpec) -> LoadReport {
    assert!(spec.threads >= 1, "need at least one client thread");
    let snap0 = engine.store().snapshot();
    let first_epoch = snap0.epoch();
    let present = sample_present(&snap0, 65_536);

    let per_thread = spec.queries / spec.threads as u64;
    let remainder = spec.queries % spec.threads as u64;

    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|t| {
                let quota = per_thread + u64::from((t as u64) < remainder);
                let engine = &*engine;
                let present = &present[..];
                let spec = &*spec;
                scope.spawn(move || run_worker(engine, spec, present, t, quota, first_epoch))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    // The snapshot serving the final observations must still be intact.
    let final_snap = engine.store().snapshot();
    assert!(
        final_snap.verify_integrity(),
        "snapshot integrity violated during load"
    );

    let mut hist = Histogram::new();
    let mut queries = 0u64;
    let mut hits = 0u64;
    let mut failures = 0u64;
    let mut after_publish = 0u64;
    let mut last_epoch = first_epoch;
    for r in &results {
        hist.merge(&r.hist);
        queries += r.issued;
        hits += r.hits;
        failures += r.failures;
        after_publish += r.after_publish;
        last_epoch = last_epoch.max(r.last_epoch);
    }
    last_epoch = last_epoch.max(final_snap.epoch());
    let elapsed_secs = elapsed.as_secs_f64();
    LoadReport {
        queries,
        elapsed_secs,
        qps: queries as f64 / elapsed_secs.max(1e-9),
        p50_ns: hist.percentile(0.50),
        p90_ns: hist.percentile(0.90),
        p99_ns: hist.percentile(0.99),
        max_ns: hist.max_bucket(),
        present_hits: hits,
        verification_failures: failures,
        first_epoch,
        last_epoch,
        queries_after_publish: after_publish,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;
    use crate::store::HitlistStore;
    use std::sync::Arc;

    fn engine_with(n: u32) -> QueryEngine {
        let store = HitlistStore::new("svc", 4);
        let mut b = SnapshotBuilder::new("svc", 4);
        for i in 0..n {
            b.add_bits(
                u128::from(u16::try_from(i % 97).unwrap()) << 80
                    | (0x2001_0db8u128 << 96)
                    | u128::from(i),
                i % 4,
            );
        }
        store.publish(b.build()).unwrap();
        QueryEngine::new(Arc::new(store))
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let mut h = Histogram::new();
        for ns in [10u64, 20, 40, 80, 5000, 100_000] {
            h.record(ns);
        }
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert!(h.percentile(0.9) <= h.percentile(0.99));
        assert!(h.percentile(0.99) <= h.max_bucket());
    }

    #[test]
    fn deterministic_same_seed_same_failures_and_hits() {
        let engine = engine_with(5000);
        let spec = LoadSpec {
            queries: 20_000,
            threads: 2,
            ..Default::default()
        };
        let a = run(&engine, &spec);
        let b = run(&engine, &spec);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.present_hits, b.present_hits);
        assert_eq!(a.verification_failures, 0);
        assert_eq!(b.verification_failures, 0);
    }

    #[test]
    fn quota_split_covers_total() {
        let engine = engine_with(100);
        let spec = LoadSpec {
            queries: 10_001,
            threads: 3,
            ..Default::default()
        };
        let r = run(&engine, &spec);
        // Batched ops may overshoot the quota by at most one batch per
        // thread; never undershoot.
        assert!(r.queries >= 10_001);
        assert!(r.queries <= 10_001 + (spec.batch_size as u64) * 3);
    }
}
