//! Concurrent ingestion: publications in, snapshot epochs out.
//!
//! Updates flow through two bounded crossbeam channels:
//!
//! ```text
//! submit() ──▶ [updates] ──▶ shard workers ──▶ [batches] ──▶ merger ──▶ store.publish()
//! ```
//!
//! Shard workers normalize each [`PublicationUpdate`] into per-shard
//! sorted `(bits, week)` runs off the serving threads; the single merger
//! thread owns the accumulated state, merges each run in O(n), and
//! publishes a fresh epoch per update. Bounded channels give natural
//! backpressure: when ingestion falls behind, `submit` blocks the
//! producer instead of growing queues without limit — readers are never
//! involved, they keep serving the last published epoch.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use v6addr::{shard48, Prefix};
use v6hitlist::{HitlistService, NtpCorpus};
use v6scan::CampaignResult;

use crate::snapshot::Snapshot;
use crate::store::HitlistStore;

const WEEK_SECS: u64 = 7 * 86_400;

/// One unit of publication input.
#[derive(Debug, Clone)]
pub enum PublicationUpdate {
    /// A full service publication stream (all weekly snapshots at once).
    Service(HitlistService),
    /// One incremental weekly release.
    Week {
        /// Study week of the release.
        week: u64,
        /// Addresses published this week.
        addresses: Vec<std::net::Ipv6Addr>,
    },
    /// Passive observations as `(address bits, seconds since study start)`.
    Passive {
        /// The raw observations.
        observations: Vec<(u128, u32)>,
    },
    /// Aliased-prefix registrations, effective from `week`.
    Aliases {
        /// Week the aliases were detected.
        week: u64,
        /// The aliased prefixes.
        prefixes: Vec<Prefix>,
    },
}

impl PublicationUpdate {
    /// Wraps an active campaign's results as a service publication.
    pub fn from_campaign(name: impl Into<String>, campaign: &CampaignResult) -> Self {
        PublicationUpdate::Service(HitlistService::from_campaign(name, campaign))
    }

    /// Wraps a passive NTP corpus.
    pub fn from_corpus(corpus: &NtpCorpus) -> Self {
        PublicationUpdate::Passive {
            observations: corpus.observations.iter().map(|o| (o.addr, o.t)).collect(),
        }
    }

    /// Addresses carried (before dedup), for stats and backpressure sizing.
    pub fn address_count(&self) -> u64 {
        match self {
            PublicationUpdate::Service(s) => s
                .snapshots
                .iter()
                .map(|w| w.new_responsive.len() as u64)
                .sum(),
            PublicationUpdate::Week { addresses, .. } => addresses.len() as u64,
            PublicationUpdate::Passive { observations } => observations.len() as u64,
            PublicationUpdate::Aliases { .. } => 0,
        }
    }
}

/// A normalized update: per-shard sorted `(bits, week)` runs + aliases.
struct ShardBatch {
    per_shard: Vec<Vec<(u128, u32)>>,
    aliases: Vec<(Prefix, u32)>,
    raw_addresses: u64,
}

fn normalize(update: PublicationUpdate, shard_bits: u32) -> ShardBatch {
    let shard_count = 1usize << shard_bits;
    let mut per_shard: Vec<Vec<(u128, u32)>> = vec![Vec::new(); shard_count];
    let mut aliases: Vec<(Prefix, u32)> = Vec::new();
    let raw_addresses = update.address_count();
    let push = |bits: u128, week: u32, shards: &mut Vec<Vec<(u128, u32)>>| {
        shards[shard48(bits, shard_bits)].push((bits, week));
    };
    match update {
        PublicationUpdate::Service(service) => {
            for snap in &service.snapshots {
                for &a in &snap.new_responsive {
                    push(u128::from(a), snap.week as u32, &mut per_shard);
                }
            }
            let first_week = service
                .snapshots
                .first()
                .map(|s| s.week as u32)
                .unwrap_or(0);
            aliases.extend(service.aliased.iter().map(|&p| (p, first_week)));
        }
        PublicationUpdate::Week { week, addresses } => {
            for &a in &addresses {
                push(u128::from(a), week as u32, &mut per_shard);
            }
        }
        PublicationUpdate::Passive { observations } => {
            for &(bits, t) in &observations {
                push(bits, (u64::from(t) / WEEK_SECS) as u32, &mut per_shard);
            }
        }
        PublicationUpdate::Aliases { week, prefixes } => {
            aliases.extend(prefixes.iter().map(|&p| (p, week as u32)));
        }
    }
    for run in &mut per_shard {
        // Sort by (bits, week) then dedup keeping the first entry of each
        // equal-bits run — i.e. the earliest week within this update.
        run.sort_unstable();
        run.dedup_by_key(|&mut (b, _)| b);
    }
    ShardBatch {
        per_shard,
        aliases,
        raw_addresses,
    }
}

/// Merges a sorted run into sorted accumulated state, keeping the
/// earliest week for duplicate addresses. Returns duplicates coalesced.
fn merge_run(acc: &mut Vec<(u128, u32)>, run: Vec<(u128, u32)>) -> u64 {
    if run.is_empty() {
        return 0;
    }
    if acc.is_empty() {
        *acc = run;
        return 0;
    }
    let mut out = Vec::with_capacity(acc.len() + run.len());
    let mut duplicates = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < acc.len() && j < run.len() {
        let (ab, aw) = acc[i];
        let (rb, rw) = run[j];
        match ab.cmp(&rb) {
            std::cmp::Ordering::Less => {
                out.push((ab, aw));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((rb, rw));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((ab, aw.min(rw)));
                duplicates += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&acc[i..]);
    out.extend_from_slice(&run[j..]);
    *acc = out;
    duplicates
}

/// What an ingestion run accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Updates processed.
    pub updates: u64,
    /// Raw addresses submitted (before any dedup).
    pub raw_addresses: u64,
    /// Unique addresses in the final snapshot.
    pub unique_addresses: u64,
    /// Duplicates coalesced across updates (weekly re-publications).
    pub duplicates: u64,
    /// Epochs published.
    pub epochs_published: u64,
}

/// Configuration for the ingestion pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Ingestor {
    /// Shard-normalization worker threads.
    pub workers: usize,
    /// Capacity of each bounded channel (backpressure threshold).
    pub queue_capacity: usize,
}

impl Default for Ingestor {
    fn default() -> Self {
        Ingestor {
            workers: 2,
            queue_capacity: 8,
        }
    }
}

impl Ingestor {
    /// Starts the pipeline against `store`.
    pub fn spawn(self, store: Arc<HitlistStore>) -> IngestHandle {
        assert!(self.workers >= 1, "need at least one worker");
        let shard_bits = store.snapshot().shard_count().trailing_zeros();
        let (update_tx, update_rx) = bounded::<PublicationUpdate>(self.queue_capacity);
        let (batch_tx, batch_rx) = bounded::<ShardBatch>(self.queue_capacity);

        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let rx: Receiver<PublicationUpdate> = update_rx.clone();
                let tx: Sender<ShardBatch> = batch_tx.clone();
                std::thread::spawn(move || {
                    for update in rx.iter() {
                        if tx.send(normalize(update, shard_bits)).is_err() {
                            return; // merger gone; nothing to do but exit
                        }
                    }
                })
            })
            .collect();
        // Drop the originals so the batch channel closes when the last
        // worker exits, which in turn ends the merger loop.
        drop(update_rx);
        drop(batch_tx);

        let merger = std::thread::spawn(move || merge_loop(store, shard_bits, batch_rx));

        IngestHandle {
            tx: Some(update_tx),
            workers,
            merger: Some(merger),
        }
    }
}

fn merge_loop(
    store: Arc<HitlistStore>,
    shard_bits: u32,
    batches: Receiver<ShardBatch>,
) -> IngestStats {
    let name = store.snapshot().name().to_string();
    let mut acc: Vec<Vec<(u128, u32)>> = vec![Vec::new(); 1usize << shard_bits];
    let mut aliases: Vec<(Prefix, u32)> = Vec::new();
    let mut stats = IngestStats::default();
    for batch in batches.iter() {
        stats.updates += 1;
        stats.raw_addresses += batch.raw_addresses;
        store.metrics().record_ingested(batch.raw_addresses);
        for (slot, run) in acc.iter_mut().zip(batch.per_shard) {
            stats.duplicates += merge_run(slot, run);
        }
        for (prefix, week) in batch.aliases {
            match aliases.iter_mut().find(|(p, _)| *p == prefix) {
                Some((_, w)) => *w = (*w).min(week),
                None => aliases.push((prefix, week)),
            }
        }
        let snapshot = Snapshot::from_sorted_parts(name.clone(), shard_bits, &acc, &aliases);
        stats.unique_addresses = snapshot.len();
        if store.publish(snapshot).is_ok() {
            stats.epochs_published += 1;
        }
    }
    stats
}

/// A running ingestion pipeline.
pub struct IngestHandle {
    tx: Option<Sender<PublicationUpdate>>,
    workers: Vec<JoinHandle<()>>,
    merger: Option<JoinHandle<IngestStats>>,
}

impl IngestHandle {
    /// Submits one update, blocking when the pipeline is backlogged.
    ///
    /// # Panics
    /// Panics if the pipeline threads have died.
    pub fn submit(&self, update: PublicationUpdate) {
        self.tx
            .as_ref()
            .expect("pipeline already finished")
            .send(update)
            .expect("ingest pipeline closed");
    }

    /// Closes the intake, drains in-flight updates, and returns stats.
    pub fn finish(mut self) -> IngestStats {
        self.tx.take(); // close the update channel
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.merger
            .take()
            .expect("finish called twice")
            .join()
            .expect("merger thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn weekly_updates_accumulate_and_dedup() {
        let store = Arc::new(HitlistStore::new("svc", 4));
        let handle = Ingestor::default().spawn(store.clone());
        handle.submit(PublicationUpdate::Week {
            week: 0,
            addresses: vec![addr("2001:db8:1::1"), addr("2001:db8:2::1")],
        });
        handle.submit(PublicationUpdate::Week {
            week: 1,
            addresses: vec![addr("2001:db8:1::1"), addr("2001:db8:3::1")],
        });
        handle.submit(PublicationUpdate::Aliases {
            week: 1,
            prefixes: vec!["2001:db8:3::/48".parse().unwrap()],
        });
        let stats = handle.finish();

        assert_eq!(stats.updates, 3);
        assert_eq!(stats.raw_addresses, 4);
        assert_eq!(stats.unique_addresses, 3);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.epochs_published, 3);

        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 3);
        // Re-published address keeps its first week.
        assert_eq!(snap.first_week(addr("2001:db8:1::1")), Some(0));
        assert_eq!(snap.first_week(addr("2001:db8:3::1")), Some(1));
        assert!(snap.is_aliased(addr("2001:db8:3::42")));
        assert!(snap.verify_integrity());
    }

    #[test]
    fn passive_observations_map_to_weeks() {
        let store = Arc::new(HitlistStore::new("svc", 1));
        let handle = Ingestor {
            workers: 1,
            queue_capacity: 2,
        }
        .spawn(store.clone());
        let bits = u128::from(addr("2001:db8::1"));
        handle.submit(PublicationUpdate::Passive {
            observations: vec![(bits, 0), (bits, 8 * 86_400)],
        });
        let stats = handle.finish();
        assert_eq!(stats.unique_addresses, 1);
        // Both observations are week 0 / week 1; earliest wins.
        assert_eq!(store.snapshot().first_week(addr("2001:db8::1")), Some(0));
    }

    #[test]
    fn merge_run_keeps_earliest_week() {
        let mut acc = vec![(1u128, 5u32), (3, 1)];
        let dup = merge_run(&mut acc, vec![(1, 2), (2, 9), (3, 4)]);
        assert_eq!(dup, 2);
        assert_eq!(acc, vec![(1, 2), (2, 9), (3, 1)]);
    }
}
