//! Concurrent ingestion: publications in, snapshot epochs out.
//!
//! Updates flow through two bounded crossbeam channels:
//!
//! ```text
//! submit() ──▶ [updates] ──▶ shard workers ──▶ [batches] ──▶ merger ──▶ store.publish()
//! ```
//!
//! Shard workers normalize each [`PublicationUpdate`] into per-shard
//! sorted `(bits, week)` runs off the serving threads; the single merger
//! thread owns the accumulated state, merges each run in O(n), and
//! publishes a fresh epoch per update. Bounded channels give natural
//! backpressure: when ingestion falls behind, `submit` blocks the
//! producer instead of growing queues without limit — readers are never
//! involved, they keep serving the last published epoch.
//!
//! # Fault tolerance
//!
//! The pipeline is wired for deterministic fault injection through
//! [`v6chaos::Chaos`] ([`Ingestor::spawn_chaos`]); production use
//! ([`Ingestor::spawn`]) injects nothing. Fault sites and their
//! handling:
//!
//! * `serve.worker.update.<seq>` — a shard worker normalizing the
//!   `seq`-th accepted update. Injected errors are retried up to the
//!   chaos retry budget; exhaustion or an injected panic (worker death)
//!   records the update as *lost* — accounted in [`IngestReport`],
//!   never silently dropped. [`IngestHandle::submit`] detects dead
//!   workers and returns [`IngestError`] instead of blocking forever.
//! * `serve.merger.update.<seq>` — the merger consult before folding
//!   that update; only `Stall` faults are honored (back-pressure).
//! * `serve.shard.<i>` — merging shard `i`'s accumulated runs. A
//!   failing consult *quarantines* the shard: its runs are parked, the
//!   epoch is published anyway with the shard's last good content and a
//!   `Degraded { missing_shards }` status. Later consults (or the final
//!   flush in [`IngestHandle::finish`]) drain the quarantine; only a
//!   permanent script leaves the shard quarantined, and then the report
//!   says exactly which shards lost data.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

use v6addr::{shard48, Prefix};
use v6chaos::{Chaos, Fault, LossReport, NoChaos};
use v6hitlist::{HitlistService, NtpCorpus};
use v6scan::CampaignResult;

use crate::snapshot::{bloom_default, Snapshot};
use crate::store::HitlistStore;

const WEEK_SECS: u64 = 7 * 86_400;

/// One unit of publication input.
#[derive(Debug, Clone)]
pub enum PublicationUpdate {
    /// A full service publication stream (all weekly snapshots at once).
    Service(HitlistService),
    /// One incremental weekly release.
    Week {
        /// Study week of the release.
        week: u64,
        /// Addresses published this week.
        addresses: Vec<std::net::Ipv6Addr>,
    },
    /// Passive observations as `(address bits, seconds since study start)`.
    Passive {
        /// The raw observations.
        observations: Vec<(u128, u32)>,
    },
    /// Aliased-prefix registrations, effective from `week`.
    Aliases {
        /// Week the aliases were detected.
        week: u64,
        /// The aliased prefixes.
        prefixes: Vec<Prefix>,
    },
}

impl PublicationUpdate {
    /// Wraps an active campaign's results as a service publication.
    pub fn from_campaign(name: impl Into<String>, campaign: &CampaignResult) -> Self {
        PublicationUpdate::Service(HitlistService::from_campaign(name, campaign))
    }

    /// Wraps a passive NTP corpus.
    pub fn from_corpus(corpus: &NtpCorpus) -> Self {
        PublicationUpdate::Passive {
            observations: corpus.observations.iter().map(|o| (o.addr, o.t)).collect(),
        }
    }

    /// Addresses carried (before dedup), for stats and backpressure sizing.
    pub fn address_count(&self) -> u64 {
        match self {
            PublicationUpdate::Service(s) => s
                .snapshots
                .iter()
                .map(|w| w.new_responsive.len() as u64)
                .sum(),
            PublicationUpdate::Week { addresses, .. } => addresses.len() as u64,
            PublicationUpdate::Passive { observations } => observations.len() as u64,
            PublicationUpdate::Aliases { .. } => 0,
        }
    }
}

/// A normalized update: per-shard sorted `(bits, week)` runs + aliases.
struct ShardBatch {
    per_shard: Vec<Vec<(u128, u32)>>,
    aliases: Vec<(Prefix, u32)>,
    raw_addresses: u64,
}

fn normalize(update: PublicationUpdate, shard_bits: u32) -> ShardBatch {
    let shard_count = 1usize << shard_bits;
    let mut per_shard: Vec<Vec<(u128, u32)>> = vec![Vec::new(); shard_count];
    let mut aliases: Vec<(Prefix, u32)> = Vec::new();
    let raw_addresses = update.address_count();
    let push = |bits: u128, week: u32, shards: &mut Vec<Vec<(u128, u32)>>| {
        shards[shard48(bits, shard_bits)].push((bits, week));
    };
    match update {
        PublicationUpdate::Service(service) => {
            for snap in &service.snapshots {
                for &a in &snap.new_responsive {
                    push(u128::from(a), snap.week as u32, &mut per_shard);
                }
            }
            let first_week = service
                .snapshots
                .first()
                .map(|s| s.week as u32)
                .unwrap_or(0);
            aliases.extend(service.aliased.iter().map(|&p| (p, first_week)));
        }
        PublicationUpdate::Week { week, addresses } => {
            for &a in &addresses {
                push(u128::from(a), week as u32, &mut per_shard);
            }
        }
        PublicationUpdate::Passive { observations } => {
            for &(bits, t) in &observations {
                push(bits, (u64::from(t) / WEEK_SECS) as u32, &mut per_shard);
            }
        }
        PublicationUpdate::Aliases { week, prefixes } => {
            aliases.extend(prefixes.iter().map(|&p| (p, week as u32)));
        }
    }
    // Sort each run by (bits, week) then dedup keeping the first entry
    // of each equal-bits run — i.e. the earliest week within this
    // update. Runs are independent, so big updates fan the per-shard
    // sorts out across the v6par pool; the adaptive cutoff keeps the
    // typical small update inline on this worker thread.
    let total: usize = per_shard.iter().map(Vec::len).sum();
    let run_cost = v6par::Cost::per_item_ns(100 * (total / per_shard.len().max(1)).max(1) as u64)
        .labeled("serve.normalize");
    v6par::par_for_each_mut(v6par::threads(), &mut per_shard, run_cost, |_, run| {
        v6par::radix_sort_by_key(run, |&(b, w)| (b, u64::from(w)));
        run.dedup_by_key(|&mut (b, _)| b);
    });
    ShardBatch {
        per_shard,
        aliases,
        raw_addresses,
    }
}

/// Merges a sorted run into sorted accumulated state, keeping the
/// earliest week for duplicate addresses. Returns duplicates coalesced.
fn merge_run(acc: &mut Vec<(u128, u32)>, run: Vec<(u128, u32)>) -> u64 {
    if run.is_empty() {
        return 0;
    }
    if acc.is_empty() {
        *acc = run;
        return 0;
    }
    let mut out = Vec::with_capacity(acc.len() + run.len());
    let mut duplicates = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < acc.len() && j < run.len() {
        let (ab, aw) = acc[i];
        let (rb, rw) = run[j];
        match ab.cmp(&rb) {
            std::cmp::Ordering::Less => {
                out.push((ab, aw));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((rb, rw));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((ab, aw.min(rw)));
                duplicates += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&acc[i..]);
    out.extend_from_slice(&run[j..]);
    *acc = out;
    duplicates
}

/// What an ingestion run accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Updates processed by the merger.
    pub updates: u64,
    /// Raw addresses submitted (before any dedup).
    pub raw_addresses: u64,
    /// Unique addresses in the final snapshot.
    pub unique_addresses: u64,
    /// Duplicates coalesced across updates (weekly re-publications).
    pub duplicates: u64,
    /// Epochs published.
    pub epochs_published: u64,
    /// Epochs published with at least one quarantined shard.
    pub degraded_epochs: u64,
}

/// Why [`IngestHandle::submit`] rejected an update. The caller still
/// owns the update — a rejected submission is never counted as lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Every shard worker has died; nothing will drain the queue.
    WorkersDead,
    /// The pipeline's channels are closed (already finishing).
    Closed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::WorkersDead => write!(f, "all shard workers have died"),
            IngestError::Closed => write!(f, "ingest pipeline is closed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// The full accounting of an ingestion run: stats plus exactly which
/// updates and shards (if any) lost data.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Counters for the processed stream.
    pub stats: IngestStats,
    /// `(seq, reason)` for every accepted update that was lost (worker
    /// death or exhausted retries), ascending by seq.
    pub lost_updates: Vec<(u64, String)>,
    /// Shards still quarantined at the end: their parked runs never
    /// merged. Empty unless a permanent fault was injected.
    pub quarantined_shards: Vec<u32>,
}

impl IngestReport {
    /// True when every accepted update reached the final snapshot.
    pub fn is_complete(&self) -> bool {
        self.lost_updates.is_empty() && self.quarantined_shards.is_empty()
    }

    /// The loss report in the workspace-wide `LOST <unit> (<reason>)`
    /// site vocabulary.
    pub fn loss(&self) -> LossReport {
        let mut loss = LossReport::new();
        for (seq, reason) in &self.lost_updates {
            loss.record(format!("serve.worker.update.{seq}"), reason.clone());
        }
        for &i in &self.quarantined_shards {
            loss.record(
                format!("serve.shard.{i}"),
                "permanently quarantined; parked runs never merged",
            );
        }
        loss
    }
}

/// Liveness and loss bookkeeping shared by the handle and the workers.
struct Health {
    live_workers: AtomicUsize,
    lost: Mutex<Vec<(u64, String)>>,
}

impl Health {
    fn record_lost(&self, seq: u64, reason: impl Into<String>) {
        self.lost
            .lock()
            .expect("loss log poisoned")
            .push((seq, reason.into()));
    }
}

/// Configuration for the ingestion pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Ingestor {
    /// Shard-normalization worker threads.
    pub workers: usize,
    /// Capacity of each bounded channel (backpressure threshold).
    pub queue_capacity: usize,
}

impl Default for Ingestor {
    fn default() -> Self {
        Ingestor {
            workers: 2,
            queue_capacity: 8,
        }
    }
}

impl Ingestor {
    /// Starts the pipeline against `store` with no fault injection.
    pub fn spawn(self, store: Arc<HitlistStore>) -> IngestHandle {
        self.spawn_chaos(store, Arc::new(NoChaos))
    }

    /// Starts the pipeline with a chaos source consulted at every fault
    /// site (see the module docs for the site vocabulary).
    pub fn spawn_chaos(self, store: Arc<HitlistStore>, chaos: Arc<dyn Chaos>) -> IngestHandle {
        assert!(self.workers >= 1, "need at least one worker");
        let shard_bits = store.snapshot().shard_count().trailing_zeros();
        let (update_tx, update_rx) = bounded::<(u64, PublicationUpdate)>(self.queue_capacity);
        let (batch_tx, batch_rx) = bounded::<(u64, ShardBatch)>(self.queue_capacity);
        let health = Arc::new(Health {
            live_workers: AtomicUsize::new(self.workers),
            lost: Mutex::new(Vec::new()),
        });

        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let rx = update_rx.clone();
                let tx = batch_tx.clone();
                let chaos = Arc::clone(&chaos);
                let health = Arc::clone(&health);
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    worker_loop(rx, tx, shard_bits, chaos.as_ref(), &health, &store);
                    health.live_workers.fetch_sub(1, Ordering::AcqRel);
                })
            })
            .collect();
        // Drop the originals so the batch channel closes when the last
        // worker exits, which in turn ends the merger loop.
        drop(update_rx);
        drop(batch_tx);

        let merger = {
            let chaos = Arc::clone(&chaos);
            std::thread::spawn(move || merge_loop(store, shard_bits, batch_rx, chaos.as_ref()))
        };

        IngestHandle {
            tx: Some(update_tx),
            next_seq: AtomicU64::new(0),
            health,
            workers,
            merger: Some(merger),
        }
    }
}

/// Normalizes updates, honoring the `serve.worker.update.<seq>` fault
/// site. Returns when the intake closes or an injected panic kills the
/// worker.
fn worker_loop(
    rx: Receiver<(u64, PublicationUpdate)>,
    tx: Sender<(u64, ShardBatch)>,
    shard_bits: u32,
    chaos: &dyn Chaos,
    health: &Health,
    store: &HitlistStore,
) {
    for (seq, update) in rx.iter() {
        let site = format!("serve.worker.update.{seq}");
        let mut attempt = 0u32;
        // Consult through `Chaos::decide` (not the raw script) so every
        // injected fault shows up in the `chaos.decisions.*` counters.
        let survived = loop {
            match chaos.decide(&site, attempt) {
                Fault::None => break true,
                Fault::Stall(d) => {
                    std::thread::sleep(d);
                    break true;
                }
                Fault::Error => {
                    if attempt >= chaos.retry_budget() {
                        health.record_lost(
                            seq,
                            format!("update dropped after {} attempts", attempt + 1),
                        );
                        break false;
                    }
                    attempt += 1;
                }
                Fault::Panic => {
                    // Worker death: the in-flight update is lost and this
                    // thread exits, exactly like a real crashed worker.
                    health.record_lost(seq, "shard worker crashed mid-batch");
                    return;
                }
            }
        };
        if !survived {
            continue;
        }
        let _span = v6obs::span("serve.normalize");
        let started = Instant::now();
        let batch = normalize(update, shard_bits);
        store.metrics().record_normalize_latency(started.elapsed());
        if tx.send((seq, batch)).is_err() {
            return; // merger gone; nothing to do but exit
        }
    }
}

/// The merger outcome: stats plus shards still quarantined at the end.
struct MergeOutcome {
    stats: IngestStats,
    quarantined: Vec<u32>,
}

fn merge_loop(
    store: Arc<HitlistStore>,
    shard_bits: u32,
    batches: Receiver<(u64, ShardBatch)>,
    chaos: &dyn Chaos,
) -> MergeOutcome {
    let name = store.snapshot().name().to_string();
    let shard_count = 1usize << shard_bits;
    let mut acc: Vec<Vec<(u128, u32)>> = vec![Vec::new(); shard_count];
    let mut aliases: Vec<(Prefix, u32)> = Vec::new();
    // Quarantine state: parked runs, consult counts, permanence marks.
    let mut pending: Vec<VecDeque<Vec<(u128, u32)>>> = vec![VecDeque::new(); shard_count];
    let mut attempts: Vec<u32> = vec![0; shard_count];
    let mut poisoned: Vec<bool> = vec![false; shard_count];
    let mut stats = IngestStats::default();
    let shard_site = |i: usize| format!("serve.shard.{i}");

    let drain = |i: usize,
                 pending: &mut Vec<VecDeque<Vec<(u128, u32)>>>,
                 attempts: &mut Vec<u32>,
                 poisoned: &mut Vec<bool>,
                 acc: &mut Vec<Vec<(u128, u32)>>,
                 stats: &mut IngestStats| {
        if pending[i].is_empty() || poisoned[i] {
            return;
        }
        let site = shard_site(i);
        if chaos.fails(&site, attempts[i]) {
            attempts[i] += 1;
            if chaos.is_permanent(&site) {
                poisoned[i] = true;
            }
            return;
        }
        attempts[i] += 1;
        while let Some(run) = pending[i].pop_front() {
            stats.duplicates += merge_run(&mut acc[i], run);
        }
    };

    for (seq, batch) in batches.iter() {
        let _span = v6obs::span("serve.merge");
        let batch_started = Instant::now();
        stats.updates += 1;
        stats.raw_addresses += batch.raw_addresses;
        store.metrics().record_ingested(batch.raw_addresses);
        // Merger back-pressure site: only stalls are meaningful here.
        if let Fault::Stall(d) = chaos.decide(&format!("serve.merger.update.{seq}"), 0) {
            std::thread::sleep(d);
        }
        for (i, run) in batch.per_shard.into_iter().enumerate() {
            if !run.is_empty() {
                pending[i].push_back(run);
            }
            drain(
                i,
                &mut pending,
                &mut attempts,
                &mut poisoned,
                &mut acc,
                &mut stats,
            );
        }
        for (prefix, week) in batch.aliases {
            match aliases.iter_mut().find(|(p, _)| *p == prefix) {
                Some((_, w)) => *w = (*w).min(week),
                None => aliases.push((prefix, week)),
            }
        }
        let missing: Vec<u32> = (0..shard_count)
            .filter(|&i| !pending[i].is_empty())
            .map(|i| i as u32)
            .collect();
        let mut snapshot =
            Snapshot::from_sorted_parts(name.clone(), shard_bits, &acc, &aliases, bloom_default());
        snapshot.missing_shards = missing;
        let degraded = snapshot.is_degraded();
        stats.unique_addresses = snapshot.len();
        if store.publish(snapshot).is_ok() {
            stats.epochs_published += 1;
            stats.degraded_epochs += u64::from(degraded);
        }
        store
            .metrics()
            .record_ingest_batch_latency(batch_started.elapsed());
    }

    // Final flush: retry each quarantined shard until its transient
    // script clears (attempt counts only grow) or it proves permanent.
    let mut recovered = false;
    for i in 0..shard_count {
        while !pending[i].is_empty() && !poisoned[i] {
            let before = pending[i].len();
            drain(
                i,
                &mut pending,
                &mut attempts,
                &mut poisoned,
                &mut acc,
                &mut stats,
            );
            recovered |= pending[i].len() < before;
        }
    }
    let quarantined: Vec<u32> = (0..shard_count)
        .filter(|&i| !pending[i].is_empty())
        .map(|i| i as u32)
        .collect();
    if recovered {
        let mut snapshot =
            Snapshot::from_sorted_parts(name.clone(), shard_bits, &acc, &aliases, bloom_default());
        snapshot.missing_shards = quarantined.clone();
        let degraded = snapshot.is_degraded();
        stats.unique_addresses = snapshot.len();
        if store.publish(snapshot).is_ok() {
            stats.epochs_published += 1;
            stats.degraded_epochs += u64::from(degraded);
        }
    }
    MergeOutcome { stats, quarantined }
}

/// A running ingestion pipeline.
pub struct IngestHandle {
    tx: Option<Sender<(u64, PublicationUpdate)>>,
    next_seq: AtomicU64,
    health: Arc<Health>,
    workers: Vec<JoinHandle<()>>,
    merger: Option<JoinHandle<MergeOutcome>>,
}

impl IngestHandle {
    /// Submits one update, blocking (with periodic liveness checks)
    /// while the pipeline is backlogged.
    ///
    /// Returns an error — instead of blocking forever — when every
    /// shard worker has died or the pipeline is closed. A rejected
    /// update still belongs to the caller and is not counted as lost.
    ///
    /// # Panics
    /// Panics if called after `finish` (a use-after-close wiring bug).
    pub fn submit(&self, update: PublicationUpdate) -> Result<(), IngestError> {
        let tx = self.tx.as_ref().expect("pipeline already finished");
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut msg = (seq, update);
        loop {
            if self.health.live_workers.load(Ordering::Acquire) == 0 {
                return Err(IngestError::WorkersDead);
            }
            match tx.try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Err(IngestError::Closed),
                Err(TrySendError::Full(back)) => {
                    msg = back;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Shard workers still alive (0 after a total worker die-off, and
    /// after a normal `finish` drain).
    pub fn workers_alive(&self) -> usize {
        self.health.live_workers.load(Ordering::Acquire)
    }

    /// Closes the intake, drains in-flight updates, and returns stats.
    pub fn finish(self) -> IngestStats {
        self.finish_report().stats
    }

    /// Closes the intake, drains in-flight updates, and returns the
    /// full accounting, including lost updates and quarantined shards.
    pub fn finish_report(mut self) -> IngestReport {
        self.tx.take(); // close the update channel
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let outcome = self
            .merger
            .take()
            .expect("finish called twice")
            .join()
            .expect("merger thread panicked");
        let mut lost = self.health.lost.lock().expect("loss log poisoned").clone();
        lost.sort_by_key(|&(seq, _)| seq);
        let report = IngestReport {
            stats: outcome.stats,
            lost_updates: lost,
            quarantined_shards: outcome.quarantined,
        };
        // Definitive loss accounting for this run: `chaos.lost_units` is
        // bumped exactly once per lost unit, here (not per retry, so the
        // counter reconciles against `report.loss().len()`).
        v6obs::counter("chaos.lost_units").add(report.loss().len() as u64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;
    use v6chaos::{ScriptedChaos, SiteScript};

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn weekly_updates_accumulate_and_dedup() {
        let store = Arc::new(HitlistStore::new("svc", 4));
        let handle = Ingestor::default().spawn(store.clone());
        handle
            .submit(PublicationUpdate::Week {
                week: 0,
                addresses: vec![addr("2001:db8:1::1"), addr("2001:db8:2::1")],
            })
            .unwrap();
        handle
            .submit(PublicationUpdate::Week {
                week: 1,
                addresses: vec![addr("2001:db8:1::1"), addr("2001:db8:3::1")],
            })
            .unwrap();
        handle
            .submit(PublicationUpdate::Aliases {
                week: 1,
                prefixes: vec!["2001:db8:3::/48".parse().unwrap()],
            })
            .unwrap();
        let stats = handle.finish();

        assert_eq!(stats.updates, 3);
        assert_eq!(stats.raw_addresses, 4);
        assert_eq!(stats.unique_addresses, 3);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.epochs_published, 3);
        assert_eq!(stats.degraded_epochs, 0);

        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 3);
        // Re-published address keeps its first week.
        assert_eq!(snap.first_week(addr("2001:db8:1::1")), Some(0));
        assert_eq!(snap.first_week(addr("2001:db8:3::1")), Some(1));
        assert!(snap.is_aliased(addr("2001:db8:3::42")));
        assert!(snap.verify_integrity());
        assert!(!snap.is_degraded());
    }

    #[test]
    fn passive_observations_map_to_weeks() {
        let store = Arc::new(HitlistStore::new("svc", 1));
        let handle = Ingestor {
            workers: 1,
            queue_capacity: 2,
        }
        .spawn(store.clone());
        let bits = u128::from(addr("2001:db8::1"));
        handle
            .submit(PublicationUpdate::Passive {
                observations: vec![(bits, 0), (bits, 8 * 86_400)],
            })
            .unwrap();
        let stats = handle.finish();
        assert_eq!(stats.unique_addresses, 1);
        // Both observations are week 0 / week 1; earliest wins.
        assert_eq!(store.snapshot().first_week(addr("2001:db8::1")), Some(0));
    }

    #[test]
    fn merge_run_keeps_earliest_week() {
        let mut acc = vec![(1u128, 5u32), (3, 1)];
        let dup = merge_run(&mut acc, vec![(1, 2), (2, 9), (3, 4)]);
        assert_eq!(dup, 2);
        assert_eq!(acc, vec![(1, 2), (2, 9), (3, 1)]);
    }

    #[test]
    fn transient_worker_errors_retry_and_lose_nothing() {
        let store = Arc::new(HitlistStore::new("svc", 2));
        let chaos = ScriptedChaos::new()
            .with("serve.worker.update.0", SiteScript::transient(2))
            .with("serve.worker.update.1", SiteScript::transient(1));
        let handle = Ingestor {
            workers: 1,
            queue_capacity: 4,
        }
        .spawn_chaos(store.clone(), Arc::new(chaos));
        for week in 0..3u64 {
            handle
                .submit(PublicationUpdate::Week {
                    week,
                    addresses: vec![addr(&format!("2001:db8:{week}::1"))],
                })
                .unwrap();
        }
        let report = handle.finish_report();
        assert!(report.is_complete(), "{:?}", report);
        assert!(report.loss().is_empty());
        assert_eq!(report.stats.updates, 3);
        assert_eq!(store.snapshot().len(), 3);
    }

    #[test]
    fn submit_errors_when_all_workers_die() {
        let store = Arc::new(HitlistStore::new("svc", 2));
        let chaos =
            ScriptedChaos::new().with("serve.worker.update.0", SiteScript::permanent_panic());
        let handle = Ingestor {
            workers: 1,
            queue_capacity: 1,
        }
        .spawn_chaos(store.clone(), Arc::new(chaos));
        handle
            .submit(PublicationUpdate::Week {
                week: 0,
                addresses: vec![addr("2001:db8::1")],
            })
            .unwrap();
        // The sole worker dies on update 0; without the liveness check
        // this next submit would block forever once the queue filled.
        while handle.workers_alive() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut refused = false;
        for week in 1..4u64 {
            if handle
                .submit(PublicationUpdate::Week {
                    week,
                    addresses: vec![addr("2001:db8::2")],
                })
                .is_err()
            {
                refused = true;
                break;
            }
        }
        assert!(refused, "dead pipeline kept accepting updates");
        let report = handle.finish_report();
        assert_eq!(report.lost_updates.len(), 1);
        assert_eq!(report.lost_updates[0].0, 0);
        assert!(report.loss().contains("serve.worker.update.0"));
    }
}
