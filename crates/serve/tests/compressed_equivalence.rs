//! Equivalence proofs for the compressed tiered store.
//!
//! The compressed-run representation (and the optional bloom front) is
//! a pure representation change: every query a snapshot answers must be
//! byte-identical to what a plain sorted `Vec<(u128, u32)>` oracle
//! answers, and the content checksum must equal the oracle's fold. The
//! generators skew addresses into a handful of shared /48s so runs
//! actually compress (many low-64 suffixes per high-64 key) while still
//! exercising the sparse tail.

use std::collections::BTreeMap;
use std::net::Ipv6Addr;

use proptest::prelude::*;

use v6addr::Prefix;
use v6serve::{BlockedBloom, Membership, SnapshotBuilder};

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Strategy: addresses concentrated in 32 /48s with a couple of subnet
/// planes each, so most pairs share their high-64 key.
fn clustered_bits() -> impl Strategy<Value = u128> {
    (0u128..32, 0u128..4, 0u128..512).prop_map(|(net48, subnet, iid)| {
        (0x2001_0db8u128 << 96) | (net48 << 80) | (subnet << 64) | iid
    })
}

/// The sorted-vec oracle: earliest week per distinct address.
fn oracle(entries: &[(u128, u32)]) -> BTreeMap<u128, u32> {
    let mut m = BTreeMap::new();
    for &(bits, week) in entries {
        m.entry(bits)
            .and_modify(|w: &mut u32| *w = (*w).min(week))
            .or_insert(week);
    }
    m
}

/// The snapshot's order-independent content checksum, recomputed from
/// first principles over the oracle (mirrors `fold_addr`).
fn oracle_checksum(oracle: &BTreeMap<u128, u32>) -> u64 {
    oracle.iter().fold(0u64, |acc, (&bits, &week)| {
        let mixed = (bits as u64)
            ^ ((bits >> 64) as u64).rotate_left(17)
            ^ u64::from(week).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        acc.wrapping_add(mixed.wrapping_mul(0xbf58_476d_1ce4_e5b9) | 1)
    })
}

fn build(entries: &[(u128, u32)], shards: usize, bloom: bool) -> v6serve::Snapshot {
    let mut b = SnapshotBuilder::new("equiv", shards).with_bloom(bloom);
    for &(bits, week) in entries {
        b.add_bits(bits, week);
    }
    b.build()
}

proptest! {
    /// Every query the compressed snapshot answers equals the oracle,
    /// for every shard count, with and without the bloom front — and
    /// the checksum equals the oracle fold in all configurations.
    #[test]
    fn compressed_store_matches_sorted_vec_oracle(
        entries in proptest::collection::vec((clustered_bits(), 0u32..8), 1..300),
        probes in proptest::collection::vec(clustered_bits(), 0..64),
        since in 0u64..10,
    ) {
        let oracle = oracle(&entries);
        let expect_checksum = oracle_checksum(&oracle);
        for &shards in &SHARD_COUNTS {
            for bloom in [false, true] {
                let snap = build(&entries, shards, bloom);
                prop_assert!(snap.verify_integrity());
                prop_assert_eq!(snap.has_bloom(), bloom);
                prop_assert_eq!(snap.len(), oracle.len() as u64);
                prop_assert_eq!(snap.content_checksum(), expect_checksum);

                for (&bits, &week) in &oracle {
                    let a = Ipv6Addr::from(bits);
                    prop_assert!(snap.membership(a).is_present());
                    prop_assert_eq!(snap.first_week(a), Some(week));
                }
                for &bits in &probes {
                    let a = Ipv6Addr::from(bits);
                    prop_assert_eq!(
                        snap.membership(a).is_present(),
                        oracle.contains_key(&bits)
                    );
                    prop_assert_eq!(
                        snap.first_week(a),
                        oracle.get(&bits).copied()
                    );
                    let p48 = Prefix::of(a, 48);
                    let mask = Prefix::mask(48);
                    let net = bits & mask;
                    prop_assert_eq!(
                        snap.count_within(&p48),
                        oracle.keys().filter(|&&k| k & mask == net).count() as u64
                    );
                }
                // A covering short prefix counts everything.
                let all = Prefix::new(Ipv6Addr::from(0x2001_0db8u128 << 96), 32);
                prop_assert_eq!(snap.count_within(&all), oracle.len() as u64);
                prop_assert_eq!(
                    snap.new_since(since),
                    oracle.values().filter(|&&w| u64::from(w) > since).count() as u64
                );
            }
        }
    }

    /// The bloom front never flips an answer: outcomes carry bloom
    /// accounting but `is_present` matches the exact tier, and a
    /// present address is never `BloomFiltered` (no false negatives).
    #[test]
    fn bloom_front_never_changes_answers(
        entries in proptest::collection::vec((clustered_bits(), 0u32..8), 1..200),
        probes in proptest::collection::vec(clustered_bits(), 1..64),
    ) {
        let plain = build(&entries, 4, false);
        let fronted = build(&entries, 4, true);
        prop_assert_eq!(plain.content_checksum(), fronted.content_checksum());
        for &bits in &probes {
            let a = Ipv6Addr::from(bits);
            let exact = plain.membership(a);
            let bloomy = fronted.membership(a);
            prop_assert_eq!(exact.is_present(), bloomy.is_present());
            if exact.is_present() {
                prop_assert!(
                    !matches!(bloomy, Membership::BloomFiltered),
                    "bloom front false-negatived a present address"
                );
            }
            match exact {
                Membership::Present { rank, .. } => {
                    prop_assert_eq!(bloomy, Membership::Present { rank, bloom_checked: true });
                }
                // Empty shards build no bloom front, so an absent probe
                // may come back unchecked (`bloom_checked: false`).
                _ => prop_assert!(matches!(
                    bloomy,
                    Membership::BloomFiltered | Membership::Absent { .. }
                )),
            }
        }
    }
}

/// The blocked bloom's observed false-positive rate stays within an
/// order of magnitude of the theoretical bound for 16 bits/key with 6
/// probes (~0.1%); blocked layouts trade a little precision for
/// single-cache-line probes, so the gate is a conservative 2%.
#[test]
fn bloom_false_positive_rate_is_bounded() {
    const KEYS: u64 = 100_000;
    const PROBES: u64 = 100_000;
    // Keys on the even plane, probes on the odd plane: disjoint by
    // construction, so every `may_contain` hit is a false positive.
    let member = |i: u64| (0x2001_0db8u128 << 96) | (u128::from(i) << 1);
    let absent = |i: u64| (0x2001_0db8u128 << 96) | (u128::from(i) << 1) | 1;
    let bloom = BlockedBloom::build(0xf00d, (0..KEYS).map(member), KEYS as usize);
    for i in 0..KEYS {
        assert!(bloom.may_contain(member(i)), "false negative at key {i}");
    }
    let false_positives = (0..PROBES)
        .filter(|&i| bloom.may_contain(absent(i)))
        .count();
    let rate = false_positives as f64 / PROBES as f64;
    assert!(
        rate < 0.02,
        "false-positive rate {rate:.4} exceeds the 2% bound ({false_positives}/{PROBES})"
    );
}
