//! Chaos suite for the serving path: shard quarantine, degraded-epoch
//! publication, recovery, and loss accounting.
//!
//! Uses a 2-shard store so shard targeting is explicit: with
//! `shard_bits = 1`, `2001:db8:0::/48` lands in shard 0 and
//! `2001:db8:1::/48` in shard 1 (the shard key is the low bits of the
//! /48).

use std::net::Ipv6Addr;
use std::sync::Arc;

use v6chaos::{ScriptedChaos, SiteScript};
use v6serve::{HitlistStore, Ingestor, PublicationUpdate, QueryEngine, ServeStatus};

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// One weekly update carrying one address per shard.
fn week(w: u64) -> PublicationUpdate {
    PublicationUpdate::Week {
        week: w,
        addresses: vec![
            addr(&format!("2001:db8:0::{}", w + 1)),
            addr(&format!("2001:db8:1::{}", w + 1)),
        ],
    }
}

/// The clean run's final content checksum for `n` weeks of [`week`].
fn clean_checksum(n: u64) -> u64 {
    let store = Arc::new(HitlistStore::new("chaos", 2));
    let handle = Ingestor::default().spawn(store.clone());
    for w in 0..n {
        handle.submit(week(w)).expect("clean pipeline alive");
    }
    let stats = handle.finish();
    assert_eq!(stats.degraded_epochs, 0);
    store.snapshot().content_checksum()
}

#[test]
fn quarantined_shard_recovers_mid_run_to_the_clean_checksum() {
    let clean = clean_checksum(3);
    let store = Arc::new(HitlistStore::new("chaos", 2));
    // Shard 1's first two merge consults fail; the third drains the
    // whole quarantine while updates are still flowing.
    let chaos = ScriptedChaos::new().with("serve.shard.1", SiteScript::transient(2));
    let handle = Ingestor {
        workers: 1,
        queue_capacity: 4,
    }
    .spawn_chaos(store.clone(), Arc::new(chaos));
    for w in 0..3 {
        handle.submit(week(w)).expect("pipeline alive");
    }
    let report = handle.finish_report();

    assert!(report.is_complete(), "{report:?}");
    assert!(report.loss().is_empty());
    assert_eq!(report.stats.epochs_published, 3);
    assert_eq!(report.stats.degraded_epochs, 2);
    assert_eq!(store.metrics().degraded_publishes(), 2);

    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert!(!snap.is_degraded());
    assert_eq!(snap.content_checksum(), clean);
}

#[test]
fn quarantined_shard_recovers_in_the_final_flush() {
    let clean = clean_checksum(3);
    let store = Arc::new(HitlistStore::new("chaos", 2));
    // Five failing consults outlast the three in-stream batches, so the
    // shard is still quarantined when the intake closes; the finish
    // flush keeps retrying, drains it, and publishes a recovery epoch.
    let chaos = ScriptedChaos::new().with("serve.shard.1", SiteScript::transient(5));
    let handle = Ingestor {
        workers: 1,
        queue_capacity: 4,
    }
    .spawn_chaos(store.clone(), Arc::new(chaos));
    for w in 0..3 {
        handle.submit(week(w)).expect("pipeline alive");
    }
    let report = handle.finish_report();

    assert!(report.is_complete(), "{report:?}");
    assert_eq!(
        report.stats.epochs_published, 4,
        "missing the recovery epoch"
    );
    assert_eq!(report.stats.degraded_epochs, 3);

    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert!(!snap.is_degraded(), "recovery epoch still degraded");
    assert_eq!(snap.epoch(), 4);
    assert_eq!(snap.content_checksum(), clean);
}

#[test]
fn permanent_quarantine_serves_degraded_epochs_and_accounts_the_loss() {
    let store = Arc::new(HitlistStore::new("chaos", 2));
    let chaos = ScriptedChaos::new().with("serve.shard.1", SiteScript::permanent());
    let handle = Ingestor {
        workers: 1,
        queue_capacity: 4,
    }
    .spawn_chaos(store.clone(), Arc::new(chaos));

    // Week 0 touches only shard 0: the poisoned shard has no pending
    // runs yet, so epoch 1 publishes healthy.
    handle
        .submit(PublicationUpdate::Week {
            week: 0,
            addresses: vec![addr("2001:db8:0::1")],
        })
        .expect("pipeline alive");
    // Week 1 touches both shards: shard 1's run is parked forever, the
    // epoch publishes with shard 0's update and shard 1 marked stale.
    handle.submit(week(1)).expect("pipeline alive");
    let report = handle.finish_report();

    assert!(!report.is_complete());
    assert_eq!(report.quarantined_shards, vec![1]);
    assert!(report.lost_updates.is_empty());
    let loss = report.loss().to_string();
    assert!(
        loss.starts_with("LOST serve.shard.1 ("),
        "unexpected loss report: {loss}"
    );
    assert_eq!(report.stats.epochs_published, 2);
    assert_eq!(report.stats.degraded_epochs, 1);

    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert_eq!(snap.missing_shards(), &[1]);
    assert_eq!(
        snap.status(),
        ServeStatus::Degraded {
            missing_shards: vec![1]
        }
    );

    // Readers keep getting answers: shard 0 reflects the latest epoch,
    // shard 1 serves its last good (here: empty) content and every
    // answer touching it is flagged degraded.
    let engine = QueryEngine::new(store.clone());
    assert_eq!(
        engine.status(),
        ServeStatus::Degraded {
            missing_shards: vec![1]
        }
    );
    let fresh = engine.lookup(addr("2001:db8:0::2"));
    assert!(fresh.present && !fresh.degraded);
    let prior = engine.lookup(addr("2001:db8:0::1"));
    assert!(prior.present && !prior.degraded);
    let stale = engine.lookup(addr("2001:db8:1::2"));
    assert!(!stale.present && stale.degraded);

    let batch = engine.batch_lookup(&[
        addr("2001:db8:0::1"),
        addr("2001:db8:0::2"),
        addr("2001:db8:1::2"),
    ]);
    assert_eq!(batch.present, 2);
    assert_eq!(
        batch.status,
        ServeStatus::Degraded {
            missing_shards: vec![1]
        }
    );
}

#[test]
fn worker_death_loses_only_the_in_flight_update() {
    let store = Arc::new(HitlistStore::new("chaos", 2));
    // Two workers; the one that picks up update 1 crashes mid-batch.
    let chaos = ScriptedChaos::new().with("serve.worker.update.1", SiteScript::permanent_panic());
    let handle = Ingestor {
        workers: 2,
        queue_capacity: 8,
    }
    .spawn_chaos(store.clone(), Arc::new(chaos));
    for w in 0..4 {
        handle.submit(week(w)).expect("one worker still alive");
    }
    let report = handle.finish_report();

    assert_eq!(report.lost_updates.len(), 1);
    assert_eq!(report.lost_updates[0].0, 1);
    assert!(report.loss().contains("serve.worker.update.1"));
    assert!(report.quarantined_shards.is_empty());
    assert_eq!(report.stats.updates, 3, "surviving updates all merged");

    // The surviving updates' addresses are all served.
    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert!(!snap.is_degraded());
    // week(w) publishes ::{w+1} in both shards; week 1 was lost.
    let engine = QueryEngine::new(store);
    for w in [0u64, 2, 3] {
        assert!(
            engine.contains(addr(&format!("2001:db8:0::{}", w + 1))),
            "week {w}"
        );
        assert!(
            engine.contains(addr(&format!("2001:db8:1::{}", w + 1))),
            "week {w}"
        );
    }
    assert!(!engine.contains(addr("2001:db8:0::2")), "lost week served");
}
