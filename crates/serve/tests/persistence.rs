//! Durability round-trip and kill-and-recover suite for the serving
//! store.
//!
//! The two acceptance properties of the write-ahead design:
//!
//! 1. **Round trip**: publish N epochs, drop the store, recover — the
//!    content checksum is byte-identical at *every* epoch (via
//!    time-travel recovery over the un-compacted log), not just the
//!    newest.
//! 2. **Crash invariant**: for every injected crash point (torn write,
//!    partial flush, bit rot), recovery yields a `content_checksum`
//!    equal to some epoch that was previously published — never a torn
//!    or invented state — and the truncate/quarantine report matches
//!    the injected fault.

use std::net::Ipv6Addr;
use std::sync::Arc;

use v6chaos::{ScriptedChaos, SiteScript};
use v6serve::{
    HitlistStore, Ingestor, PublicationUpdate, PublishError, QueryEngine, SnapshotBuilder,
    StoreConfig,
};

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// Cumulative snapshot holding weeks `0..=week`, two addresses per week.
fn snapshot_through(week: u32, shards: usize) -> v6serve::Snapshot {
    let mut b = SnapshotBuilder::new("persist", shards);
    for w in 0..=week {
        b.add_address(addr(&format!("2001:db8:{:x}::1", w)), w);
        b.add_address(addr(&format!("2001:db8:{:x}::2", w)), w);
    }
    b.add_alias("2001:db8::/32".parse().unwrap(), 0);
    b.build()
}

#[test]
fn round_trip_preserves_every_epoch_checksum() {
    let dir = v6store::scratch_dir("serve-roundtrip");
    // No compaction: the full delta history stays in the log so every
    // epoch is reachable by time-travel recovery.
    let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
    let store = HitlistStore::persistent("persist", 4, cfg.clone()).unwrap();

    let mut published = vec![(0u64, 0u64)]; // (epoch, checksum): epoch 0 = empty
    for week in 0..6u32 {
        let snap = snapshot_through(week, 4);
        let checksum = snap.content_checksum();
        let receipt = store.publish(snap).unwrap();
        assert!(receipt.persist > std::time::Duration::ZERO);
        published.push((receipt.epoch, checksum));
    }
    assert_eq!(store.epoch(), 6);
    drop(store); // crash

    // Byte-identical checksum at every epoch.
    for &(epoch, checksum) in &published {
        let rec = v6store::recover_at(&dir, epoch).unwrap();
        assert_eq!(rec.state.epoch, epoch);
        assert_eq!(
            rec.state.content_checksum, checksum,
            "epoch {epoch} checksum diverged after recovery"
        );
    }

    // Full store recovery resumes serving and publishing.
    let (store, report) = HitlistStore::recover(cfg).unwrap();
    assert_eq!(report.recovered_epoch, 6);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(report.quarantined, 0);
    assert!(store.is_persistent());
    let snap = store.snapshot();
    assert!(snap.verify_integrity());
    assert_eq!(snap.epoch(), 6);
    assert_eq!(snap.content_checksum(), published[6].1);

    let engine = QueryEngine::new(Arc::new(store));
    let ans = engine.lookup(addr("2001:db8:3::1"));
    assert!(ans.present);
    assert_eq!(ans.first_week, Some(3));
    assert!(ans.alias.is_some(), "alias registrations survive recovery");

    // Publication continues with the epoch sequence intact.
    let store = engine.store();
    let receipt = store.publish(snapshot_through(6, 4)).unwrap();
    assert_eq!(receipt.epoch, 7);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpointed_store_recovers_identically() {
    let dir = v6store::scratch_dir("serve-ckpt");
    let cfg = StoreConfig::new(&dir).checkpoint_every(3).with_fsync(false);
    let store = HitlistStore::persistent("persist", 2, cfg.clone()).unwrap();
    let mut last = 0u64;
    for week in 0..8u32 {
        let snap = snapshot_through(week, 2);
        last = snap.content_checksum();
        store.publish(snap).unwrap();
    }
    drop(store);

    let (store, report) = HitlistStore::recover(cfg).unwrap();
    assert_eq!(report.checkpoint_epoch, Some(6), "interval-3 compaction");
    assert_eq!(report.replayed, 2, "epochs 7 and 8 replay from the log");
    assert_eq!(store.epoch(), 8);
    assert_eq!(store.snapshot().content_checksum(), last);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn failed_append_keeps_the_store_on_its_previous_epoch() {
    let dir = v6store::scratch_dir("serve-fail");
    let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
    let chaos = ScriptedChaos::new().with("store.append.2", SiteScript::transient(1));
    let store = HitlistStore::persistent_with("persist", 2, cfg.clone(), Arc::new(chaos)).unwrap();

    let first = snapshot_through(0, 2);
    let first_checksum = first.content_checksum();
    store.publish(first).unwrap();

    // The write-ahead append for epoch 2 tears: the publish fails and
    // readers never see the would-be epoch.
    let err = store.publish(snapshot_through(1, 2)).unwrap_err();
    assert!(matches!(err, PublishError::Persistence(_)), "{err}");
    assert_eq!(store.epoch(), 1);
    assert_eq!(store.snapshot().content_checksum(), first_checksum);

    // The store stays usable: the next publish burns epoch 2 and lands
    // as epoch 3 (the torn bytes are self-healed before the append).
    let third = snapshot_through(1, 2);
    let third_checksum = third.content_checksum();
    let receipt = store.publish(third).unwrap();
    assert_eq!(receipt.epoch, 3);
    drop(store);

    let (store, report) = HitlistStore::recover(cfg).unwrap();
    assert_eq!(store.epoch(), 3);
    assert_eq!(store.snapshot().content_checksum(), third_checksum);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.truncated_bytes, 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn bitrot_recovery_lands_on_the_last_good_published_epoch() {
    let dir = v6store::scratch_dir("serve-rot");
    let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
    let chaos = ScriptedChaos::new().with("store.bitrot.2", SiteScript::transient(1));
    let store = HitlistStore::persistent_with("persist", 2, cfg.clone(), Arc::new(chaos)).unwrap();

    let first = snapshot_through(0, 2);
    let first_checksum = first.content_checksum();
    store.publish(first).unwrap();
    // Epoch 2's frame is silently corrupted on disk; the publish itself
    // succeeds and readers serve it from RAM until the "crash".
    store.publish(snapshot_through(1, 2)).unwrap();
    assert_eq!(store.epoch(), 2);
    drop(store);

    let (store, report) = HitlistStore::recover(cfg).unwrap();
    assert_eq!(report.quarantined, 1, "rotten frame must be quarantined");
    assert_eq!(
        store.epoch(),
        1,
        "recovery falls back to the last good epoch"
    );
    assert_eq!(store.snapshot().content_checksum(), first_checksum);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn ingest_pipeline_drives_a_persistent_store() {
    let dir = v6store::scratch_dir("serve-ingest");
    let cfg = StoreConfig::new(&dir).checkpoint_every(0).with_fsync(false);
    let store = Arc::new(HitlistStore::persistent("persist", 2, cfg.clone()).unwrap());
    let handle = Ingestor::default().spawn(store.clone());
    for w in 0..3u64 {
        handle
            .submit(PublicationUpdate::Week {
                week: w,
                addresses: vec![
                    addr(&format!("2001:db8:0::{}", w + 1)),
                    addr(&format!("2001:db8:1::{}", w + 1)),
                ],
            })
            .expect("pipeline alive");
    }
    let stats = handle.finish();
    assert_eq!(stats.epochs_published, 3);
    let final_checksum = store.snapshot().content_checksum();
    drop(store);

    let (store, _) = HitlistStore::recover(cfg).unwrap();
    assert_eq!(store.epoch(), 3);
    assert_eq!(store.snapshot().content_checksum(), final_checksum);
    assert!(store.snapshot().contains(addr("2001:db8:0::3")));
    std::fs::remove_dir_all(dir).ok();
}
