//! Property tests for the sharded snapshot store.
//!
//! The invariants hold for every shard count: any address added to a
//! snapshot is found (with its earliest week), addresses never added are
//! not found, and all shardings answer every query identically.

use std::net::Ipv6Addr;
use std::sync::Arc;

use proptest::prelude::*;

use v6addr::Prefix;
use v6serve::{HitlistStore, QueryEngine, SnapshotBuilder};

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Strategy: a global-unicast-ish address with entropy concentrated in
/// the /48 and IID bits so collisions and shared prefixes both happen.
fn addr_bits() -> impl Strategy<Value = u128> {
    (0u128..64, 0u128..256).prop_map(|(net48, iid)| (0x2001_0db8u128 << 96) | (net48 << 80) | iid)
}

fn engines_for(entries: &[(u128, u32)]) -> Vec<QueryEngine> {
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let store = HitlistStore::new("prop", shards);
            let mut b = SnapshotBuilder::new("prop", shards);
            for &(bits, week) in entries {
                b.add_bits(bits, week);
            }
            store.publish(b.build()).unwrap();
            QueryEngine::new(Arc::new(store))
        })
        .collect()
}

proptest! {
    #[test]
    fn present_found_absent_not(
        entries in proptest::collection::vec((addr_bits(), 0u32..8), 0..200),
        probes in proptest::collection::vec(addr_bits(), 0..50),
    ) {
        let engines = engines_for(&entries);
        for engine in &engines {
            let snap = engine.store().snapshot();
            prop_assert!(snap.verify_integrity());
            prop_assert_eq!(
                snap.len(),
                entries.iter().map(|(b, _)| b).collect::<std::collections::BTreeSet<_>>().len() as u64
            );
            // Every inserted address is present with its earliest week.
            for &(bits, _) in &entries {
                let a = Ipv6Addr::from(bits);
                prop_assert!(engine.contains(a));
                let earliest = entries
                    .iter()
                    .filter(|&&(b, _)| b == bits)
                    .map(|&(_, w)| w)
                    .min()
                    .unwrap();
                prop_assert_eq!(engine.lookup(a).first_week, Some(earliest));
            }
            // Probes not inserted are absent.
            for &bits in &probes {
                if !entries.iter().any(|&(b, _)| b == bits) {
                    prop_assert!(!engine.contains(Ipv6Addr::from(bits)));
                }
            }
        }
    }

    #[test]
    fn all_shard_counts_answer_identically(
        entries in proptest::collection::vec((addr_bits(), 0u32..8), 1..150),
        probes in proptest::collection::vec(addr_bits(), 1..50),
        week in 0u64..10,
    ) {
        let engines = engines_for(&entries);
        let reference = &engines[0];
        for engine in &engines[1..] {
            for &bits in &probes {
                let a = Ipv6Addr::from(bits);
                prop_assert_eq!(engine.contains(a), reference.contains(a));
                prop_assert_eq!(engine.lookup(a).first_week, reference.lookup(a).first_week);
                let p = Prefix::of(a, 48);
                prop_assert_eq!(engine.count_within(&p), reference.count_within(&p));
            }
            prop_assert_eq!(engine.new_since(week), reference.new_since(week));
            prop_assert_eq!(
                engine.store().snapshot().len(),
                reference.store().snapshot().len()
            );
        }
    }

    #[test]
    fn aliases_filter_membership(
        entries in proptest::collection::vec((addr_bits(), 0u32..4), 1..100),
        alias_net in 0u128..64,
    ) {
        let alias = Prefix::new(
            Ipv6Addr::from((0x2001_0db8u128 << 96) | (alias_net << 80)),
            48,
        );
        for &shards in &SHARD_COUNTS {
            let store = HitlistStore::new("prop", shards);
            let mut b = SnapshotBuilder::new("prop", shards);
            for &(bits, week) in &entries {
                b.add_bits(bits, week);
            }
            b.add_alias(alias, 0);
            store.publish(b.build()).unwrap();
            let engine = QueryEngine::new(Arc::new(store));
            for &(bits, _) in &entries {
                let a = Ipv6Addr::from(bits);
                prop_assert!(engine.contains(a));
                let expect_aliased = alias.contains(a);
                prop_assert_eq!(engine.lookup(a).alias.is_some(), expect_aliased);
                prop_assert_eq!(engine.contains_unaliased(a), !expect_aliased);
            }
        }
    }
}
