//! Property-based tests for the synthetic Internet's core invariants.

use std::sync::OnceLock;

use proptest::prelude::*;
use v6netsim::{AttachKind, IndexPermutation, Resolution, SimTime, World, WorldConfig};

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| World::build(WorldConfig::tiny(), 0xFEED))
}

proptest! {
    /// The keyed permutation is a bijection for arbitrary domains/keys.
    #[test]
    fn permutation_bijective(n in 1u64..5000, key in any::<u64>(), probe in any::<u64>()) {
        let p = IndexPermutation::new(n, key);
        let i = probe % n;
        prop_assert!(p.apply(i) < n);
        prop_assert_eq!(p.invert(p.apply(i)), i);
    }

    /// Forward address computation and inverse resolution agree for any
    /// device at any time: if a device presents an address, resolving
    /// that address at the same instant finds the device (or the alias
    /// front covering it).
    #[test]
    fn forward_inverse_roundtrip(dev_sel in any::<u32>(), t_secs in 0u64..=18_835_200) {
        let w = world();
        let t = SimTime(t_secs);
        let id = v6netsim::DeviceId(dev_sel % w.device_count() as u32);
        if let Some((addr, _as_index)) = w.contact_addr_at(id, t) {
            match w.resolve(addr, t) {
                Resolution::HomeDevice { device, .. }
                | Resolution::MobileDevice(device)
                | Resolution::CpeWan { device, .. }
                | Resolution::Server(device)
                | Resolution::Router(device) => prop_assert_eq!(device, id),
                Resolution::Alias => {} // alias-fronted AS answers for it
                other => prop_assert!(false, "{:?} for {} at {}", other, addr, t),
            }
        }
    }

    /// An address a device holds at time t is NOT attributed to any
    /// *other* device at the same time (no address collisions).
    #[test]
    fn no_address_collisions(a in any::<u32>(), b in any::<u32>(), t_secs in 0u64..=18_835_200) {
        let w = world();
        let t = SimTime(t_secs);
        let da = v6netsim::DeviceId(a % w.device_count() as u32);
        let db = v6netsim::DeviceId(b % w.device_count() as u32);
        if da != db {
            let aa = w.contact_addr_at(da, t).map(|(x, _)| x);
            let ab = w.contact_addr_at(db, t).map(|(x, _)| x);
            if let (Some(x), Some(y)) = (aa, ab) {
                prop_assert_ne!(x, y, "devices {:?} and {:?} share {}", da, db, x);
            }
        }
    }

    /// Attachment is consistent with the produced address family: WiFi
    /// contacts use the home address, cellular contacts the cellular one.
    #[test]
    fn attachment_consistency(dev_sel in any::<u32>(), t_secs in 0u64..=18_835_200) {
        let w = world();
        let t = SimTime(t_secs);
        let id = v6netsim::DeviceId(dev_sel % w.device_count() as u32);
        if let Some((addr, _)) = w.contact_addr_at(id, t) {
            match w.attachment_at(id, t) {
                AttachKind::HomeWifi => prop_assert_eq!(Some(addr), w.home_addr_at(id, t)),
                AttachKind::Cellular => prop_assert_eq!(Some(addr), w.cellular_addr_at(id, t)),
                AttachKind::Fixed => {
                    prop_assert_eq!(Some(addr), w.device(id).fixed_addr)
                }
            }
        }
    }

    /// Probing is idempotent within a 10-minute window and never panics
    /// for arbitrary addresses in the 2a00::/16 plane.
    #[test]
    fn probe_total_and_stable(bits in any::<u128>(), t_secs in 0u64..=18_835_200, ttl in 1u8..32) {
        let w = world();
        let t = SimTime(t_secs);
        let addr = std::net::Ipv6Addr::from((0x2a00u128 << 112) | (bits >> 16));
        let o1 = w.probe_ttl(0, addr, ttl, t);
        let o2 = w.probe_ttl(0, addr, ttl, t);
        prop_assert_eq!(o1, o2);
    }

    /// Network prefixes at one instant are disjoint across networks of
    /// the same AS (no two customers hold the same delegation).
    #[test]
    fn delegations_disjoint(i in any::<u32>(), j in any::<u32>(), t_secs in 0u64..=18_835_200) {
        let w = world();
        let t = SimTime(t_secs);
        let a = (i % w.networks.len() as u32) as usize;
        let b = (j % w.networks.len() as u32) as usize;
        if a != b && w.networks[a].as_index == w.networks[b].as_index {
            let pa = w.network_prefix_at(a as u32, t);
            let pb = w.network_prefix_at(b as u32, t);
            prop_assert_ne!(pa, pb);
        }
    }
}
