//! Countries of the synthetic Internet.
//!
//! The paper's corpus skews heavily toward a handful of countries — India
//! (1.9 B), China (1.6 B), US (1.2 B), Brazil (700 M) and Indonesia (630 M)
//! together account for 76% of addresses (§3). The registry below encodes
//! those weights, continent assignments used by the NTP Pool's geo-DNS,
//! and a coarse centroid used by the wardriving/geolocation substrate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An ISO-3166-1 alpha-2 country code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Country(pub [u8; 2]);

impl Country {
    /// Builds a country code from a two-letter ASCII string.
    ///
    /// # Panics
    /// Panics if `code` is not exactly two ASCII uppercase letters.
    pub fn new(code: &str) -> Self {
        let b = code.as_bytes();
        assert!(
            b.len() == 2 && b.iter().all(|c| c.is_ascii_uppercase()),
            "bad country code {code:?}"
        );
        Country([b[0], b[1]])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("country codes are ASCII")
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Country({})", self.as_str())
    }
}

/// Continent grouping used by pool geo-DNS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// Africa.
    Africa,
    /// Asia.
    Asia,
    /// Europe.
    Europe,
    /// North America.
    NorthAmerica,
    /// Oceania.
    Oceania,
    /// South America.
    SouthAmerica,
}

/// Static facts about one country in the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryInfo {
    /// ISO code.
    pub code: Country,
    /// Continent for geo-DNS grouping.
    pub continent: Continent,
    /// Share of the world's NTP-visible client population (sums to 1).
    pub client_weight: f64,
    /// Coarse geographic centroid (degrees), for the geolocation substrate.
    pub centroid: (f64, f64),
}

/// The registry of all modeled countries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryRegistry {
    countries: Vec<CountryInfo>,
}

impl CountryRegistry {
    /// Builds the default registry mirroring the paper's country mix.
    ///
    /// Top five (IN, CN, US, BR, ID) carry 76% of the client weight; the
    /// remainder is spread over a long tail that includes every vantage
    /// point country from §3.
    pub fn builtin() -> Self {
        use Continent::*;
        // (code, continent, weight, lat, lon)
        let raw: &[(&str, Continent, f64, f64, f64)] = &[
            ("IN", Asia, 0.240, 21.0, 78.0),
            ("CN", Asia, 0.200, 35.0, 104.0),
            ("US", NorthAmerica, 0.150, 39.0, -98.0),
            ("BR", SouthAmerica, 0.088, -10.0, -52.0),
            ("ID", Asia, 0.080, -2.0, 118.0),
            // Long tail, includes all 20 VP countries from §3.
            ("DE", Europe, 0.040, 51.0, 10.0),
            ("JP", Asia, 0.022, 36.0, 138.0),
            ("GB", Europe, 0.018, 54.0, -2.0),
            ("FR", Europe, 0.016, 46.0, 2.0),
            ("MX", NorthAmerica, 0.014, 23.0, -102.0),
            ("KR", Asia, 0.012, 36.0, 128.0),
            ("NL", Europe, 0.010, 52.0, 5.0),
            ("ES", Europe, 0.010, 40.0, -4.0),
            ("PL", Europe, 0.009, 52.0, 19.0),
            ("SE", Europe, 0.008, 62.0, 15.0),
            ("AU", Oceania, 0.008, -25.0, 134.0),
            ("TW", Asia, 0.007, 23.7, 121.0),
            ("HK", Asia, 0.006, 22.3, 114.2),
            ("SG", Asia, 0.006, 1.35, 103.8),
            ("ZA", Africa, 0.006, -29.0, 24.0),
            ("BG", Europe, 0.005, 43.0, 25.0),
            ("BH", Asia, 0.004, 26.0, 50.5),
            ("LU", Europe, 0.004, 49.8, 6.1),
            ("IT", Europe, 0.007, 42.8, 12.8),
            ("CA", NorthAmerica, 0.007, 56.0, -106.0),
            ("AR", SouthAmerica, 0.005, -34.0, -64.0),
            ("TR", Asia, 0.005, 39.0, 35.0),
            ("VN", Asia, 0.005, 16.0, 108.0),
            ("TH", Asia, 0.004, 15.0, 101.0),
            ("RU", Europe, 0.004, 60.0, 100.0),
        ];
        let total: f64 = raw.iter().map(|r| r.2).sum();
        let countries = raw
            .iter()
            .map(|&(code, continent, w, lat, lon)| CountryInfo {
                code: Country::new(code),
                continent,
                client_weight: w / total,
                centroid: (lat, lon),
            })
            .collect();
        CountryRegistry { countries }
    }

    /// All countries.
    pub fn all(&self) -> &[CountryInfo] {
        &self.countries
    }

    /// Number of countries.
    pub fn len(&self) -> usize {
        self.countries.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.countries.is_empty()
    }

    /// Facts about one country.
    pub fn get(&self, code: Country) -> Option<&CountryInfo> {
        self.countries.iter().find(|c| c.code == code)
    }

    /// Client weights aligned with [`all`](Self::all), for weighted draws.
    pub fn weights(&self) -> Vec<f64> {
        self.countries.iter().map(|c| c.client_weight).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let reg = CountryRegistry::builtin();
        let sum: f64 = reg.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn top_five_carry_paper_share() {
        let reg = CountryRegistry::builtin();
        let top: f64 = ["IN", "CN", "US", "BR", "ID"]
            .iter()
            .map(|c| reg.get(Country::new(c)).unwrap().client_weight)
            .sum();
        assert!((top - 0.76).abs() < 0.02, "top-5 share = {top}");
    }

    #[test]
    fn vantage_point_countries_present() {
        let reg = CountryRegistry::builtin();
        for c in [
            "US", "JP", "DE", "AU", "BH", "BR", "BG", "HK", "IN", "ID", "MX", "NL", "PL", "SG",
            "ZA", "KR", "ES", "SE", "TW", "GB",
        ] {
            assert!(reg.get(Country::new(c)).is_some(), "missing VP country {c}");
        }
    }

    #[test]
    fn country_code_round_trip() {
        let c = Country::new("DE");
        assert_eq!(c.as_str(), "DE");
        assert_eq!(c.to_string(), "DE");
    }

    #[test]
    #[should_panic]
    fn lowercase_code_rejected() {
        Country::new("de");
    }
}
