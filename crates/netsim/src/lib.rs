//! # v6netsim — a deterministic synthetic IPv6 Internet
//!
//! The substrate for the `ipv6-hitlists` reproduction of *IPv6 Hitlists at
//! Scale* (SIGCOMM 2023). The paper measured the production Internet; this
//! crate builds a scaled-down but behaviourally faithful model of it:
//!
//! * [`geo_model`] — countries with the paper's client-population mix.
//! * [`asn`] — typed ASes (eyeball, mobile, transit, hosting, edu)
//!   including the paper's named exemplars (Reliance Jio, T-Mobile,
//!   ChinaNet, China Mobile, Telkomsel, the Brazilian pair, German
//!   AVM-heavy ISPs).
//! * [`addressing`] — IID strategies (privacy-random, RFC 7217, EUI-64,
//!   low-byte, IPv4-embedded, DHCPv6, Jio's low-4-byte) and per-AS
//!   profiles; prefix-rotation policies.
//! * [`device`] — device kinds, OS→NTP-source mapping, vendor MAC pools
//!   shaped like the paper's Table 2.
//! * [`world`] / [`resolve`] — the built world: a deterministic address
//!   plan with O(1) forward (device→address) and inverse (address→holder)
//!   mappings, an ICMPv6 probe surface with TTL semantics, firewalls,
//!   aliased prefixes and mobility.
//! * [`events`] — the statistical NTP contact stream the passive corpus
//!   is collected from.
//! * [`rng`] / [`permute`] / [`time`] — deterministic infrastructure.
//!
//! Everything derives from a single `u64` seed; rebuilding with the same
//! seed and config is bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressing;
pub mod asn;
pub mod config;
pub mod device;
pub mod events;
pub mod geo_model;
pub mod permute;
pub mod resolve;
pub mod rng;
pub mod stats;
pub mod time;
pub mod world;

pub use asn::{AliasFront, AsCatalog, AsInfo, AsKind, Asn};
pub use config::WorldConfig;
pub use device::{DeviceId, DeviceKind, Os};
pub use events::{day_range, expected_query_volume, NtpEvent, NtpEventStream};
pub use geo_model::{Country, CountryRegistry};
pub use permute::IndexPermutation;
pub use resolve::{AttachKind, ProbeKind, ProbeOutcome, Resolution, ServerRole};
pub use rng::Rng;
pub use stats::WorldStats;
pub use time::{SimDuration, SimTime};
pub use world::{Device, HomeNetwork, VantagePoint, World};
