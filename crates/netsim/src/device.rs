//! Devices: the end hosts and infrastructure boxes of the synthetic world.
//!
//! Device *kind* drives everything the paper measures: which NTP service a
//! device uses (§2.3 — only a subset of the world uses the NTP Pool, which
//! is why even a 7.9 B-address corpus is incomplete), its MAC vendor
//! (Table 2), its addressing strategy, whether it answers backscans, and
//! how often it talks to NTP at all.

use serde::{Deserialize, Serialize};

use v6addr::mac::Oui;
use v6addr::Mac;

use crate::rng::Rng;

/// Dense world-wide device identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

/// What kind of box a device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A handset (WiFi at home, cellular outside).
    Smartphone,
    /// A laptop.
    Laptop,
    /// A desktop workstation.
    Desktop,
    /// A small always-on IoT gadget (sensor, plug, camera).
    IotSensor,
    /// A smart speaker / connected-audio device.
    SmartSpeaker,
    /// A TV set-top box or streaming stick.
    SetTopBox,
    /// Customer-premises router: WAN side visible to the ISP network.
    CpeRouter,
    /// A server in a hosting or enterprise network.
    Server,
    /// A core/transit router interface.
    CoreRouter,
}

impl DeviceKind {
    /// True for end-user client devices (vs infrastructure).
    pub fn is_client(self) -> bool {
        !matches!(
            self,
            DeviceKind::Server | DeviceKind::CoreRouter | DeviceKind::CpeRouter
        )
    }

    /// Probability the device answers an ICMPv6 echo for an address it
    /// currently holds and that reaches it (i.e. after firewall checks).
    pub fn respond_prob(self) -> f64 {
        match self {
            DeviceKind::CoreRouter => 0.98,
            DeviceKind::Server => 0.96,
            DeviceKind::CpeRouter => 0.92,
            DeviceKind::IotSensor => 0.88,
            DeviceKind::SmartSpeaker => 0.88,
            DeviceKind::SetTopBox => 0.85,
            DeviceKind::Desktop => 0.80,
            DeviceKind::Laptop => 0.75,
            DeviceKind::Smartphone => 0.72,
        }
    }
}

/// Operating system, as far as NTP behaviour is concerned (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Os {
    /// Android ≤ 7: factory-configured to use the NTP Pool.
    AndroidLegacy,
    /// Android ≥ 8: uses `time.android.com`, invisible to pool servers.
    AndroidModern,
    /// iOS/iPadOS: `time.apple.com`.
    Ios,
    /// Windows: `time.windows.com`.
    Windows,
    /// macOS: `time.apple.com`.
    MacOs,
    /// Linux distributions: distro vendor zones of the NTP Pool.
    Linux,
    /// Embedded firmware (IoT, CPE, STB): vendor zones of the NTP Pool.
    Embedded,
}

impl Os {
    /// Whether this OS's default time source is the NTP Pool — i.e.
    /// whether a passive pool server can ever observe the device.
    pub fn uses_ntp_pool(self) -> bool {
        matches!(self, Os::AndroidLegacy | Os::Linux | Os::Embedded)
    }

    /// The pool zone the OS queries (when it queries the pool at all).
    pub fn pool_zone(self) -> Option<&'static str> {
        match self {
            Os::AndroidLegacy => Some("android.pool.ntp.org"),
            Os::Linux => Some("ubuntu.pool.ntp.org"),
            Os::Embedded => Some("pool.ntp.org"),
            _ => None,
        }
    }
}

/// NTP contact behaviour of a device.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Probability the device issues at least one NTP query on any day.
    pub contact_day_prob: f64,
    /// Mean queries on a day the device is active (Poisson).
    pub mean_queries_per_active_day: f64,
}

impl ActivityProfile {
    /// Default profile per device kind. Always-on gadgets query nearly
    /// daily; handsets are sporadic (boot, reconnect).
    pub fn for_kind(kind: DeviceKind) -> Self {
        let (p, q) = match kind {
            DeviceKind::IotSensor => (0.85, 1.8),
            DeviceKind::SmartSpeaker => (0.80, 1.6),
            DeviceKind::SetTopBox => (0.55, 1.4),
            DeviceKind::Smartphone => (0.22, 1.1),
            DeviceKind::Laptop => (0.30, 1.2),
            DeviceKind::Desktop => (0.35, 1.3),
            DeviceKind::CpeRouter => (0.75, 1.5),
            DeviceKind::Server => (0.95, 4.0),
            DeviceKind::CoreRouter => (0.90, 3.0),
        };
        ActivityProfile {
            contact_day_prob: p,
            mean_queries_per_active_day: q,
        }
    }
}

/// Vendor OUI pools used when assigning MACs to new devices.
///
/// Reproduces the paper's Table 2 shape: most embedded MACs resolve to no
/// registered vendor ("Unlisted", led by `f0:02:20`), with Amazon, Samsung,
/// Sonos, vivo, the IoT ODMs, Huawei and the STB makers following.
#[derive(Debug, Clone)]
pub struct VendorPools {
    /// Registered OUIs per device kind, with draw weights.
    by_kind: Vec<(DeviceKind, Vec<(Oui, f64)>)>,
    /// Unregistered OUI space (resolves to "Unlisted").
    unlisted: Vec<Oui>,
    /// Probability a device draws from unregistered space.
    unlisted_prob: f64,
    /// Tiny pool of MACs that manufacturers ship on *many* devices
    /// (§5.1/§5.2 "MAC reuse": all-zeros and friends).
    reuse_pool: Vec<Mac>,
    /// Probability a device gets a reused MAC.
    reuse_prob: f64,
}

impl VendorPools {
    /// Builds pools from the workspace OUI registry.
    pub fn builtin(db: &v6addr::oui_db::OuiDb) -> Self {
        let of = |name: &str| db.ouis_of(name);
        let weighted = |ouis: Vec<Oui>, w: f64| -> Vec<(Oui, f64)> {
            let each = w / ouis.len().max(1) as f64;
            ouis.into_iter().map(|o| (o, each)).collect()
        };
        let mut by_kind: Vec<(DeviceKind, Vec<(Oui, f64)>)> = Vec::new();

        let mut phone = weighted(of("Samsung Electronics Co.,Ltd"), 0.5);
        phone.extend(weighted(of("vivo Mobile Communication Co., Ltd."), 0.3));
        phone.extend(weighted(of("Huawei Technologies"), 0.2));
        by_kind.push((DeviceKind::Smartphone, phone));

        let mut iot = weighted(of("Sunnovo International Limited"), 0.4);
        iot.extend(weighted(of("Hui Zhou Gaoshengda Technology Co.,LTD"), 0.4));
        iot.extend(weighted(of("Amazon Technologies Inc."), 0.2));
        by_kind.push((DeviceKind::IotSensor, iot));

        by_kind.push((DeviceKind::SmartSpeaker, {
            let mut v = weighted(of("Sonos, Inc."), 0.7);
            v.extend(weighted(of("Amazon Technologies Inc."), 0.3));
            v
        }));

        let mut stb = weighted(of("Shenzhen Chuangwei-RGB Electronics"), 0.5);
        stb.extend(weighted(
            of("Skyworth Digital Technology (Shenzhen) Co.,Ltd"),
            0.5,
        ));
        by_kind.push((DeviceKind::SetTopBox, stb));

        // AVM serves mostly the German market; elsewhere CPE is
        // Huawei-dominated (drives the §5.3 Germany skew).
        let mut cpe = weighted(of("AVM GmbH"), 0.12);
        cpe.extend(weighted(of("Huawei Technologies"), 0.88));
        by_kind.push((DeviceKind::CpeRouter, cpe));

        by_kind.push((
            DeviceKind::Server,
            weighted(of("Amazon Technologies Inc."), 1.0),
        ));
        by_kind.push((
            DeviceKind::CoreRouter,
            weighted(of("Huawei Technologies"), 1.0),
        ));
        // Laptops/desktops: generic vendors.
        let generic: Vec<(Oui, f64)> = db
            .iter()
            .filter(|(_, v)| v.name.starts_with("Generic Vendor"))
            .map(|(o, _)| (o, 1.0))
            .collect();
        by_kind.push((DeviceKind::Laptop, generic.clone()));
        by_kind.push((DeviceKind::Desktop, generic));

        // Unregistered OUI space: the paper's headline `f0:02:20` plus a
        // spread of other unlisted blocks (it saw 42,901 distinct
        // unlisted OUIs).
        let mut unlisted = vec!["f0:02:20".parse().unwrap(), "a8:aa:20".parse().unwrap()];
        for i in 0..96u32 {
            let candidate = Oui::from_u32(0xe0_1000 + i * 0x0111);
            if db.lookup(candidate).is_none() {
                unlisted.push(candidate);
            }
        }

        VendorPools {
            by_kind,
            unlisted,
            unlisted_prob: 0.55,
            reuse_pool: vec![
                Mac::ZERO,
                "00:11:22:33:44:55".parse().unwrap(),
                "f0:02:20:00:00:01".parse().unwrap(),
                "a8:aa:20:00:00:01".parse().unwrap(),
            ],
            reuse_prob: 0.0008,
        }
    }

    /// The AVM OUI block (used to model Fritz!Box CPE in German ISPs).
    pub fn avm_ouis(db: &v6addr::oui_db::OuiDb) -> Vec<Oui> {
        db.ouis_of("AVM GmbH")
    }

    /// Draws a MAC for a device of `kind`.
    pub fn draw_mac(&self, kind: DeviceKind, rng: &mut Rng) -> Mac {
        if rng.chance(self.reuse_prob) {
            return *rng.choose(&self.reuse_pool);
        }
        let oui = if rng.chance(self.unlisted_prob) && kind.is_client() {
            *rng.choose(&self.unlisted)
        } else {
            let pool = self
                .by_kind
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, p)| p)
                .expect("every kind has a pool");
            let weights: Vec<f64> = pool.iter().map(|&(_, w)| w).collect();
            pool[rng.weighted(&weights)].0
        };
        // NIC portion: biased toward low, dense ranges as real production
        // runs are — this is what makes per-OUI wired↔wireless offset
        // inference (§5.3) statistically possible.
        let nic = (rng.below(1 << 20) as u32) & 0x00ff_ffff;
        oui.mac(nic)
    }

    /// Draws a MAC with a specific OUI (e.g. forcing AVM for German CPE).
    pub fn draw_mac_with_oui(&self, oui: Oui, rng: &mut Rng) -> Mac {
        let nic = (rng.below(1 << 20) as u32) & 0x00ff_ffff;
        oui.mac(nic)
    }
}

/// Draws an operating system for a client device of `kind`.
pub fn draw_os(kind: DeviceKind, rng: &mut Rng) -> Os {
    match kind {
        DeviceKind::Smartphone => {
            // The paper notes modern Androids no longer use the pool —
            // a large invisible population.
            let w = [0.18, 0.47, 0.35]; // legacy android / modern android / ios
            match rng.weighted(&w) {
                0 => Os::AndroidLegacy,
                1 => Os::AndroidModern,
                _ => Os::Ios,
            }
        }
        DeviceKind::Laptop | DeviceKind::Desktop => {
            let w = [0.55, 0.25, 0.20]; // windows / macos / linux
            match rng.weighted(&w) {
                0 => Os::Windows,
                1 => Os::MacOs,
                _ => Os::Linux,
            }
        }
        DeviceKind::Server => {
            if rng.chance(0.9) {
                Os::Linux
            } else {
                Os::Windows
            }
        }
        _ => Os::Embedded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6addr::oui_db::OuiDb;

    #[test]
    fn pool_usage_matches_paper() {
        assert!(Os::AndroidLegacy.uses_ntp_pool());
        assert!(!Os::AndroidModern.uses_ntp_pool());
        assert!(!Os::Ios.uses_ntp_pool());
        assert!(!Os::Windows.uses_ntp_pool());
        assert!(Os::Linux.uses_ntp_pool());
        assert!(Os::Embedded.uses_ntp_pool());
        assert_eq!(Os::AndroidLegacy.pool_zone(), Some("android.pool.ntp.org"));
        assert_eq!(Os::Windows.pool_zone(), None);
    }

    #[test]
    fn client_vs_infrastructure() {
        assert!(DeviceKind::Smartphone.is_client());
        assert!(DeviceKind::IotSensor.is_client());
        assert!(!DeviceKind::Server.is_client());
        assert!(!DeviceKind::CpeRouter.is_client());
        assert!(!DeviceKind::CoreRouter.is_client());
    }

    #[test]
    fn infrastructure_responds_more_than_clients() {
        assert!(DeviceKind::CoreRouter.respond_prob() > DeviceKind::Smartphone.respond_prob());
        assert!(DeviceKind::Server.respond_prob() > DeviceKind::Laptop.respond_prob());
    }

    #[test]
    fn vendor_pools_draw_for_every_kind() {
        let pools = VendorPools::builtin(&OuiDb::builtin());
        let mut rng = Rng::new(1);
        for kind in [
            DeviceKind::Smartphone,
            DeviceKind::Laptop,
            DeviceKind::Desktop,
            DeviceKind::IotSensor,
            DeviceKind::SmartSpeaker,
            DeviceKind::SetTopBox,
            DeviceKind::CpeRouter,
            DeviceKind::Server,
            DeviceKind::CoreRouter,
        ] {
            let mac = pools.draw_mac(kind, &mut rng);
            assert_ne!(mac.as_u64() >> 24, 0, "kind {kind:?} drew empty OUI");
        }
    }

    #[test]
    fn unlisted_dominates_client_macs() {
        let db = OuiDb::builtin();
        let pools = VendorPools::builtin(&db);
        let mut rng = Rng::new(7);
        let n = 5_000;
        let unlisted = (0..n)
            .filter(|_| {
                let mac = pools.draw_mac(DeviceKind::IotSensor, &mut rng);
                db.lookup(mac.oui()).is_none()
            })
            .count();
        let frac = unlisted as f64 / n as f64;
        // Paper: 73.9% of embedded MACs are unlisted. Our pool draws
        // should be in the same regime for client devices.
        assert!(frac > 0.4 && frac < 0.75, "unlisted frac = {frac}");
    }

    #[test]
    fn servers_never_unlisted() {
        let db = OuiDb::builtin();
        let pools = VendorPools::builtin(&db);
        let mut rng = Rng::new(9);
        for _ in 0..500 {
            let mac = pools.draw_mac(DeviceKind::Server, &mut rng);
            if mac != Mac::ZERO && !pools.reuse_pool.contains(&mac) {
                assert!(db.lookup(mac.oui()).is_some(), "server MAC {mac} unlisted");
            }
        }
    }

    #[test]
    fn mac_reuse_happens_but_rarely() {
        let pools = VendorPools::builtin(&OuiDb::builtin());
        let mut rng = Rng::new(11);
        let n = 100_000;
        let reused = (0..n)
            .filter(|_| {
                let mac = pools.draw_mac(DeviceKind::IotSensor, &mut rng);
                pools.reuse_pool.contains(&mac)
            })
            .count();
        assert!(reused > 10, "reuse never fired in {n} draws");
        assert!(
            (reused as f64) < n as f64 * 0.01,
            "reuse too common: {reused}"
        );
    }

    #[test]
    fn activity_profiles_ordered_sensibly() {
        let iot = ActivityProfile::for_kind(DeviceKind::IotSensor);
        let phone = ActivityProfile::for_kind(DeviceKind::Smartphone);
        assert!(iot.contact_day_prob > phone.contact_day_prob);
    }

    #[test]
    fn os_draw_distributions() {
        let mut rng = Rng::new(13);
        let n = 10_000;
        let legacy = (0..n)
            .filter(|_| draw_os(DeviceKind::Smartphone, &mut rng) == Os::AndroidLegacy)
            .count();
        let frac = legacy as f64 / n as f64;
        assert!((frac - 0.18).abs() < 0.02, "legacy android frac = {frac}");
        for _ in 0..100 {
            assert_eq!(draw_os(DeviceKind::IotSensor, &mut rng), Os::Embedded);
        }
    }
}
