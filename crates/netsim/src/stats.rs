//! World summary statistics.
//!
//! A built world is a large opaque object; [`WorldStats`] condenses it
//! into the inventory a reader (or a debugging session) needs: device
//! mix, addressing-strategy mix, NTP-visibility split, per-country client
//! counts, and alias/firewall rates. The bench harness prints this next
//! to every experiment so scale factors are always visible.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::addressing::IidStrategy;
use crate::asn::AsKind;
use crate::world::World;

/// Summary statistics of a built world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldStats {
    /// Total devices.
    pub devices: u64,
    /// Devices whose OS syncs against the NTP Pool (observable).
    pub pool_visible: u64,
    /// Home networks.
    pub home_networks: u64,
    /// Firewalled home networks.
    pub firewalled_networks: u64,
    /// Mobile-only subscribers.
    pub mobile_subscribers: u64,
    /// ASes by kind.
    pub ases_by_kind: BTreeMap<String, u64>,
    /// Devices by kind.
    pub devices_by_kind: BTreeMap<String, u64>,
    /// Client devices by addressing strategy.
    pub strategies: BTreeMap<String, u64>,
    /// Client devices per country (descending by count when rendered).
    pub clients_by_country: BTreeMap<String, u64>,
    /// Ground-truth fully aliased prefixes.
    pub aliased_prefixes: u64,
}

impl WorldStats {
    /// Computes the summary.
    pub fn compute(world: &World) -> WorldStats {
        let mut devices_by_kind: BTreeMap<String, u64> = BTreeMap::new();
        let mut strategies: BTreeMap<String, u64> = BTreeMap::new();
        let mut clients_by_country: BTreeMap<String, u64> = BTreeMap::new();
        let mut pool_visible = 0u64;
        for d in &world.devices {
            *devices_by_kind.entry(format!("{:?}", d.kind)).or_insert(0) += 1;
            if d.uses_pool {
                pool_visible += 1;
            }
            if d.kind.is_client() {
                *strategies.entry(format!("{:?}", d.strategy)).or_insert(0) += 1;
                let as_index = d
                    .home
                    .map(|h| world.networks[h.network as usize].as_index)
                    .or(d.cellular.map(|c| c.as_index));
                if let Some(ai) = as_index {
                    *clients_by_country
                        .entry(world.ases[ai as usize].info.country.as_str().to_string())
                        .or_insert(0) += 1;
                }
            }
        }
        let mut ases_by_kind: BTreeMap<String, u64> = BTreeMap::new();
        for a in &world.ases {
            *ases_by_kind
                .entry(format!("{:?}", a.info.kind))
                .or_insert(0) += 1;
        }
        WorldStats {
            devices: world.devices.len() as u64,
            pool_visible,
            home_networks: world.networks.len() as u64,
            firewalled_networks: world.networks.iter().filter(|n| n.firewalled).count() as u64,
            mobile_subscribers: world
                .ases
                .iter()
                .filter(|a| a.info.kind == AsKind::MobileIsp)
                .map(|a| a.subscriber_ids.len() as u64)
                .sum(),
            ases_by_kind,
            devices_by_kind,
            strategies,
            clients_by_country,
            aliased_prefixes: world.aliased_prefixes().len() as u64,
        }
    }

    /// Fraction of client devices using a given strategy.
    pub fn strategy_fraction(&self, strategy: IidStrategy) -> f64 {
        let total: u64 = self.strategies.values().sum();
        let n = self
            .strategies
            .get(&format!("{strategy:?}"))
            .copied()
            .unwrap_or(0);
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    }

    /// Fraction of devices a pool server can ever observe.
    pub fn pool_visibility(&self) -> f64 {
        if self.devices == 0 {
            0.0
        } else {
            self.pool_visible as f64 / self.devices as f64
        }
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "devices: {} ({} pool-visible, {:.0}%)\nhome networks: {} ({} firewalled)\nmobile subscribers: {}\naliased prefixes: {}\n",
            self.devices,
            self.pool_visible,
            self.pool_visibility() * 100.0,
            self.home_networks,
            self.firewalled_networks,
            self.mobile_subscribers,
            self.aliased_prefixes,
        );
        out.push_str("ASes by kind:\n");
        for (k, n) in &self.ases_by_kind {
            out.push_str(&format!("  {k:<14} {n}\n"));
        }
        out.push_str("client strategies:\n");
        let total: u64 = self.strategies.values().sum();
        for (k, n) in &self.strategies {
            out.push_str(&format!(
                "  {k:<20} {n:>7} ({:.1}%)\n",
                *n as f64 / total.max(1) as f64 * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn stats() -> WorldStats {
        WorldStats::compute(&World::build(WorldConfig::tiny(), 1234))
    }

    #[test]
    fn totals_consistent() {
        let s = stats();
        let by_kind: u64 = s.devices_by_kind.values().sum();
        assert_eq!(by_kind, s.devices);
        assert!(s.pool_visible > 0 && s.pool_visible < s.devices);
        assert!(s.firewalled_networks < s.home_networks);
        assert!(s.aliased_prefixes > 0);
    }

    #[test]
    fn privacy_random_dominates_clients() {
        let s = stats();
        // The paper's world: most client addresses are ephemeral random.
        let pr = s.strategy_fraction(IidStrategy::PrivacyRandom);
        assert!(pr > 0.5, "privacy-random fraction {pr:.2}");
        // And EUI-64 exists in the single-digit-to-teens range.
        let eui = s.strategy_fraction(IidStrategy::Eui64);
        assert!((0.01..0.35).contains(&eui), "eui64 fraction {eui:.2}");
    }

    #[test]
    fn pool_visibility_is_partial() {
        let s = stats();
        // §2.3: Windows/Apple/modern-Android devices never use the pool —
        // a passive pool corpus can never be complete.
        let v = s.pool_visibility();
        assert!((0.2..0.9).contains(&v), "visibility {v:.2}");
    }

    #[test]
    fn every_country_has_clients() {
        let s = stats();
        assert!(s.clients_by_country.len() >= 20);
        assert!(s.clients_by_country.values().all(|&n| n > 0));
    }

    #[test]
    fn render_mentions_key_lines() {
        let text = stats().render();
        assert!(text.contains("pool-visible"));
        assert!(text.contains("client strategies"));
        assert!(text.contains("PrivacyRandom"));
    }
}
