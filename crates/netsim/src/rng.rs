//! Deterministic pseudo-random number generation for the simulator.
//!
//! Everything in the synthetic Internet must be bit-reproducible from a
//! single 64-bit seed, across platforms and crate versions. We therefore
//! implement xoshiro256++ (plus SplitMix64 seeding) in-crate instead of
//! depending on an external RNG whose stream might change under us.
//!
//! The central idiom is [`Rng::fork`]: deriving an *independent* child
//! stream from a label and index, so that (say) device 1234's address
//! choices never depend on how many random draws device 1233 made. This is
//! what makes lazy/statistical event generation possible — any entity's
//! randomness can be regenerated on demand.

/// SplitMix64 step; used for seeding and for one-shot hashing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes an arbitrary byte string plus a seed into 64 bits (FNV-1a mixed
/// through SplitMix64). Used to derive fork seeds from labels.
pub fn hash64(seed: u64, label: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in label {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut s = h;
    splitmix64(&mut s)
}

/// A xoshiro256++ PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is absorbing; SplitMix64 never produces
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Derives an independent child generator from a label and index.
    ///
    /// `fork(b"device", 42)` always yields the same stream for the same
    /// parent seed, regardless of draw order elsewhere.
    pub fn fork(&self, label: &[u8], index: u64) -> Rng {
        let base = hash64(self.s[0] ^ self.s[2].rotate_left(17), label);
        Rng::new(base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 128 uniformly random bits.
    #[inline]
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly selects an element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Selects an index according to non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; 1 - f64() is in (0, 1] so ln is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Poisson-distributed count (Knuth's method; fine for small means,
    /// normal approximation above 64 keeps it O(1)).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            // Normal approximation with continuity correction.
            let g = self.gaussian();
            let v = mean + mean.sqrt() * g;
            return v.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Standard normal deviate (Box–Muller, one value per call).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Geometric count ≥ 0 with success probability `p` per trial
    /// (number of failures before the first success).
    pub fn geometric(&mut self, p: f64) -> u64 {
        let p = p.clamp(1e-12, 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = 1.0 - self.f64();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_order_independent() {
        let parent = Rng::new(7);
        let mut c1 = parent.fork(b"device", 10);
        let mut discard = parent.fork(b"device", 11);
        let _ = discard.next_u64();
        let mut c2 = parent.fork(b"device", 10);
        for _ in 0..10 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let parent = Rng::new(7);
        let mut a = parent.fork(b"alpha", 0);
        let mut b = parent.fork(b"beta", 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..100 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(11);
        for _ in 0..200 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_rough_proportions() {
        let mut r = Rng::new(13);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[r.weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = Rng::new(17);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.poisson(4.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_gaussian() {
        let mut r = Rng::new(19);
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| r.poisson(100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "mean = {mean}");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = Rng::new(23);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = Rng::new(29);
        let n = 20_000;
        // Mean failures before success = (1-p)/p = 3 for p = 0.25.
        let sum: u64 = (0..n).map(|_| r.geometric(0.25)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn hash64_differs_by_label_and_seed() {
        assert_ne!(hash64(1, b"a"), hash64(1, b"b"));
        assert_ne!(hash64(1, b"a"), hash64(2, b"a"));
        assert_eq!(hash64(1, b"a"), hash64(1, b"a"));
    }
}
