//! Keyed bijections over integer ranges.
//!
//! Two places need "a random-looking but invertible shuffle":
//!
//! * **Prefix rotation** (§2.1, §5.2): at each rotation epoch an ISP
//!   reassigns delegated prefixes to customers. Modeling this as a keyed
//!   permutation of pool slots lets the simulator answer both directions —
//!   "what prefix does customer *n* hold at epoch *e*?" (forward) and
//!   "which customer holds prefix slot *s*?" (inverse, needed when a probe
//!   arrives at an arbitrary address).
//! * **Stateless scanning** (ZMap/Yarrp): probing targets in a keyed
//!   pseudo-random order spreads load across networks. `v6scan` reuses
//!   this type for its target iteration.
//!
//! Implementation: a 4-round Feistel network over the smallest even-split
//! power-of-two domain ≥ `n`, with cycle-walking to stay inside `[0, n)`.

use crate::rng::hash64;

/// A keyed bijection on `[0, n)`.
#[derive(Debug, Clone)]
pub struct IndexPermutation {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl IndexPermutation {
    /// Creates the permutation of `[0, n)` determined by `key`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, key: u64) -> Self {
        assert!(n > 0, "cannot permute an empty domain");
        // Domain 2^(2*half_bits) >= n with half_bits >= 1.
        let bits = 64 - (n - 1).max(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let keys = [
            hash64(key, b"feistel-0"),
            hash64(key, b"feistel-1"),
            hash64(key, b"feistel-2"),
            hash64(key, b"feistel-3"),
        ];
        IndexPermutation { n, half_bits, keys }
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when the domain is the single element `{0}`.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn round(&self, k: u64, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut s = x ^ k;
        crate::rng::splitmix64(&mut s) & mask
    }

    #[inline]
    fn feistel(&self, v: u64, forward: bool) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut l = (v >> self.half_bits) & mask;
        let mut r = v & mask;
        if forward {
            for &k in &self.keys {
                let t = r;
                r = l ^ self.round(k, r);
                l = t;
            }
        } else {
            for &k in self.keys.iter().rev() {
                let t = l;
                l = r ^ self.round(k, l);
                r = t;
            }
        }
        (l << self.half_bits) | r
    }

    /// Maps index `i` to its permuted position.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn apply(&self, i: u64) -> u64 {
        assert!(i < self.n, "index {i} out of domain 0..{}", self.n);
        let mut v = i;
        loop {
            v = self.feistel(v, true);
            if v < self.n {
                return v;
            }
        }
    }

    /// Inverts the permutation: `invert(apply(i)) == i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn invert(&self, i: u64) -> u64 {
        assert!(i < self.n, "index {i} out of domain 0..{}", self.n);
        let mut v = i;
        loop {
            v = self.feistel(v, false);
            if v < self.n {
                return v;
            }
        }
    }

    /// Iterates the whole domain in permuted order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.n).map(move |i| self.apply(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection() {
        for n in [1u64, 2, 3, 10, 100, 1000, 1 << 16] {
            let p = IndexPermutation::new(n, 0xdead_beef);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let v = p.apply(i);
                assert!(v < n);
                assert!(!seen[v as usize], "collision at {v} (n={n})");
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn invert_round_trips() {
        let p = IndexPermutation::new(12_345, 99);
        for i in 0..12_345 {
            assert_eq!(p.invert(p.apply(i)), i);
            assert_eq!(p.apply(p.invert(i)), i);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = IndexPermutation::new(1000, 1);
        let b = IndexPermutation::new(1000, 2);
        let same = (0..1000).filter(|&i| a.apply(i) == b.apply(i)).count();
        assert!(same < 20, "{same} fixed agreements is suspicious");
    }

    #[test]
    fn permutation_actually_scrambles() {
        let p = IndexPermutation::new(1 << 12, 7);
        // Count positions mapping to themselves; should be ~1 (Poisson(1)).
        let fixed = (0..(1u64 << 12)).filter(|&i| p.apply(i) == i).count();
        assert!(fixed < 10, "{fixed} fixed points");
    }

    #[test]
    fn singleton_domain() {
        let p = IndexPermutation::new(1, 42);
        assert_eq!(p.apply(0), 0);
        assert_eq!(p.invert(0), 0);
    }

    #[test]
    fn iter_visits_everything_once() {
        let p = IndexPermutation::new(257, 5);
        let mut v: Vec<u64> = p.iter().collect();
        v.sort_unstable();
        assert_eq!(v, (0..257).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn out_of_domain_panics() {
        IndexPermutation::new(10, 1).apply(10);
    }
}
