//! Address computation and the probe surface.
//!
//! This file answers the two questions every measurement in the paper
//! reduces to:
//!
//! 1. **Forward**: what address does device *d* present at time *t*?
//!    (drives the passive NTP corpus)
//! 2. **Inverse**: who — if anyone — holds address *a* at time *t*, and
//!    does it answer an ICMPv6 probe with a given TTL?
//!    (drives ZMap6/Yarrp campaigns, backscanning, alias detection)
//!
//! Both are computed from the world seed with no packet history, using the
//! keyed slot permutations and the deterministic IID generator.

use std::net::Ipv6Addr;

use v6addr::{Iid, Prefix};

use crate::addressing::generate_iid;
use crate::asn::{AliasFront, AsKind};
use crate::device::{DeviceId, DeviceKind};
use crate::rng::hash64;
use crate::time::SimTime;
use crate::world::{on_wifi, Region, World};

/// Where a device is attached for one NTP contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachKind {
    /// On its home network (or it *is* home equipment).
    HomeWifi,
    /// On its cellular plan.
    Cellular,
    /// Fixed infrastructure (server/router).
    Fixed,
}

/// Who holds an address (the inverse mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Inside a fully aliased prefix: a middlebox answers for everything.
    Alias,
    /// A core router interface.
    Router(DeviceId),
    /// A hosting server.
    Server(DeviceId),
    /// A CPE router's WAN address.
    CpeWan {
        /// The CPE device.
        device: DeviceId,
        /// Its network.
        network: u32,
    },
    /// A LAN device inside a home network.
    HomeDevice {
        /// The device.
        device: DeviceId,
        /// Its network.
        network: u32,
    },
    /// A handset on its cellular /64.
    MobileDevice(DeviceId),
    /// Routed space, but nobody holds this address right now.
    Vacant,
    /// Not in any routed prefix.
    Unrouted,
}

/// The probe types active campaigns send (§3: the IPv6 Hitlist scans
/// ICMPv6, HTTP/HTTPS and DNS/SNMP/QUIC ports, not just ping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// ICMPv6 echo request.
    IcmpEcho,
    /// TCP SYN to a port (responsive = SYN-ACK).
    TcpSyn(u16),
    /// UDP datagram to a port (responsive = application reply).
    UdpDatagram(u16),
}

/// What services a server-class device exposes (derived from its seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// Web server: TCP 80/443; usually answers ping too.
    Web,
    /// Web server behind an ICMP-dropping firewall: TCP only — invisible
    /// to ping-only scans, found by multi-protocol campaigns.
    QuietWeb,
    /// DNS server: UDP/TCP 53, ping.
    Dns,
    /// Anything else: ping only.
    Plain,
}

impl ServerRole {
    /// Derives the role from a device seed (stable per device).
    pub fn of_seed(seed: u64) -> ServerRole {
        match seed % 10 {
            0..=4 => ServerRole::Web,
            5 => ServerRole::QuietWeb,
            6 | 7 => ServerRole::Dns,
            _ => ServerRole::Plain,
        }
    }

    /// Probability of answering a given probe kind.
    pub fn answer_prob(self, kind: ProbeKind) -> f64 {
        match (self, kind) {
            (ServerRole::QuietWeb, ProbeKind::IcmpEcho) => 0.0,
            (_, ProbeKind::IcmpEcho) => 0.96,
            (ServerRole::Web | ServerRole::QuietWeb, ProbeKind::TcpSyn(80 | 443)) => 0.92,
            (ServerRole::Dns, ProbeKind::UdpDatagram(53)) => 0.92,
            (ServerRole::Dns, ProbeKind::TcpSyn(53)) => 0.85,
            _ => 0.0,
        }
    }
}

/// Result of one ICMPv6 probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Destination (or alias middlebox) answered the echo request.
    EchoReply {
        /// Responding address.
        from: Ipv6Addr,
    },
    /// TTL expired en route; a router answered.
    TimeExceeded {
        /// The hop that answered.
        from: Ipv6Addr,
        /// Hop index (1-based TTL at which it fired).
        hop: u8,
    },
    /// A router reported the destination unreachable.
    Unreachable {
        /// The router that answered.
        from: Ipv6Addr,
    },
    /// Silence.
    NoResponse,
}

impl ProbeOutcome {
    /// The responding address, if any packet came back.
    pub fn responder(&self) -> Option<Ipv6Addr> {
        match self {
            ProbeOutcome::EchoReply { from } => Some(*from),
            ProbeOutcome::TimeExceeded { from, .. } => Some(*from),
            ProbeOutcome::Unreachable { from } => Some(*from),
            ProbeOutcome::NoResponse => None,
        }
    }

    /// True when the *destination itself* answered.
    pub fn is_echo(&self) -> bool {
        matches!(self, ProbeOutcome::EchoReply { .. })
    }
}

impl World {
    // ------------------------------------------------------------------
    // Forward: device → address
    // ------------------------------------------------------------------

    /// The delegated prefix a home network holds at time `t`.
    pub fn network_prefix_at(&self, network: u32, t: SimTime) -> Prefix {
        let net = &self.networks[network as usize];
        let asr = &self.ases[net.as_index as usize];
        let profile = &asr.info.profile;
        let epoch = profile.rotation.epoch(t);
        let slot = self
            .home_perm(net.as_index, epoch)
            .apply(net.local_index as u64);
        let idx = slot * self.home_stride(net.as_index);
        asr.customer33().subprefix(profile.delegation_len, idx)
    }

    /// A home device's address at time `t` (CPE LAN-side excluded; for the
    /// CPE this is its WAN address).
    pub fn home_addr_at(&self, device: DeviceId, t: SimTime) -> Option<Ipv6Addr> {
        let dev = self.device(device);
        let slot = dev.home?;
        let net = &self.networks[slot.network as usize];
        let asr = &self.ases[net.as_index as usize];
        let profile = &asr.info.profile;
        let prefix_epoch = profile.rotation.epoch(t);

        let upper: u64 = if dev.kind == DeviceKind::CpeRouter {
            // WAN side: the per-slot /64 in the CPE WAN pool.
            let s = self
                .home_perm(net.as_index, prefix_epoch)
                .apply(net.local_index as u64);
            let idx = s * self.wan_stride(net.as_index);
            (asr.cpe_wan34().subprefix(64, idx).bits() >> 64) as u64
        } else {
            let delegated = self.network_prefix_at(slot.network, t);
            (delegated.subprefix(64, slot.subnet as u64).bits() >> 64) as u64
        };

        let iid_epoch = t.as_secs() / profile.iid_rotation.as_secs().max(1);
        let ipv4 = Some(asr.v4_for(dev.seed));
        let iid = generate_iid(dev.strategy, &dev.iid_inputs(ipv4), iid_epoch, prefix_epoch);
        Some(v6addr::join(upper, iid))
    }

    /// A device's cellular address at time `t`, if it has a plan.
    pub fn cellular_addr_at(&self, device: DeviceId, t: SimTime) -> Option<Ipv6Addr> {
        let dev = self.device(device);
        let cell = dev.cellular?;
        let asr = &self.ases[cell.as_index as usize];
        let profile = &asr.info.profile;
        let attach_epoch = profile.rotation.epoch(t);
        let slot = self
            .mobile_perm(cell.as_index, attach_epoch)
            .apply(cell.subscriber as u64);
        let idx = slot * self.mobile_stride(cell.as_index);
        let upper = (asr.customer33().subprefix(64, idx).bits() >> 64) as u64;
        let iid_epoch = t.as_secs() / profile.iid_rotation.as_secs().max(1);
        let ipv4 = Some(asr.v4_for(dev.seed));
        let iid = generate_iid(dev.strategy, &dev.iid_inputs(ipv4), iid_epoch, attach_epoch);
        Some(v6addr::join(upper, iid))
    }

    /// Where a device is attached at time `t` (phones hop between WiFi and
    /// cellular; everything else is static).
    pub fn attachment_at(&self, device: DeviceId, t: SimTime) -> AttachKind {
        let dev = self.device(device);
        if dev.fixed_addr.is_some() {
            return AttachKind::Fixed;
        }
        match (dev.home, dev.cellular) {
            (Some(_), Some(_)) => {
                if on_wifi(self.seed, dev.seed, t, self.config.wifi_presence) {
                    AttachKind::HomeWifi
                } else {
                    AttachKind::Cellular
                }
            }
            (Some(_), None) => AttachKind::HomeWifi,
            (None, Some(_)) => AttachKind::Cellular,
            (None, None) => AttachKind::Fixed,
        }
    }

    /// The source address a device uses when it talks to NTP at time `t`,
    /// with the dense index of the AS it egresses from.
    pub fn contact_addr_at(&self, device: DeviceId, t: SimTime) -> Option<(Ipv6Addr, u16)> {
        let dev = self.device(device);
        if let Some(a) = dev.fixed_addr {
            return self.as_index_of(a).map(|i| (a, i));
        }
        match self.attachment_at(device, t) {
            AttachKind::HomeWifi => {
                let a = self.home_addr_at(device, t)?;
                let net = &self.networks[dev.home?.network as usize];
                Some((a, net.as_index))
            }
            AttachKind::Cellular => {
                let a = self.cellular_addr_at(device, t)?;
                Some((a, dev.cellular?.as_index))
            }
            AttachKind::Fixed => None,
        }
    }

    // ------------------------------------------------------------------
    // Inverse: address → holder
    // ------------------------------------------------------------------

    /// The active home network whose delegated prefix covers `addr` at
    /// time `t`, if any (`region_prefix` is the HomePool /33).
    fn active_home_network(
        &self,
        addr: Ipv6Addr,
        region_prefix: Prefix,
        as_index: u16,
        t: SimTime,
    ) -> Option<u32> {
        let asr = &self.ases[as_index as usize];
        let profile = &asr.info.profile;
        let dlen = profile.delegation_len;
        let rel = (u128::from(addr) - region_prefix.bits()) >> (128 - dlen);
        let stride = self.home_stride(as_index);
        let idx = rel as u64;
        if !idx.is_multiple_of(stride) {
            return None;
        }
        let slot = idx / stride;
        let epoch = profile.rotation.epoch(t);
        let perm = self.home_perm(as_index, epoch);
        if slot >= perm.len() {
            return None;
        }
        let local = perm.invert(slot);
        asr.network_ids.get(local as usize).copied()
    }

    /// Resolves who holds `addr` at time `t`.
    pub fn resolve(&self, addr: Ipv6Addr, t: SimTime) -> Resolution {
        let Some((region_prefix, entry)) = self.route_lookup(addr) else {
            return if self.as_index_of(addr).is_some() {
                Resolution::Vacant
            } else {
                Resolution::Unrouted
            };
        };
        let asr = &self.ases[entry.as_index as usize];
        // Fully alias-fronted client regions answer for everything.
        if asr.info.alias_front == AliasFront::Full
            && matches!(entry.region, Region::HomePool | Region::MobilePool)
        {
            return Resolution::Alias;
        }
        match entry.region {
            Region::Aliased => Resolution::Alias,
            Region::CoreRouters | Region::ServerPool => {
                match self.fixed_addrs.get(&u128::from(addr)) {
                    Some(&id) if self.device(id).kind == DeviceKind::CoreRouter => {
                        Resolution::Router(id)
                    }
                    Some(&id) => Resolution::Server(id),
                    None => Resolution::Vacant,
                }
            }
            Region::CpeWanPool => {
                let rel = (u128::from(addr) - region_prefix.bits()) >> 64;
                let stride = self.wan_stride(entry.as_index);
                let idx = rel as u64;
                if !idx.is_multiple_of(stride) {
                    return Resolution::Vacant;
                }
                let slot = idx / stride;
                let profile = &asr.info.profile;
                let epoch = profile.rotation.epoch(t);
                let perm = self.home_perm(entry.as_index, epoch);
                if slot >= perm.len() {
                    return Resolution::Vacant;
                }
                let local = perm.invert(slot);
                let Some(&net_id) = asr.network_ids.get(local as usize) else {
                    return Resolution::Vacant;
                };
                let cpe = self.networks[net_id as usize].cpe;
                match self.home_addr_at(cpe, t) {
                    Some(a) if a == addr => Resolution::CpeWan {
                        device: cpe,
                        network: net_id,
                    },
                    _ => Resolution::Vacant,
                }
            }
            Region::HomePool => {
                let Some(net_id) = self.active_home_network(addr, region_prefix, entry.as_index, t)
                else {
                    return Resolution::Vacant;
                };
                if asr.info.alias_front == AliasFront::ActiveOnly {
                    return Resolution::Alias; // front covers the active delegation
                }
                let net = &self.networks[net_id as usize];
                // Check every LAN device that could hold this /64 + IID.
                let target_iid = Iid::from_addr(addr);
                for did in net.lan_devices() {
                    let dev = self.device(did);
                    let Some(hs) = dev.home else { continue };
                    // Quick subnet filter before computing the IID.
                    let delegated = self.network_prefix_at(net_id, t);
                    let dev64 = delegated.subprefix(64, hs.subnet as u64);
                    if !dev64.contains(addr) {
                        continue;
                    }
                    if let Some(a) = self.home_addr_at(did, t) {
                        if Iid::from_addr(a) == target_iid && a == addr {
                            return Resolution::HomeDevice {
                                device: did,
                                network: net_id,
                            };
                        }
                    }
                }
                Resolution::Vacant
            }
            Region::MobilePool => {
                let rel = (u128::from(addr) - region_prefix.bits()) >> 64;
                let stride = self.mobile_stride(entry.as_index);
                let idx = rel as u64;
                if !idx.is_multiple_of(stride) {
                    return Resolution::Vacant;
                }
                let slot = idx / stride;
                let profile = &asr.info.profile;
                let epoch = profile.rotation.epoch(t);
                let perm = self.mobile_perm(entry.as_index, epoch);
                if slot >= perm.len() {
                    return Resolution::Vacant;
                }
                let sub = perm.invert(slot);
                let Some(&did) = asr.subscriber_ids.get(sub as usize) else {
                    return Resolution::Vacant;
                };
                if asr.info.alias_front == AliasFront::ActiveOnly {
                    return Resolution::Alias; // front covers the active /64
                }
                match self.cellular_addr_at(did, t) {
                    Some(a) if a == addr => Resolution::MobileDevice(did),
                    _ => Resolution::Vacant,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Probing
    // ------------------------------------------------------------------

    /// The router hops a probe from vantage AS `vp_as` to `dst` traverses
    /// (transit cores, destination core, and — for customer targets — the
    /// CPE WAN hop).
    pub fn route_hops(&self, vp_as: u16, dst: Ipv6Addr, t: SimTime) -> Vec<Ipv6Addr> {
        let mut hops = Vec::new();
        let Some(dst_as) = self.as_index_of(dst) else {
            return hops;
        };
        let transit: Vec<&crate::world::AsRuntime> = self
            .ases
            .iter()
            .filter(|a| a.info.kind == AsKind::Transit && !a.router_ids.is_empty())
            .collect();
        if !transit.is_empty() {
            let key = hash64(self.seed, format!("path/{vp_as}/{dst_as}").as_bytes());
            let k = 2 + (key % 3) as usize;
            for i in 0..k {
                let ta = transit[(hash64(key, &[i as u8]) % transit.len() as u64) as usize];
                let r = ta.router_ids
                    [(hash64(key, &[0x80 | i as u8]) % ta.router_ids.len() as u64) as usize];
                if let Some(a) = self.device(r).fixed_addr {
                    hops.push(a);
                }
            }
        }
        // Destination AS core router.
        let dar = &self.ases[dst_as as usize];
        if !dar.router_ids.is_empty() {
            let r = dar.router_ids[(u128::from(dst) % dar.router_ids.len() as u128) as usize];
            if let Some(a) = self.device(r).fixed_addr {
                hops.push(a);
            }
        }
        // CPE WAN hop for any traffic entering an *active* delegation —
        // the packet traverses the CPE whether or not the final address
        // is held (this is how Yarrp discovers the network periphery).
        if let Some((region_prefix, entry)) = self.route_lookup(dst) {
            if entry.region == Region::HomePool {
                if let Some(network) =
                    self.active_home_network(dst, region_prefix, entry.as_index, t)
                {
                    let cpe = self.networks[network as usize].cpe;
                    if let Some(a) = self.home_addr_at(cpe, t) {
                        hops.push(a);
                    }
                }
            }
        }
        hops
    }

    /// Deterministic per-(address, probe-window) response coin flip.
    fn responds(&self, prob: f64, addr: Ipv6Addr, t: SimTime) -> bool {
        let h = hash64(
            self.seed ^ (u128::from(addr) as u64) ^ ((u128::from(addr) >> 64) as u64),
            format!("respond/{}", t.as_secs() / 600).as_bytes(),
        );
        (h as f64 / u64::MAX as f64) < prob
    }

    /// Sends an ICMPv6 echo request with unlimited TTL (ZMap6-style).
    pub fn probe_echo(&self, vp_as: u16, dst: Ipv6Addr, t: SimTime) -> ProbeOutcome {
        self.probe_ttl(vp_as, dst, 64, t)
    }

    /// Sends an ICMPv6 echo request with a TTL (Yarrp-style).
    ///
    /// The synthetic path is: VP border (uncounted) → `route_hops` → the
    /// destination. TTL expiring on a hop yields Time Exceeded from that
    /// hop's router; reaching the destination applies alias / firewall /
    /// presence / responsiveness rules.
    pub fn probe_ttl(&self, vp_as: u16, dst: Ipv6Addr, ttl: u8, t: SimTime) -> ProbeOutcome {
        let hops = self.route_hops(vp_as, dst, t);
        if (ttl as usize) <= hops.len() {
            let from = hops[ttl as usize - 1];
            // Routers occasionally rate-limit TTL-exceeded generation.
            return if self.responds(0.95, from, t) {
                ProbeOutcome::TimeExceeded { from, hop: ttl }
            } else {
                ProbeOutcome::NoResponse
            };
        }
        // A dark AS answers nothing, aliases included.
        if self
            .as_index_of(dst)
            .map(|ai| self.as_is_out(ai, t))
            .unwrap_or(false)
        {
            return ProbeOutcome::NoResponse;
        }
        match self.resolve(dst, t) {
            Resolution::Alias => ProbeOutcome::EchoReply { from: dst },
            Resolution::Router(id) | Resolution::Server(id) => {
                let dev = self.device(id);
                // ICMP-quiet web servers drop ping entirely (found only
                // by multi-protocol campaigns).
                let p = if dev.kind == DeviceKind::Server {
                    ServerRole::of_seed(dev.seed).answer_prob(ProbeKind::IcmpEcho)
                } else {
                    dev.kind.respond_prob()
                };
                if p > 0.0 && self.responds(p, dst, t) {
                    ProbeOutcome::EchoReply { from: dst }
                } else {
                    ProbeOutcome::NoResponse
                }
            }
            Resolution::CpeWan { device, .. } => {
                let dev = self.device(device);
                if self.responds(dev.kind.respond_prob(), dst, t) {
                    ProbeOutcome::EchoReply { from: dst }
                } else {
                    ProbeOutcome::NoResponse
                }
            }
            Resolution::HomeDevice { device, network } => {
                let net = &self.networks[network as usize];
                if net.firewalled {
                    return ProbeOutcome::NoResponse;
                }
                if self.attachment_at(device, t) != AttachKind::HomeWifi {
                    return ProbeOutcome::NoResponse; // phone is out
                }
                let dev = self.device(device);
                if self.responds(dev.kind.respond_prob(), dst, t) {
                    ProbeOutcome::EchoReply { from: dst }
                } else {
                    ProbeOutcome::NoResponse
                }
            }
            Resolution::MobileDevice(device) => {
                if self.attachment_at(device, t) != AttachKind::Cellular {
                    return ProbeOutcome::NoResponse;
                }
                let dev = self.device(device);
                if self.responds(dev.kind.respond_prob(), dst, t) {
                    ProbeOutcome::EchoReply { from: dst }
                } else {
                    ProbeOutcome::NoResponse
                }
            }
            Resolution::Vacant => {
                // The destination AS's core router reports unreachable
                // (sometimes; silence is common too).
                let hops = self.route_hops(vp_as, dst, t);
                match hops.last() {
                    Some(&from) if self.responds(0.5, dst, t) => ProbeOutcome::Unreachable { from },
                    _ => ProbeOutcome::NoResponse,
                }
            }
            Resolution::Unrouted => ProbeOutcome::NoResponse,
        }
    }

    /// Sends a probe of an arbitrary kind with unlimited TTL.
    ///
    /// ICMPv6 delegates to [`probe_echo`](Self::probe_echo); transport
    /// probes consult the destination's service model: servers answer on
    /// their role's ports (including ICMP-quiet web servers that only a
    /// multi-protocol campaign can find), alias middleboxes answer
    /// everything, CPE occasionally exposes a management HTTPS port, and
    /// client devices expose no services.
    pub fn probe_kind(
        &self,
        vp_as: u16,
        dst: Ipv6Addr,
        kind: ProbeKind,
        t: SimTime,
    ) -> ProbeOutcome {
        if kind == ProbeKind::IcmpEcho {
            return self.probe_echo(vp_as, dst, t);
        }
        if self
            .as_index_of(dst)
            .map(|ai| self.as_is_out(ai, t))
            .unwrap_or(false)
        {
            return ProbeOutcome::NoResponse;
        }
        match self.resolve(dst, t) {
            Resolution::Alias => ProbeOutcome::EchoReply { from: dst },
            Resolution::Server(id) => {
                let dev = self.device(id);
                let p = ServerRole::of_seed(dev.seed).answer_prob(kind);
                if p > 0.0 && self.responds(p, dst, t) {
                    ProbeOutcome::EchoReply { from: dst }
                } else {
                    ProbeOutcome::NoResponse
                }
            }
            Resolution::CpeWan { device, .. } => {
                // A sliver of CPE exposes its management UI on the WAN.
                let dev = self.device(device);
                let p = match kind {
                    ProbeKind::TcpSyn(443) => 0.06,
                    _ => 0.0,
                };
                if p > 0.0 && self.responds(p, dst, t) && dev.kind == DeviceKind::CpeRouter {
                    ProbeOutcome::EchoReply { from: dst }
                } else {
                    ProbeOutcome::NoResponse
                }
            }
            _ => ProbeOutcome::NoResponse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::IidStrategy;
    use crate::config::WorldConfig;
    use crate::time::SimDuration;

    fn world() -> World {
        World::build(WorldConfig::tiny(), 7)
    }

    #[test]
    fn forward_inverse_agree_for_home_devices() {
        let w = world();
        let t = SimTime(SimDuration::days(3).as_secs() + 1234);
        let mut checked = 0;
        for net in w.networks.iter().take(100) {
            for did in net.lan_devices() {
                let Some(addr) = w.home_addr_at(did, t) else {
                    continue;
                };
                match w.resolve(addr, t) {
                    Resolution::HomeDevice { device, network } => {
                        assert_eq!(device, did);
                        assert_eq!(network, net.id);
                        checked += 1;
                    }
                    Resolution::Alias => { /* alias-fronted AS */ }
                    other => panic!("device {did:?} at {addr} resolved to {other:?}"),
                }
            }
        }
        assert!(checked > 50, "only {checked} devices verified");
    }

    #[test]
    fn forward_inverse_agree_for_cpe_wan() {
        let w = world();
        let t = SimTime(SimDuration::days(10).as_secs());
        let mut checked = 0;
        for net in w.networks.iter().take(100) {
            let addr = w.home_addr_at(net.cpe, t).unwrap();
            match w.resolve(addr, t) {
                Resolution::CpeWan { device, network } => {
                    assert_eq!(device, net.cpe);
                    assert_eq!(network, net.id);
                    checked += 1;
                }
                other => panic!("cpe of net {} at {addr} resolved to {other:?}", net.id),
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn forward_inverse_agree_for_mobile() {
        let w = world();
        let t = SimTime(SimDuration::days(5).as_secs() + 99);
        let mut checked = 0;
        for asr in &w.ases {
            for &did in asr.subscriber_ids.iter().take(30) {
                let addr = w.cellular_addr_at(did, t).unwrap();
                match w.resolve(addr, t) {
                    Resolution::MobileDevice(d) => {
                        assert_eq!(d, did);
                        checked += 1;
                    }
                    Resolution::Alias => {}
                    other => panic!("{did:?} at {addr} resolved to {other:?}"),
                }
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn rotation_changes_prefix_not_identity() {
        let w = world();
        // Find a network in a rotating AS.
        let net = w
            .networks
            .iter()
            .find(|n| {
                matches!(
                    w.ases[n.as_index as usize].info.profile.rotation,
                    crate::addressing::RotationPolicy::Every(_)
                )
            })
            .unwrap();
        // 100 days crosses an epoch boundary for every rotating policy in
        // the catalog (fastest daily, slowest 90 days).
        let t1 = SimTime(0);
        let t2 = SimTime(SimDuration::days(100).as_secs());
        let p1 = w.network_prefix_at(net.id, t1);
        let p2 = w.network_prefix_at(net.id, t2);
        assert_ne!(p1, p2, "prefix did not rotate over 100 days");
        // And the inverse stays correct after rotation.
        let addr = w.home_addr_at(net.cpe, t2).unwrap();
        assert!(matches!(
            w.resolve(addr, t2),
            Resolution::CpeWan { .. } | Resolution::Alias
        ));
    }

    #[test]
    fn eui64_iid_survives_rotation() {
        let w = world();
        let t1 = SimTime(0);
        let t2 = SimTime(SimDuration::days(30).as_secs());
        let mut found = false;
        for net in &w.networks {
            let cpe = w.device(net.cpe);
            if cpe.strategy != IidStrategy::Eui64 {
                continue;
            }
            let a1 = w.home_addr_at(net.cpe, t1).unwrap();
            let a2 = w.home_addr_at(net.cpe, t2).unwrap();
            assert_eq!(Iid::from_addr(a1), Iid::from_addr(a2));
            assert_eq!(Iid::from_addr(a1).to_mac(), Some(cpe.mac));
            found = true;
        }
        assert!(found, "no EUI-64 CPE in tiny world");
    }

    #[test]
    fn privacy_iids_rotate_daily() {
        let w = world();
        let dev = w
            .devices
            .iter()
            .find(|d| d.strategy == IidStrategy::PrivacyRandom && d.home.is_some())
            .unwrap();
        let a1 = w.home_addr_at(dev.id, SimTime(0)).unwrap();
        let a2 = w
            .home_addr_at(dev.id, SimTime(SimDuration::days(1).as_secs() + 10))
            .unwrap();
        assert_ne!(Iid::from_addr(a1), Iid::from_addr(a2));
    }

    #[test]
    fn vacant_addresses_do_not_echo() {
        let w = world();
        let t = SimTime(1000);
        let asr = w
            .ases
            .iter()
            .find(|a| a.info.kind == AsKind::EyeballIsp && !a.network_ids.is_empty())
            .unwrap();
        // A random high address in the home pool is essentially surely vacant.
        let addr = v6addr::from_u128(asr.customer33().bits() | 0xdead_beef_dead_beef_cafe);
        if !asr.info.clients_aliased() {
            let r = w.resolve(addr, t);
            assert!(matches!(r, Resolution::Vacant), "{r:?}");
            let out = w.probe_echo(0, addr, t);
            assert!(!out.is_echo(), "{out:?}");
        }
    }

    #[test]
    fn aliased_prefixes_echo_everything() {
        let w = world();
        let t = SimTime(0);
        let alias = &w
            .ases
            .iter()
            .find(|a| !a.alias_48s.is_empty())
            .unwrap()
            .alias_48s[0];
        let addr = alias.offset(0x1234_5678_9abc);
        assert_eq!(w.resolve(addr, t), Resolution::Alias);
        assert!(w.probe_echo(0, addr, t).is_echo());
    }

    #[test]
    fn low_ttl_yields_time_exceeded_from_router() {
        let w = world();
        let t = SimTime(0);
        let net = &w.networks[0];
        let dst = w.home_addr_at(net.cpe, t).unwrap();
        let out = w.probe_ttl(w.vantage_points[0].as_index, dst, 1, t);
        match out {
            ProbeOutcome::TimeExceeded { from, hop } => {
                assert_eq!(hop, 1);
                // The hop is a transit router with a low IID.
                assert!(Iid::from_addr(from).is_low_byte());
            }
            ProbeOutcome::NoResponse => {} // rate-limited: allowed
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn traceroute_discovers_cpe_hop() {
        let w = world();
        let t = SimTime(0);
        // Find an unfirewalled home device and trace to it: the hop list
        // must end with its network's CPE WAN address.
        for net in &w.networks {
            let Some(did) = net.lan_devices().next() else {
                continue;
            };
            let Some(dst) = w.home_addr_at(did, t) else {
                continue;
            };
            if w.ases[net.as_index as usize].info.clients_aliased() {
                continue;
            }
            let hops = w.route_hops(w.vantage_points[0].as_index, dst, t);
            let cpe_wan = w.home_addr_at(net.cpe, t).unwrap();
            assert_eq!(hops.last(), Some(&cpe_wan));
            return;
        }
        panic!("no suitable home network found");
    }

    #[test]
    fn firewalled_lan_devices_are_silent() {
        let w = world();
        let t = SimTime(500);
        let mut tested = false;
        for net in w.networks.iter().filter(|n| n.firewalled) {
            if w.ases[net.as_index as usize].info.clients_aliased() {
                continue;
            }
            for did in net.lan_devices() {
                if w.attachment_at(did, t) != AttachKind::HomeWifi {
                    continue;
                }
                let Some(dst) = w.home_addr_at(did, t) else {
                    continue;
                };
                assert_eq!(w.probe_echo(0, dst, t), ProbeOutcome::NoResponse);
                tested = true;
            }
            if tested {
                break;
            }
        }
        assert!(tested, "no firewalled network exercised");
    }

    #[test]
    fn contact_addr_matches_attachment() {
        let w = world();
        let t = SimTime(3600 * 30);
        let mut wifi = 0;
        let mut cell = 0;
        for d in &w.devices {
            let (Some(home), Some(cellular)) = (d.home, d.cellular) else {
                continue;
            };
            let (addr, as_idx) = w.contact_addr_at(d.id, t).unwrap();
            match w.attachment_at(d.id, t) {
                AttachKind::HomeWifi => {
                    assert_eq!(addr, w.home_addr_at(d.id, t).unwrap());
                    assert_eq!(as_idx, w.networks[home.network as usize].as_index);
                    wifi += 1;
                }
                AttachKind::Cellular => {
                    assert_eq!(addr, w.cellular_addr_at(d.id, t).unwrap());
                    assert_eq!(as_idx, cellular.as_index);
                    cell += 1;
                }
                AttachKind::Fixed => unreachable!(),
            }
        }
        assert!(wifi > 0 && cell > 0, "wifi={wifi} cell={cell}");
    }

    #[test]
    fn server_roles_answer_their_ports() {
        use crate::resolve::{ProbeKind, ServerRole};
        assert_eq!(ServerRole::of_seed(0), ServerRole::Web);
        assert_eq!(ServerRole::of_seed(5), ServerRole::QuietWeb);
        assert_eq!(ServerRole::of_seed(6), ServerRole::Dns);
        assert_eq!(ServerRole::of_seed(9), ServerRole::Plain);
        assert_eq!(ServerRole::QuietWeb.answer_prob(ProbeKind::IcmpEcho), 0.0);
        assert!(ServerRole::QuietWeb.answer_prob(ProbeKind::TcpSyn(443)) > 0.5);
        assert!(ServerRole::Dns.answer_prob(ProbeKind::UdpDatagram(53)) > 0.5);
        assert_eq!(ServerRole::Plain.answer_prob(ProbeKind::TcpSyn(80)), 0.0);
        assert_eq!(ServerRole::Web.answer_prob(ProbeKind::UdpDatagram(53)), 0.0);
    }

    #[test]
    fn probe_kind_respects_service_model() {
        use crate::resolve::ProbeKind;
        let w = world();
        let t = SimTime(0);
        // Aliased space answers any probe kind.
        let alias = w.aliased_prefixes()[0].offset(7);
        assert!(w.probe_kind(0, alias, ProbeKind::TcpSyn(80), t).is_echo());
        assert!(w
            .probe_kind(0, alias, ProbeKind::UdpDatagram(53), t)
            .is_echo());
        // Routers never answer TCP.
        let router = w.ases[0].router48().offset(1);
        assert!(!w.probe_kind(0, router, ProbeKind::TcpSyn(443), t).is_echo());
        // Client devices never answer TCP.
        for net in w.networks.iter().take(20) {
            for did in net.lan_devices() {
                if let Some(a) = w.home_addr_at(did, t) {
                    if w.ases[net.as_index as usize].info.clients_aliased() {
                        continue;
                    }
                    assert!(!w.probe_kind(0, a, ProbeKind::TcpSyn(80), t).is_echo());
                }
            }
        }
    }

    #[test]
    fn probe_is_deterministic_within_window() {
        let w = world();
        let t = SimTime(42);
        let dst = w.home_addr_at(w.networks[0].cpe, t).unwrap();
        let a = w.probe_echo(3, dst, t);
        let b = w.probe_echo(3, dst, SimTime(42 + 30));
        assert_eq!(a, b, "same 10-minute window must give same outcome");
    }
}
