//! Simulation time.
//!
//! The study window mirrors the paper's: collection from 25 January to
//! 31 August 2022 (≈ 218 days), plus a one-week backscanning window in
//! January 2023. [`SimTime`] is seconds since the study start; all
//! behaviour schedules (rotation epochs, NTP contacts, mobility) are
//! expressed in it.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in simulated seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(1);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(3_600);
    /// One day.
    pub const DAY: SimDuration = SimDuration(86_400);
    /// One week.
    pub const WEEK: SimDuration = SimDuration(7 * 86_400);

    /// Builds from whole days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * 86_400)
    }

    /// Builds from whole hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * 3_600)
    }

    /// Builds from whole minutes.
    pub const fn minutes(n: u64) -> Self {
        SimDuration(n * 60)
    }

    /// The raw number of seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s == 0 {
            return f.write_str("0s");
        }
        let (d, rem) = (s / 86_400, s % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, sec) = (rem / 60, rem % 60);
        let mut wrote = false;
        for (v, unit) in [(d, "d"), (h, "h"), (m, "m"), (sec, "s")] {
            if v > 0 {
                if wrote {
                    f.write_str(" ")?;
                }
                write!(f, "{v}{unit}")?;
                wrote = true;
            }
        }
        Ok(())
    }
}

/// An instant in simulated time: seconds since the study start
/// (25 January 2022 00:00 UTC in the paper's calendar).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The study start (t = 0).
    pub const START: SimTime = SimTime(0);

    /// Seconds since the study start.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Whole days since the study start.
    pub const fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// Whole weeks since the study start.
    pub const fn week(self) -> u64 {
        self.0 / (7 * 86_400)
    }

    /// Elapsed duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// The paper's collection window: 25 Jan – 31 Aug 2022 ≈ 218 days.
pub const STUDY_DURATION: SimDuration = SimDuration::days(218);

/// Start of the backscanning week (January 2023 in the paper; here,
/// immediately after the collection window plus a gap).
pub const BACKSCAN_START: SimTime = SimTime(STUDY_DURATION.0 + SimDuration::days(140).0);

/// Length of the backscanning experiment (one week, §3).
pub const BACKSCAN_DURATION: SimDuration = SimDuration::days(7);

/// The batching interval for backscanning (ten minutes, §3).
pub const BACKSCAN_INTERVAL: SimDuration = SimDuration::minutes(10);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::START + SimDuration::days(2) + SimDuration::hours(3);
        assert_eq!(t.as_secs(), 2 * 86_400 + 3 * 3_600);
        assert_eq!(t.day(), 2);
        assert_eq!((t - SimDuration::days(1)).day(), 1);
        assert_eq!(t.since(SimTime::START).as_secs(), t.as_secs());
        // Saturating behaviour.
        assert_eq!(SimTime::START.since(t), SimDuration::ZERO);
        assert_eq!(SimTime::START - SimDuration::DAY, SimTime::START);
    }

    #[test]
    fn weeks_and_days() {
        let t = SimTime(SimDuration::days(15).as_secs());
        assert_eq!(t.week(), 2);
        assert_eq!(t.day(), 15);
    }

    #[test]
    fn study_constants_match_paper() {
        assert_eq!(STUDY_DURATION.as_days() as u64, 218);
        assert!(BACKSCAN_START > SimTime(STUDY_DURATION.as_secs()));
        assert_eq!(BACKSCAN_DURATION, SimDuration::WEEK);
        assert_eq!(BACKSCAN_INTERVAL.as_secs(), 600);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(SimDuration::days(1).to_string(), "1d");
        assert_eq!(
            (SimDuration::days(1) + SimDuration::hours(2) + SimDuration(61)).to_string(),
            "1d 2h 1m 1s"
        );
        assert_eq!(SimTime(86_400).to_string(), "t+1d");
    }
}
