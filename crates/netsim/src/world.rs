//! The synthetic Internet: construction.
//!
//! [`World::build`] instantiates countries → ASes → address regions →
//! customer networks → devices from a single seed, laying the address
//! space out deterministically so that any address can later be resolved
//! back to its (possibly former) holder without simulating packet history.
//!
//! ## Address plan
//!
//! Each dense AS index `a` owns the /32 `2a00:a::/32`:
//!
//! ```text
//! /32 ─┬─ /33 #0  infrastructure half
//! │    ├─ /48 #0      core router interfaces (::1, ::2, …)
//! │    └─ /34 #1      CPE WAN pool: one /64 per customer slot
//! └─── /33 #1  customer half
//!      ├─ eyeball/edu: delegation slots (/48, /56 or /64)
//!      ├─ mobile:      per-subscriber /64 slots
//!      └─ hosting:     server /64s (bottom) + aliased /48s (top)
//! ```
//!
//! Customer-slot assignment at prefix-rotation epoch `e` is the keyed
//! bijection [`IndexPermutation`] of `(world seed, AS, e)`, so both
//! directions — "what prefix does customer *n* hold?" and "who holds slot
//! *s*?" — are O(1).

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use v6addr::oui_db::OuiDb;
use v6addr::{Mac, Prefix, PrefixMap};

use crate::addressing::{generate_iid, IidInputs, IidStrategy};
use crate::asn::{AsCatalog, AsInfo, AsKind, Asn};
use crate::config::WorldConfig;
use crate::device::{draw_os, ActivityProfile, DeviceId, DeviceKind, Os, VendorPools};
use crate::geo_model::{Country, CountryRegistry};
use crate::permute::IndexPermutation;
use crate::rng::{hash64, Rng};
use crate::time::SimTime;

/// A device's home-network slot.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HomeSlot {
    /// World-wide network id.
    pub network: u32,
    /// Which /64 of the delegated prefix the device sits in.
    pub subnet: u8,
    /// Stable index of the device within the network.
    pub host_index: u16,
}

/// A device's cellular subscription.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellSlot {
    /// Dense index of the mobile AS.
    pub as_index: u16,
    /// Subscriber index within that AS.
    pub subscriber: u32,
}

/// One device in the world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Dense world-wide id.
    pub id: DeviceId,
    /// What the box is.
    pub kind: DeviceKind,
    /// Its operating system (drives NTP behaviour).
    pub os: Os,
    /// Its MAC address (leaks via EUI-64 when the strategy says so).
    pub mac: Mac,
    /// How it forms IIDs.
    pub strategy: IidStrategy,
    /// Per-device deterministic seed.
    pub seed: u64,
    /// Home attachment, if any.
    pub home: Option<HomeSlot>,
    /// Cellular attachment, if any.
    pub cellular: Option<CellSlot>,
    /// Precomputed address for fixed infrastructure (servers, routers).
    pub fixed_addr: Option<Ipv6Addr>,
    /// Whether the device's OS syncs time against the NTP Pool.
    pub uses_pool: bool,
    /// NTP contact behaviour.
    pub activity: ActivityProfile,
}

impl Device {
    /// The [`IidInputs`] for address generation.
    pub fn iid_inputs(&self, ipv4: Option<Ipv4Addr>) -> IidInputs {
        IidInputs {
            mac: self.mac,
            device_seed: self.seed,
            ipv4,
            host_index: self.home.map(|h| h.host_index).unwrap_or(0),
        }
    }
}

/// One fixed-line customer network (a home, or an Edu department).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HomeNetwork {
    /// World-wide network id.
    pub id: u32,
    /// Dense index of the owning AS.
    pub as_index: u16,
    /// Index within the AS (domain of the rotation permutation).
    pub local_index: u32,
    /// Whether the CPE filters unsolicited inbound traffic.
    pub firewalled: bool,
    /// The CPE router.
    pub cpe: DeviceId,
    /// Device-id range `[start, end)` of LAN devices (excludes the CPE).
    pub device_range: (u32, u32),
}

impl HomeNetwork {
    /// Iterates the LAN device ids.
    pub fn lan_devices(&self) -> impl Iterator<Item = DeviceId> {
        (self.device_range.0..self.device_range.1).map(DeviceId)
    }
}

/// What kind of address region a route-table entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// Core router interface /48.
    CoreRouters,
    /// CPE WAN /34 pool (one /64 per customer slot).
    CpeWanPool,
    /// Fixed-line customer delegation pool.
    HomePool,
    /// Mobile per-subscriber /64 pool.
    MobilePool,
    /// Hosting server /64s.
    ServerPool,
    /// A fully aliased prefix: every address answers.
    Aliased,
}

/// A route-table entry: which AS, and which of its regions.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Dense AS index.
    pub as_index: u16,
    /// Region kind.
    pub region: Region,
}

/// Per-AS runtime state.
#[derive(Debug, Clone)]
pub struct AsRuntime {
    /// Static catalog facts.
    pub info: AsInfo,
    /// Dense index (position in `World::ases`).
    pub index: u16,
    /// Permutation domain for home-network slots.
    pub home_slot_count: u64,
    /// Permutation domain for mobile-subscriber slots.
    pub mobile_slot_count: u64,
    /// local_index → network id.
    pub network_ids: Vec<u32>,
    /// subscriber index → device id.
    pub subscriber_ids: Vec<DeviceId>,
    /// Hosting servers.
    pub server_ids: Vec<DeviceId>,
    /// Core router devices.
    pub router_ids: Vec<DeviceId>,
    /// Ground-truth fully aliased prefixes in this AS.
    pub alias_48s: Vec<Prefix>,
}

impl AsRuntime {
    /// The AS's /32.
    pub fn prefix32(&self) -> Prefix {
        as_prefix32(self.index)
    }

    /// The infrastructure /33.
    pub fn infra33(&self) -> Prefix {
        self.prefix32().subprefix(33, 0)
    }

    /// The core-router /48.
    pub fn router48(&self) -> Prefix {
        self.infra33().subprefix(48, 0)
    }

    /// The CPE-WAN /34.
    pub fn cpe_wan34(&self) -> Prefix {
        self.infra33().subprefix(34, 1)
    }

    /// The customer /33.
    pub fn customer33(&self) -> Prefix {
        self.prefix32().subprefix(33, 1)
    }

    /// The AS's synthetic IPv4 block (a /20), for embedded-IPv4 checks.
    pub fn v4_block(&self) -> (u32, u8) {
        ((100u32 << 24) | ((self.index as u32) << 12), 20)
    }

    /// A deterministic IPv4 address for one of this AS's hosts.
    pub fn v4_for(&self, seed: u64) -> Ipv4Addr {
        let (base, _) = self.v4_block();
        Ipv4Addr::from(base | (seed as u32 & 0xfff))
    }
}

/// The /32 owned by dense AS index `a`: `2a00:<a>::/32`.
pub fn as_prefix32(a: u16) -> Prefix {
    Prefix::from_bits((0x2a00u128 << 112) | ((a as u128) << 96), 32)
}

/// An NTP-server vantage point (one of the paper's 27 VPSes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Stable VP id (0..27).
    pub id: u16,
    /// Hosting AS the VPS lives in.
    pub as_index: u16,
    /// Country of the VPS.
    pub country: Country,
    /// The server's own address.
    pub addr: Ipv6Addr,
}

/// The fully built synthetic Internet.
///
/// ```
/// use v6netsim::{SimTime, World, WorldConfig};
///
/// let world = World::build(WorldConfig::tiny(), 42);
/// // Forward: what address does a device present right now?
/// let cpe = world.networks[0].cpe;
/// let addr = world.home_addr_at(cpe, SimTime(0)).unwrap();
/// // Inverse: who holds that address? (No packet history needed.)
/// assert!(matches!(
///     world.resolve(addr, SimTime(0)),
///     v6netsim::Resolution::CpeWan { .. } | v6netsim::Resolution::Alias
/// ));
/// ```
pub struct World {
    /// The seed everything derives from.
    pub seed: u64,
    /// Scale configuration.
    pub config: WorldConfig,
    /// Country registry.
    pub countries: CountryRegistry,
    /// Per-AS runtime state; index is the dense AS id.
    pub ases: Vec<AsRuntime>,
    /// All fixed-line customer networks.
    pub networks: Vec<HomeNetwork>,
    /// All devices.
    pub devices: Vec<Device>,
    /// The OUI registry in force.
    pub oui_db: OuiDb,
    /// The 27 NTP vantage points.
    pub vantage_points: Vec<VantagePoint>,
    pub(crate) route: PrefixMap<RouteEntry>,
    pub(crate) fixed_addrs: HashMap<u128, DeviceId>,
    /// Per-AS scheduled outage windows as (first_day, end_day) pairs.
    pub(crate) outage_windows: Vec<Vec<(u64, u64)>>,
}

impl World {
    /// Builds a world from a configuration and seed. Bit-reproducible.
    pub fn build(config: WorldConfig, seed: u64) -> World {
        let countries = CountryRegistry::builtin();
        let catalog = AsCatalog::builtin(&countries);
        let oui_db = OuiDb::builtin();
        let pools = VendorPools::builtin(&oui_db);
        let root = Rng::new(seed);

        let mut ases: Vec<AsRuntime> = catalog
            .ases
            .iter()
            .enumerate()
            .map(|(i, info)| AsRuntime {
                info: info.clone(),
                index: i as u16,
                home_slot_count: 1,
                mobile_slot_count: 1,
                network_ids: Vec::new(),
                subscriber_ids: Vec::new(),
                server_ids: Vec::new(),
                router_ids: Vec::new(),
                alias_48s: Vec::new(),
            })
            .collect();

        // ---- Apportion home networks and mobile subscribers ----
        // Weight of an AS = country client weight × AS share within it.
        let weight_of = |a: &AsInfo, kinds: &[AsKind]| -> f64 {
            if !kinds.contains(&a.kind) {
                return 0.0;
            }
            let cw = countries
                .get(a.country)
                .map(|c| c.client_weight)
                .unwrap_or(0.0);
            cw * a.client_share
        };
        let home_weights: Vec<f64> = catalog
            .ases
            .iter()
            .map(|a| weight_of(a, &[AsKind::EyeballIsp, AsKind::Edu]))
            .collect();
        let mobile_weights: Vec<f64> = catalog
            .ases
            .iter()
            .map(|a| weight_of(a, &[AsKind::MobileIsp]))
            .collect();
        let apportion = |weights: &[f64], total: u32| -> Vec<u32> {
            let sum: f64 = weights.iter().sum();
            weights
                .iter()
                .map(|w| ((w / sum) * total as f64).round() as u32)
                .collect()
        };
        let homes_per_as = apportion(&home_weights, config.home_networks);
        let subs_per_as = apportion(&mobile_weights, config.mobile_subscribers);

        let mut devices: Vec<Device> = Vec::new();
        let mut networks: Vec<HomeNetwork> = Vec::new();
        let mut fixed_addrs: HashMap<u128, DeviceId> = HashMap::new();

        // ---- Core routers (every AS) ----
        #[allow(clippy::needless_range_loop)] // `ases` is mutated by index
        for ai in 0..ases.len() {
            let mut rng = root.fork(b"routers", ai as u64);
            let r48 = ases[ai].router48();
            for k in 0..config.core_routers_per_as {
                let id = DeviceId(devices.len() as u32);
                let addr = r48.offset(k as u128 + 1);
                devices.push(Device {
                    id,
                    kind: DeviceKind::CoreRouter,
                    os: Os::Embedded,
                    mac: pools.draw_mac(DeviceKind::CoreRouter, &mut rng),
                    strategy: IidStrategy::LowByte,
                    seed: hash64(seed, format!("router/{ai}/{k}").as_bytes()),
                    home: None,
                    cellular: None,
                    fixed_addr: Some(addr),
                    uses_pool: false,
                    activity: ActivityProfile::for_kind(DeviceKind::CoreRouter),
                });
                fixed_addrs.insert(u128::from(addr), id);
                ases[ai].router_ids.push(id);
            }
        }

        // ---- Hosting servers and aliased prefixes ----
        #[allow(clippy::needless_range_loop)] // `ases` is mutated by index
        for ai in 0..ases.len() {
            if ases[ai].info.kind != AsKind::Hosting {
                continue;
            }
            let mut rng = root.fork(b"servers", ai as u64);
            let cust = ases[ai].customer33();
            for j in 0..config.servers_per_hosting_as {
                let id = DeviceId(devices.len() as u32);
                let dev_seed = hash64(seed, format!("server/{ai}/{j}").as_bytes());
                // Cloud/CDN fleets mostly carry provider-assigned random
                // addresses; manual low-byte addressing is the minority
                // (this is what pulls the Hitlist's entropy CDF above
                // CAIDA's in Fig. 1).
                let strategy = {
                    let x = rng.f64();
                    if x < 0.30 {
                        IidStrategy::LowByte
                    } else if x < 0.375 {
                        IidStrategy::LowTwoBytes
                    } else if x < 0.45 {
                        IidStrategy::Ipv4Embedded(v6addr::ipv4_embed::Ipv4Encoding::LowHex)
                    } else {
                        IidStrategy::StableRandom
                    }
                };
                let mac = pools.draw_mac(DeviceKind::Server, &mut rng);
                let net64 = cust.subprefix(64, j as u64);
                let server_v4 = {
                    let (base, _) = ((100u32 << 24) | ((ai as u32) << 12), 20u8);
                    std::net::Ipv4Addr::from(base | (dev_seed as u32 & 0xfff))
                };
                let inputs = IidInputs {
                    mac,
                    device_seed: dev_seed,
                    ipv4: Some(server_v4),
                    host_index: j as u16,
                };
                let iid = generate_iid(strategy, &inputs, 0, 0);
                let addr = v6addr::join((net64.bits() >> 64) as u64, iid);
                devices.push(Device {
                    id,
                    kind: DeviceKind::Server,
                    os: draw_os(DeviceKind::Server, &mut rng),
                    mac,
                    strategy,
                    seed: dev_seed,
                    home: None,
                    cellular: None,
                    fixed_addr: Some(addr),
                    uses_pool: rng.chance(0.5), // many Linux servers do use the pool
                    activity: ActivityProfile::for_kind(DeviceKind::Server),
                });
                fixed_addrs.insert(u128::from(addr), id);
                ases[ai].server_ids.push(id);
            }
            // Aliased /48s at the top of the customer half.
            let max48 = cust.subprefix_count(48);
            for j in 0..config.aliased_48s_per_hosting_as as u64 {
                ases[ai].alias_48s.push(cust.subprefix(48, max48 - 1 - j));
            }
        }

        // ---- Fixed-line customer networks ----
        let device_kind_weights: [(DeviceKind, f64); 6] = [
            (DeviceKind::Smartphone, 0.35),
            (DeviceKind::Laptop, 0.20),
            (DeviceKind::Desktop, 0.10),
            (DeviceKind::IotSensor, 0.15),
            (DeviceKind::SmartSpeaker, 0.08),
            (DeviceKind::SetTopBox, 0.12),
        ];
        let avm = VendorPools::avm_ouis(&oui_db);
        for ai in 0..ases.len() {
            let n_homes = homes_per_as[ai];
            if n_homes == 0 {
                continue;
            }
            let profile = ases[ai].info.profile.clone();
            let is_german = ases[ai].info.country == Country::new("DE");
            ases[ai].home_slot_count = slot_domain(n_homes as u64, profile.delegation_len, 33);
            // Mobile-AS list of the same country, for dual-homed phones.
            let same_country_mobile: Vec<u16> = ases
                .iter()
                .filter(|r| {
                    r.info.kind == AsKind::MobileIsp && r.info.country == ases[ai].info.country
                })
                .map(|r| r.index)
                .collect();
            for local in 0..n_homes {
                let net_id = networks.len() as u32;
                let mut rng = root.fork(b"home", ((ai as u64) << 32) | local as u64);
                let firewalled = rng.chance(profile.firewall_rate);

                // CPE first.
                let cpe_id = DeviceId(devices.len() as u32);
                let cpe_seed = hash64(seed, format!("cpe/{ai}/{local}").as_bytes());
                let cpe_mac = if is_german && !avm.is_empty() {
                    pools.draw_mac_with_oui(*rng.choose(&avm), &mut rng)
                } else {
                    pools.draw_mac(DeviceKind::CpeRouter, &mut rng)
                };
                let cpe_strategy = if rng.chance(profile.cpe_eui64_rate) {
                    IidStrategy::Eui64
                } else {
                    IidStrategy::StableRandom
                };
                devices.push(Device {
                    id: cpe_id,
                    kind: DeviceKind::CpeRouter,
                    os: Os::Embedded,
                    mac: cpe_mac,
                    strategy: cpe_strategy,
                    seed: cpe_seed,
                    home: Some(HomeSlot {
                        network: net_id,
                        subnet: 0,
                        host_index: 0,
                    }),
                    cellular: None,
                    fixed_addr: None,
                    uses_pool: rng.chance(0.6),
                    activity: ActivityProfile::for_kind(DeviceKind::CpeRouter),
                });

                // LAN devices.
                let n_dev = 1 + rng.poisson((config.mean_devices_per_home - 1.0).max(0.0)) as u32;
                let start = devices.len() as u32;
                let max_subnet: u8 = match profile.delegation_len {
                    64 => 1,
                    56 => 4,
                    _ => 16,
                };
                for h in 0..n_dev {
                    let id = DeviceId(devices.len() as u32);
                    let w: Vec<f64> = device_kind_weights.iter().map(|&(_, w)| w).collect();
                    let kind = device_kind_weights[rng.weighted(&w)].0;
                    let os = draw_os(kind, &mut rng);
                    let dev_seed = hash64(seed, format!("dev/{ai}/{local}/{h}").as_bytes());
                    // IoT-ish gear skews EUI-64 regardless of AS profile.
                    let mut strategy = profile.draw_strategy(&mut rng);
                    if matches!(
                        kind,
                        DeviceKind::IotSensor | DeviceKind::SmartSpeaker | DeviceKind::SetTopBox
                    ) && rng.chance(0.25)
                    {
                        strategy = IidStrategy::Eui64;
                    }
                    let cellular = if kind == DeviceKind::Smartphone
                        && !same_country_mobile.is_empty()
                        && rng.chance(config.dual_homed_phone_rate)
                    {
                        let m_as = *rng.choose(&same_country_mobile);
                        Some(CellSlot {
                            as_index: m_as,
                            subscriber: u32::MAX, // patched below
                        })
                    } else {
                        None
                    };
                    devices.push(Device {
                        id,
                        kind,
                        os,
                        mac: pools.draw_mac(kind, &mut rng),
                        strategy,
                        seed: dev_seed,
                        home: Some(HomeSlot {
                            network: net_id,
                            subnet: rng.below(max_subnet as u64) as u8,
                            host_index: (h + 1) as u16,
                        }),
                        cellular,
                        fixed_addr: None,
                        uses_pool: os.uses_ntp_pool(),
                        activity: ActivityProfile::for_kind(kind),
                    });
                }
                let end = devices.len() as u32;
                networks.push(HomeNetwork {
                    id: net_id,
                    as_index: ai as u16,
                    local_index: local,
                    firewalled,
                    cpe: cpe_id,
                    device_range: (start, end),
                });
                ases[ai].network_ids.push(net_id);
            }
        }

        // ---- Mobile-only subscribers ----
        for ai in 0..ases.len() {
            let n_subs = subs_per_as[ai];
            if n_subs == 0 {
                continue;
            }
            let mut rng = root.fork(b"mobile", ai as u64);
            let profile = ases[ai].info.profile.clone();
            for s in 0..n_subs {
                let id = DeviceId(devices.len() as u32);
                let kind = if rng.chance(0.92) {
                    DeviceKind::Smartphone
                } else {
                    DeviceKind::IotSensor // cellular IoT
                };
                let os = draw_os(kind, &mut rng);
                let dev_seed = hash64(seed, format!("sub/{ai}/{s}").as_bytes());
                let mut strategy = profile.draw_strategy(&mut rng);
                if kind == DeviceKind::IotSensor && rng.chance(0.3) {
                    strategy = IidStrategy::Eui64;
                }
                devices.push(Device {
                    id,
                    kind,
                    os,
                    mac: pools.draw_mac(kind, &mut rng),
                    strategy,
                    seed: dev_seed,
                    home: None,
                    cellular: Some(CellSlot {
                        as_index: ai as u16,
                        subscriber: ases[ai].subscriber_ids.len() as u32,
                    }),
                    fixed_addr: None,
                    uses_pool: os.uses_ntp_pool(),
                    activity: ActivityProfile::for_kind(kind),
                });
                ases[ai].subscriber_ids.push(id);
            }
        }

        // ---- Patch dual-homed phones into subscriber tables ----
        #[allow(clippy::needless_range_loop)] // `devices` is mutated by index
        for d in 0..devices.len() {
            if let Some(CellSlot {
                as_index,
                subscriber,
            }) = devices[d].cellular
            {
                if subscriber == u32::MAX {
                    let sub = ases[as_index as usize].subscriber_ids.len() as u32;
                    ases[as_index as usize]
                        .subscriber_ids
                        .push(DeviceId(d as u32));
                    devices[d].cellular = Some(CellSlot {
                        as_index,
                        subscriber: sub,
                    });
                }
            }
        }
        for asr in ases.iter_mut() {
            asr.mobile_slot_count = slot_domain(asr.subscriber_ids.len() as u64, 64, 33);
        }

        // ---- Route table ----
        let mut route = PrefixMap::new();
        for asr in &ases {
            route.insert(
                asr.router48(),
                RouteEntry {
                    as_index: asr.index,
                    region: Region::CoreRouters,
                },
            );
            match asr.info.kind {
                AsKind::EyeballIsp | AsKind::Edu => {
                    route.insert(
                        asr.cpe_wan34(),
                        RouteEntry {
                            as_index: asr.index,
                            region: Region::CpeWanPool,
                        },
                    );
                    route.insert(
                        asr.customer33(),
                        RouteEntry {
                            as_index: asr.index,
                            region: Region::HomePool,
                        },
                    );
                }
                AsKind::MobileIsp => {
                    route.insert(
                        asr.customer33(),
                        RouteEntry {
                            as_index: asr.index,
                            region: Region::MobilePool,
                        },
                    );
                }
                AsKind::Hosting => {
                    route.insert(
                        asr.customer33(),
                        RouteEntry {
                            as_index: asr.index,
                            region: Region::ServerPool,
                        },
                    );
                    for p in &asr.alias_48s {
                        route.insert(
                            *p,
                            RouteEntry {
                                as_index: asr.index,
                                region: Region::Aliased,
                            },
                        );
                    }
                }
                AsKind::Transit => {}
            }
        }

        // ---- Vantage points: 27 servers in 20 countries (§3) ----
        let vp_countries = [
            "US", "US", "US", "US", "US", "US", "JP", "JP", "DE", "DE", "AU", "BH", "BR", "BG",
            "HK", "IN", "ID", "MX", "NL", "PL", "SG", "ZA", "KR", "ES", "SE", "TW", "GB",
        ];
        let hosting: Vec<u16> = ases
            .iter()
            .filter(|a| a.info.kind == AsKind::Hosting)
            .map(|a| a.index)
            .collect();
        let mut vp_rng = root.fork(b"vps", 0);
        let vantage_points: Vec<VantagePoint> = vp_countries
            .iter()
            .enumerate()
            .map(|(i, cc)| {
                let country = Country::new(cc);
                // Prefer a hosting AS in-country; fall back to any.
                let in_country: Vec<u16> = hosting
                    .iter()
                    .copied()
                    .filter(|&h| ases[h as usize].info.country == country)
                    .collect();
                let as_index = if in_country.is_empty() {
                    hosting[vp_rng.below(hosting.len() as u64) as usize]
                } else {
                    *vp_rng.choose(&in_country)
                };
                // VPs live in a reserved /64 of the hosting customer half,
                // far above the server slots.
                let net64 = ases[as_index as usize]
                    .customer33()
                    .subprefix(64, (1u64 << 30) + i as u64);
                let addr = v6addr::join((net64.bits() >> 64) as u64, v6addr::Iid::new(0x123));
                VantagePoint {
                    id: i as u16,
                    as_index,
                    country,
                    addr,
                }
            })
            .collect();

        // Resolve scheduled outages to dense AS indices.
        let mut outage_windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); ases.len()];
        for spec in &config.outages {
            if let Some(asr) = ases.iter().find(|a| a.info.name == spec.as_name) {
                outage_windows[asr.index as usize]
                    .push((spec.start_day, spec.start_day + spec.duration_days));
            }
        }

        World {
            seed,
            config,
            countries,
            ases,
            networks,
            devices,
            oui_db,
            vantage_points,
            route,
            fixed_addrs,
            outage_windows,
        }
    }

    /// True when AS `as_index` is inside a scheduled outage at `t`.
    pub fn as_is_out(&self, as_index: u16, t: SimTime) -> bool {
        let day = t.as_secs() / 86_400;
        self.outage_windows[as_index as usize]
            .iter()
            .any(|&(a, b)| day >= a && day < b)
    }

    /// Stride spreading customer slots across the pool region, so active
    /// delegations scatter over many /48s instead of packing the bottom
    /// of the pool (domain and capacity are both powers of two).
    pub(crate) fn home_stride(&self, as_index: u16) -> u64 {
        let asr = &self.ases[as_index as usize];
        let cap_bits = (asr.info.profile.delegation_len - 33).min(40);
        // Dense regional pools: several customers share a /48, but the
        // occupied region spans many /48s (real ISPs allocate in blocks).
        ((1u64 << cap_bits) / asr.home_slot_count).clamp(1, 64)
    }

    /// Stride for the CPE-WAN /64 pool (capacity 2^30 slots in the /34).
    pub(crate) fn wan_stride(&self, as_index: u16) -> u64 {
        let asr = &self.ases[as_index as usize];
        ((1u64 << 30) / asr.home_slot_count).clamp(1, 256)
    }

    /// Stride for the mobile /64 pool (capacity 2^31 slots in the /33).
    pub(crate) fn mobile_stride(&self, as_index: u16) -> u64 {
        let asr = &self.ases[as_index as usize];
        ((1u64 << 31) / asr.mobile_slot_count).clamp(1, 256)
    }

    /// The rotation permutation for an AS's home slots at epoch `e`.
    pub(crate) fn home_perm(&self, as_index: u16, epoch: u64) -> IndexPermutation {
        let asr = &self.ases[as_index as usize];
        IndexPermutation::new(
            asr.home_slot_count,
            hash64(
                self.seed ^ epoch.wrapping_mul(0x9e37),
                format!("hperm/{as_index}").as_bytes(),
            ),
        )
    }

    /// The attach permutation for an AS's mobile slots at epoch `e`.
    pub(crate) fn mobile_perm(&self, as_index: u16, epoch: u64) -> IndexPermutation {
        let asr = &self.ases[as_index as usize];
        IndexPermutation::new(
            asr.mobile_slot_count,
            hash64(
                self.seed ^ epoch.wrapping_mul(0x85eb),
                format!("mperm/{as_index}").as_bytes(),
            ),
        )
    }

    /// Every routed prefix with its origin ASN (the BGP view active
    /// campaigns start from).
    pub fn routed_prefixes(&self) -> Vec<(Prefix, Asn)> {
        self.ases
            .iter()
            .map(|a| (a.prefix32(), a.info.asn))
            .collect()
    }

    /// Origin-AS lookup for an address.
    pub fn asn_of(&self, addr: Ipv6Addr) -> Option<Asn> {
        let bits = u128::from(addr);
        if bits >> 112 != 0x2a00 {
            return None;
        }
        let idx = ((bits >> 96) & 0xffff) as usize;
        self.ases.get(idx).map(|a| a.info.asn)
    }

    /// Dense AS index for an address.
    pub fn as_index_of(&self, addr: Ipv6Addr) -> Option<u16> {
        let bits = u128::from(addr);
        if bits >> 112 != 0x2a00 {
            return None;
        }
        let idx = ((bits >> 96) & 0xffff) as u16;
        if (idx as usize) < self.ases.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Ground-truth country of an address (via its origin AS).
    pub fn country_of(&self, addr: Ipv6Addr) -> Option<Country> {
        self.as_index_of(addr)
            .map(|i| self.ases[i as usize].info.country)
    }

    /// All ground-truth fully aliased prefixes.
    pub fn aliased_prefixes(&self) -> Vec<Prefix> {
        self.ases.iter().flat_map(|a| a.alias_48s.clone()).collect()
    }

    /// Servers whose addresses are public knowledge (DNS, CT logs, …) —
    /// the seed corpus active hitlists bootstrap from.
    pub fn public_servers(&self) -> Vec<Ipv6Addr> {
        self.devices
            .iter()
            .filter(|d| d.kind == DeviceKind::Server)
            .filter(|d| d.seed & 0b111 < 5) // ~60% are in DNS
            .filter_map(|d| d.fixed_addr)
            .collect()
    }

    /// Total number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A device by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// A network by id.
    pub fn network(&self, id: u32) -> &HomeNetwork {
        &self.networks[id as usize]
    }

    /// Route-table lookup (most specific region covering `addr`).
    pub fn route_lookup(&self, addr: Ipv6Addr) -> Option<(Prefix, RouteEntry)> {
        self.route.longest_match(addr).map(|(p, e)| (p, *e))
    }
}

/// Picks a permutation domain much larger than `n` occupied slots (real
/// delegation pools are sparse: most /48s of an ISP's block hold no
/// active customer), capped by the slots that fit in the region.
fn slot_domain(n: u64, delegation_len: u8, pool_len: u8) -> u64 {
    let cap_bits = (delegation_len - pool_len).min(40);
    let cap = 1u64 << cap_bits;
    let want = (n.max(1) * 64).next_power_of_two();
    want.min(cap).max(1)
}

/// Deterministic "is this phone on WiFi this hour?" draw.
pub(crate) fn on_wifi(world_seed: u64, device_seed: u64, t: SimTime, wifi_presence: f64) -> bool {
    let h = hash64(
        world_seed ^ device_seed,
        format!("wifi/{}", t.as_secs() / 3600).as_bytes(),
    );
    (h as f64 / u64::MAX as f64) < wifi_presence
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> World {
        World::build(WorldConfig::tiny(), 42)
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.device_count(), b.device_count());
        assert_eq!(a.networks.len(), b.networks.len());
        for (x, y) in a.devices.iter().zip(b.devices.iter()).take(500) {
            assert_eq!(x.mac, y.mac);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.strategy, y.strategy);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::build(WorldConfig::tiny(), 1);
        let b = World::build(WorldConfig::tiny(), 2);
        let same = a
            .devices
            .iter()
            .zip(b.devices.iter())
            .filter(|(x, y)| x.mac == y.mac)
            .count();
        assert!(same < a.device_count() / 10);
    }

    #[test]
    fn network_counts_match_config() {
        let w = tiny();
        let total: u32 = w.config.home_networks;
        // Rounding in apportionment allows small drift.
        assert!((w.networks.len() as i64 - total as i64).unsigned_abs() < total as u64 / 10 + 20);
    }

    #[test]
    fn every_network_has_cpe_and_devices() {
        let w = tiny();
        for n in &w.networks {
            let cpe = w.device(n.cpe);
            assert_eq!(cpe.kind, DeviceKind::CpeRouter);
            assert_eq!(cpe.home.unwrap().network, n.id);
            assert!(n.device_range.1 > n.device_range.0, "empty home {}", n.id);
            for d in n.lan_devices() {
                assert_eq!(w.device(d).home.unwrap().network, n.id);
            }
        }
    }

    #[test]
    fn mobile_subscribers_indexed_consistently() {
        let w = tiny();
        for asr in &w.ases {
            for (i, &id) in asr.subscriber_ids.iter().enumerate() {
                let cell = w.device(id).cellular.unwrap();
                assert_eq!(cell.as_index, asr.index);
                assert_eq!(cell.subscriber as usize, i);
            }
            assert!(asr.mobile_slot_count >= asr.subscriber_ids.len() as u64);
            assert!(asr.home_slot_count >= asr.network_ids.len() as u64);
        }
    }

    #[test]
    fn asn_lookup_round_trips() {
        let w = tiny();
        for asr in w.ases.iter().take(20) {
            let addr = asr.router48().offset(1);
            assert_eq!(w.asn_of(addr), Some(asr.info.asn));
            assert_eq!(w.country_of(addr), Some(asr.info.country));
        }
        assert_eq!(w.asn_of("2001:db8::1".parse().unwrap()), None);
    }

    #[test]
    fn route_table_covers_regions() {
        let w = tiny();
        let eyeball = w
            .ases
            .iter()
            .find(|a| a.info.kind == AsKind::EyeballIsp && !a.network_ids.is_empty())
            .unwrap();
        let (_, e) = w.route_lookup(eyeball.customer33().offset(12345)).unwrap();
        assert_eq!(e.region, Region::HomePool);
        let (_, e) = w.route_lookup(eyeball.router48().offset(1)).unwrap();
        assert_eq!(e.region, Region::CoreRouters);
        let hosting = w
            .ases
            .iter()
            .find(|a| a.info.kind == AsKind::Hosting)
            .unwrap();
        let alias = hosting.alias_48s[0];
        let (_, e) = w.route_lookup(alias.offset(0xdeadbeef)).unwrap();
        assert_eq!(e.region, Region::Aliased);
    }

    #[test]
    fn vantage_points_match_paper_layout() {
        let w = tiny();
        assert_eq!(w.vantage_points.len(), 27);
        let us = w
            .vantage_points
            .iter()
            .filter(|v| v.country == Country::new("US"))
            .count();
        assert_eq!(us, 6);
        let countries: std::collections::BTreeSet<_> =
            w.vantage_points.iter().map(|v| v.country).collect();
        assert_eq!(countries.len(), 20);
    }

    #[test]
    fn fixed_addrs_resolve_to_their_devices() {
        let w = tiny();
        for d in w
            .devices
            .iter()
            .filter(|d| d.fixed_addr.is_some())
            .take(100)
        {
            let got = w.fixed_addrs.get(&u128::from(d.fixed_addr.unwrap()));
            assert_eq!(got, Some(&d.id));
        }
    }

    #[test]
    fn public_servers_subset_of_servers() {
        let w = tiny();
        let servers: std::collections::HashSet<u128> = w
            .devices
            .iter()
            .filter(|d| d.kind == DeviceKind::Server)
            .filter_map(|d| d.fixed_addr.map(u128::from))
            .collect();
        let public = w.public_servers();
        assert!(!public.is_empty());
        assert!(public.len() < servers.len());
        for p in &public {
            assert!(servers.contains(&u128::from(*p)));
        }
    }

    #[test]
    fn slot_domain_bounds() {
        assert!(slot_domain(100, 56, 33) >= 6400);
        assert_eq!(slot_domain(0, 56, 33), 64); // max(1*64)
                                                // /64 delegations in a /33 cap at 2^31 but want stays small.
        assert_eq!(slot_domain(1000, 64, 33), 65_536);
        // Edu /48 delegations cap at 2^15.
        assert_eq!(slot_domain(40_000, 48, 33), 1 << 15);
    }

    #[test]
    fn german_cpe_is_avm_eui64_heavy() {
        let w = tiny();
        let de: Vec<&HomeNetwork> = w
            .networks
            .iter()
            .filter(|n| w.ases[n.as_index as usize].info.country == Country::new("DE"))
            .collect();
        assert!(!de.is_empty(), "no German networks in tiny world");
        let avm = VendorPools::avm_ouis(&w.oui_db);
        let eui = de
            .iter()
            .filter(|n| w.device(n.cpe).strategy == IidStrategy::Eui64)
            .count();
        let avm_count = de
            .iter()
            .filter(|n| avm.contains(&w.device(n.cpe).mac.oui()))
            .count();
        assert!(eui as f64 / de.len() as f64 > 0.6, "{eui}/{}", de.len());
        assert!(avm_count as f64 / de.len() as f64 > 0.9);
    }
}
