//! World-scale configuration.
//!
//! The paper's substrate is the production Internet (billions of devices);
//! we scale the synthetic world down and record the factor in
//! EXPERIMENTS.md. All headline comparisons are ratios and distribution
//! shapes, which survive scaling.

use serde::{Deserialize, Serialize};

/// A scheduled connectivity outage of one AS (an application the paper's
/// intro motivates: outage detection from passive corpora [20, 39, 59]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutageSpec {
    /// Organization name of the affected AS (must match the catalog).
    pub as_name: String,
    /// First affected study day (inclusive).
    pub start_day: u64,
    /// Number of affected days.
    pub duration_days: u64,
}

impl OutageSpec {
    /// True when study second `t_secs` falls inside the outage.
    pub fn covers_secs(&self, t_secs: u64) -> bool {
        let day = t_secs / 86_400;
        day >= self.start_day && day < self.start_day + self.duration_days
    }
}

/// Knobs controlling the size and texture of the synthetic Internet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of home (fixed-line) customer networks world-wide.
    pub home_networks: u32,
    /// Mean client devices per home network (besides the CPE), ≥ 1.
    pub mean_devices_per_home: f64,
    /// Number of mobile-only subscribers (handsets on cellular plans).
    pub mobile_subscribers: u32,
    /// Fraction of home smartphones that also have a cellular plan
    /// (the §5.2 "user movement" population).
    pub dual_homed_phone_rate: f64,
    /// Servers per hosting AS.
    pub servers_per_hosting_as: u32,
    /// Core routers per AS.
    pub core_routers_per_as: u32,
    /// Fully-aliased /48s per hosting AS (the Hitlist's alias-list fodder).
    pub aliased_48s_per_hosting_as: u32,
    /// Probability that a phone found at home is on WiFi (vs cellular) at
    /// any given hour.
    pub wifi_presence: f64,
    /// Scheduled AS outages (devices in an out AS neither query NTP nor
    /// answer probes for the duration).
    pub outages: Vec<OutageSpec>,
}

impl WorldConfig {
    /// A small world for unit/integration tests: builds in well under a
    /// second, still exhibits every phenomenon.
    pub fn tiny() -> Self {
        WorldConfig {
            home_networks: 300,
            mean_devices_per_home: 3.0,
            mobile_subscribers: 1_200,
            dual_homed_phone_rate: 0.5,
            servers_per_hosting_as: 40,
            core_routers_per_as: 2,
            aliased_48s_per_hosting_as: 3,
            wifi_presence: 0.60,
            outages: Vec::new(),
        }
    }

    /// The default experiment scale: large enough for stable
    /// distributions, small enough to run every analysis in seconds.
    pub fn default_scale() -> Self {
        WorldConfig {
            home_networks: 6_000,
            mean_devices_per_home: 3.5,
            mobile_subscribers: 30_000,
            dual_homed_phone_rate: 0.5,
            servers_per_hosting_as: 150,
            core_routers_per_as: 3,
            aliased_48s_per_hosting_as: 6,
            wifi_presence: 0.60,
            outages: Vec::new(),
        }
    }

    /// The scale used by the benchmark harness when regenerating the
    /// paper's tables and figures.
    pub fn paper_scale() -> Self {
        WorldConfig {
            home_networks: 15_000,
            mean_devices_per_home: 3.5,
            mobile_subscribers: 80_000,
            dual_homed_phone_rate: 0.5,
            servers_per_hosting_as: 250,
            core_routers_per_as: 3,
            aliased_48s_per_hosting_as: 8,
            wifi_presence: 0.60,
            outages: Vec::new(),
        }
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let t = WorldConfig::tiny();
        let d = WorldConfig::default_scale();
        let p = WorldConfig::paper_scale();
        assert!(t.home_networks < d.home_networks);
        assert!(d.home_networks < p.home_networks);
        assert!(t.mobile_subscribers < d.mobile_subscribers);
    }

    #[test]
    fn default_is_default_scale() {
        assert_eq!(
            WorldConfig::default().home_networks,
            WorldConfig::default_scale().home_networks
        );
    }
}
