//! The passive observation stream: NTP contacts.
//!
//! The paper's corpus is "every source address that hit our 27 pool
//! servers over seven months". Simulating every NTP poll tick-by-tick
//! would be billions of events; instead each device's contact process is
//! generated *statistically*: a deterministic per-(device, day) activity
//! coin, then a Poisson number of queries at random offsets within the
//! day. Because every draw is keyed by `(world seed, device, day)`, the
//! stream is reproducible and can be regenerated for any sub-window
//! (which is how the backscanning week is replayed).

use std::net::Ipv6Addr;

use crate::device::DeviceId;
use crate::geo_model::Country;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::world::World;

/// One NTP query observed at a pool server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpEvent {
    /// When the query arrived.
    pub t: SimTime,
    /// The querying device.
    pub device: DeviceId,
    /// Its source address at that instant.
    pub src: Ipv6Addr,
    /// Dense index of the AS it egressed from.
    pub as_index: u16,
    /// Country of that AS (what MaxMind would say).
    pub country: Country,
}

/// Streaming generator of NTP contacts over a time window.
///
/// Iterates device-major (all of one device's events, then the next);
/// analyses aggregate per-address, so global time order is not required.
pub struct NtpEventStream<'w> {
    world: &'w World,
    start_day: u64,
    end_day: u64,
    device: usize,
    day: u64,
    pending: Vec<NtpEvent>,
}

impl<'w> NtpEventStream<'w> {
    /// Events in `[start, start + window)`.
    pub fn new(world: &'w World, start: SimTime, window: SimDuration) -> Self {
        let (start_day, end_day) = day_range(start, window);
        Self::days(world, start_day, end_day)
    }

    /// Events for the day indices `[start_day, end_day)`.
    ///
    /// Because every draw is keyed by `(world seed, device, day)`, a
    /// stream over `[a, c)` yields, per device, exactly the events of a
    /// stream over `[a, b)` followed by those of `[b, c)` — which is
    /// what lets collection shard the window by time-slice and merge
    /// shards back bit-identically.
    pub fn days(world: &'w World, start_day: u64, end_day: u64) -> Self {
        let end_day = end_day.max(start_day);
        NtpEventStream {
            world,
            start_day,
            end_day,
            device: 0,
            day: start_day,
            pending: Vec::new(),
        }
    }

    /// Events for the full study window (the paper's Jan–Aug collection).
    pub fn study(world: &'w World) -> Self {
        Self::new(world, SimTime::START, crate::time::STUDY_DURATION)
    }

    fn fill_day(&mut self) {
        let dev = &self.world.devices[self.device];
        if !dev.uses_pool {
            return;
        }
        let mut rng = Rng::new(self.world.seed ^ dev.seed).fork(b"ntp-day", self.day);
        if !rng.chance(dev.activity.contact_day_prob) {
            return;
        }
        let n = 1 + rng.poisson((dev.activity.mean_queries_per_active_day - 1.0).max(0.0));
        for _ in 0..n {
            let t = SimTime(self.day * 86_400 + rng.below(86_400));
            if let Some((src, as_index)) = self.world.contact_addr_at(dev.id, t) {
                if self.world.as_is_out(as_index, t) {
                    continue; // the AS is dark: no NTP queries escape it
                }
                let country = self.world.ases[as_index as usize].info.country;
                self.pending.push(NtpEvent {
                    t,
                    device: dev.id,
                    src,
                    as_index,
                    country,
                });
            }
        }
        // In-day events in time order (stable for tests).
        self.pending.sort_by_key(|e| e.t);
        self.pending.reverse(); // pop() from the back yields ascending
    }
}

/// The day-index range `[start_day, end_day)` a `(start, window)` pair
/// covers — the same rounding [`NtpEventStream::new`] applies.
pub fn day_range(start: SimTime, window: SimDuration) -> (u64, u64) {
    let start_day = start.day();
    let end_day = (start + window).day().max(start_day);
    (start_day, end_day)
}

/// Upper estimate of how many events [`NtpEventStream::new`] will yield
/// for `(start, window)`.
///
/// Sums each pool device's expected queries (`contact_day_prob` × mean
/// queries per active day × days), then adds headroom for Poisson
/// fluctuation. Skipped events (dark ASes, unroutable contacts) only
/// pull the true count *below* the expectation, so pre-sizing a
/// collection buffer to this estimate avoids reallocation in practice.
pub fn expected_query_volume(world: &World, start: SimTime, window: SimDuration) -> u64 {
    let (start_day, end_day) = day_range(start, window);
    let days = (end_day - start_day) as f64;
    let expected: f64 = world
        .devices
        .iter()
        .filter(|d| d.uses_pool)
        .map(|d| d.activity.contact_day_prob * d.activity.mean_queries_per_active_day.max(1.0))
        .sum::<f64>()
        * days;
    // ~8% relative headroom plus a floor absorbs Poisson variance even
    // on small worlds / short windows.
    (expected * 1.08) as u64 + 1_024
}

impl Iterator for NtpEventStream<'_> {
    type Item = NtpEvent;

    fn next(&mut self) -> Option<NtpEvent> {
        loop {
            if let Some(e) = self.pending.pop() {
                return Some(e);
            }
            if self.device >= self.world.devices.len() {
                return None;
            }
            self.fill_day();
            self.day += 1;
            if self.day >= self.end_day {
                self.day = self.start_day;
                self.device += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::time::STUDY_DURATION;
    use v6addr::Iid;

    fn world() -> World {
        World::build(WorldConfig::tiny(), 11)
    }

    #[test]
    fn stream_is_deterministic() {
        let w = world();
        let week = SimDuration::WEEK;
        let a: Vec<NtpEvent> = NtpEventStream::new(&w, SimTime::START, week).collect();
        let b: Vec<NtpEvent> = NtpEventStream::new(&w, SimTime::START, week).collect();
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn events_respect_window() {
        let w = world();
        let start = SimTime(SimDuration::days(10).as_secs());
        let window = SimDuration::days(3);
        for e in NtpEventStream::new(&w, start, window) {
            assert!(e.t >= start, "{:?}", e.t);
            assert!(e.t < start + window, "{:?}", e.t);
        }
    }

    #[test]
    fn only_pool_users_appear() {
        let w = world();
        for e in NtpEventStream::new(&w, SimTime::START, SimDuration::days(5)) {
            assert!(w.device(e.device).uses_pool);
        }
    }

    #[test]
    fn sources_resolve_back_to_devices() {
        let w = world();
        let events: Vec<NtpEvent> =
            NtpEventStream::new(&w, SimTime::START, SimDuration::days(2)).collect();
        assert!(events.len() > 100, "only {} events", events.len());
        // Every event source must resolve to its own device (or an alias
        // front) at that instant.
        for e in events.iter().take(500) {
            use crate::resolve::Resolution::*;
            match w.resolve(e.src, e.t) {
                HomeDevice { device, .. } | MobileDevice(device) => assert_eq!(device, e.device),
                CpeWan { device, .. } => assert_eq!(device, e.device),
                Server(device) => assert_eq!(device, e.device),
                Alias => {}
                other => panic!("event src {} resolved to {other:?}", e.src),
            }
        }
    }

    #[test]
    fn iot_contacts_more_days_than_phones() {
        let w = world();
        use std::collections::HashMap;
        let mut days: HashMap<DeviceId, std::collections::BTreeSet<u64>> = HashMap::new();
        for e in NtpEventStream::new(&w, SimTime::START, SimDuration::days(30)) {
            days.entry(e.device).or_default().insert(e.t.day());
        }
        let mean_days = |kind: crate::device::DeviceKind| -> f64 {
            let xs: Vec<f64> = days
                .iter()
                .filter(|(id, _)| w.device(**id).kind == kind)
                .map(|(_, s)| s.len() as f64)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let iot = mean_days(crate::device::DeviceKind::IotSensor);
        let phone = mean_days(crate::device::DeviceKind::Smartphone);
        assert!(
            iot > phone,
            "IoT should contact more often: iot={iot:.1} phone={phone:.1}"
        );
    }

    #[test]
    fn privacy_clients_produce_many_addresses() {
        let w = world();
        use std::collections::{HashMap, HashSet};
        let mut addrs: HashMap<DeviceId, HashSet<u128>> = HashMap::new();
        for e in NtpEventStream::new(&w, SimTime::START, SimDuration::days(40)) {
            addrs.entry(e.device).or_default().insert(u128::from(e.src));
        }
        // EUI-64 devices keep one IID; privacy devices churn.
        let mut privacy_multi = 0;
        let mut privacy_total = 0;
        for (id, set) in &addrs {
            let d = w.device(*id);
            if d.strategy == crate::addressing::IidStrategy::PrivacyRandom {
                privacy_total += 1;
                if set.len() > 3 {
                    privacy_multi += 1;
                }
            }
            if d.strategy == crate::addressing::IidStrategy::Eui64 {
                let iids: HashSet<u64> = set
                    .iter()
                    .map(|&a| Iid::from_addr(a.into()).as_u64())
                    .collect();
                assert_eq!(iids.len(), 1, "EUI-64 device changed IID");
            }
        }
        assert!(privacy_total > 0);
        assert!(
            privacy_multi as f64 / privacy_total as f64 > 0.5,
            "{privacy_multi}/{privacy_total}"
        );
    }

    #[test]
    fn day_slices_cover_the_window_per_device() {
        // Per device, [0, 14) must equal [0, 5) ++ [5, 14).
        use std::collections::HashMap;
        let w = world();
        let whole: Vec<NtpEvent> = NtpEventStream::days(&w, 0, 14).collect();
        let mut sliced: HashMap<DeviceId, Vec<NtpEvent>> = HashMap::new();
        for (a, b) in [(0, 5), (5, 14)] {
            for e in NtpEventStream::days(&w, a, b) {
                sliced.entry(e.device).or_default().push(e);
            }
        }
        let mut whole_by_dev: HashMap<DeviceId, Vec<NtpEvent>> = HashMap::new();
        for e in whole {
            whole_by_dev.entry(e.device).or_default().push(e);
        }
        assert!(!whole_by_dev.is_empty());
        assert_eq!(whole_by_dev, sliced);
    }

    #[test]
    fn expected_volume_upper_bounds_actual() {
        let w = world();
        for days in [3u64, 30] {
            let window = SimDuration::days(days);
            let actual = NtpEventStream::new(&w, SimTime::START, window).count() as u64;
            let expected = expected_query_volume(&w, SimTime::START, window);
            assert!(
                expected >= actual,
                "estimate {expected} below actual {actual} for {days} days"
            );
            // And not absurdly loose (within ~2x + floor).
            assert!(expected <= actual * 2 + 2_048, "{expected} vs {actual}");
        }
    }

    #[test]
    fn study_stream_has_expected_magnitude() {
        let w = world();
        let n = NtpEventStream::study(&w).count();
        // tiny world: ~2k pool devices over 218 days; sanity band only.
        assert!(n > 10_000, "suspiciously few events: {n}");
        assert!(n < 5_000_000, "runaway event count: {n}");
        // The stream covers the whole window.
        let max_day = NtpEventStream::study(&w).map(|e| e.t.day()).max().unwrap();
        assert!(max_day >= STUDY_DURATION.as_days() as u64 - 2);
    }
}
