//! IPv6 address-formation strategies and per-AS addressing profiles.
//!
//! §2.1 catalogs how IIDs come to be: manual low-byte assignment, EUI-64
//! SLAAC, RFC 4941 ephemeral privacy addresses, RFC 7217 stable-random,
//! DHCPv6, and IPv4 embeddings. §4.3 shows their *mix varies per AS* —
//! Reliance Jio randomizes only the low four IID bytes for a third of its
//! clients; Telkomsel skews low-entropy; the Hitlist is low-byte-heavy.
//! This module defines the strategy enum, the deterministic IID generator,
//! and named per-AS profiles reproducing those signatures.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use v6addr::ipv4_embed::Ipv4Encoding;
use v6addr::{Iid, Mac};

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// How a device forms the Interface Identifier of its address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IidStrategy {
    /// RFC 4941 privacy extensions: a fresh random 64-bit IID every
    /// rotation period. The dominant client strategy.
    PrivacyRandom,
    /// RFC 7217: random but *stable per (device, prefix)* — changes when
    /// the delegated prefix rotates, not on a timer.
    StableRandom,
    /// EUI-64 SLAAC: the MAC address embedded in the IID. The §5 privacy
    /// disaster.
    Eui64,
    /// Operator-assigned low-byte IID (`::1` … `::ff`). Routers, servers.
    LowByte,
    /// Operator-assigned two-byte IID (`::100` … `::ffff`).
    LowTwoBytes,
    /// Upper four IID bytes zero, lower four random — the second Reliance
    /// Jio pattern the paper reverse-engineers in §4.3.
    Low4ByteRandom,
    /// The interface's IPv4 address embedded under a fixed encoding.
    Ipv4Embedded(Ipv4Encoding),
    /// DHCPv6 with a sequential allocation pool (small, structured IIDs).
    Dhcpv6Sequential,
}

impl IidStrategy {
    /// True when this strategy produces a *new* IID on its own timer,
    /// independent of prefix rotation.
    pub fn rotates_iid(self) -> bool {
        matches!(self, IidStrategy::PrivacyRandom)
    }

    /// True when the IID survives prefix changes (tracking risk, §5.2).
    pub fn iid_is_portable(self) -> bool {
        matches!(
            self,
            IidStrategy::Eui64 | IidStrategy::Low4ByteRandom | IidStrategy::Dhcpv6Sequential
        ) || matches!(self, IidStrategy::LowByte | IidStrategy::LowTwoBytes)
    }
}

/// All inputs the IID generator may need for one device.
#[derive(Debug, Clone, Copy)]
pub struct IidInputs {
    /// The device's MAC address (for EUI-64).
    pub mac: Mac,
    /// A per-device RNG seed (forked from the world seed).
    pub device_seed: u64,
    /// The device's IPv4 address, when its AS runs dual-stack embedding.
    pub ipv4: Option<Ipv4Addr>,
    /// Stable index of the device within its network (for DHCPv6 pools).
    pub host_index: u16,
}

/// Generates the IID a device uses during IID-epoch `iid_epoch` while
/// holding prefix-epoch `prefix_epoch`.
///
/// Deterministic in all arguments: regenerating any past address requires
/// no state, which is what lets the simulator answer probes to arbitrary
/// addresses at arbitrary times.
pub fn generate_iid(
    strategy: IidStrategy,
    inputs: &IidInputs,
    iid_epoch: u64,
    prefix_epoch: u64,
) -> Iid {
    match strategy {
        IidStrategy::PrivacyRandom => {
            let mut r = Rng::new(inputs.device_seed ^ 0xa5a5_0000).fork(b"privacy", iid_epoch);
            Iid::new(r.next_u64())
        }
        IidStrategy::StableRandom => {
            let mut r = Rng::new(inputs.device_seed ^ 0x7217_7217).fork(b"stable", prefix_epoch);
            Iid::new(r.next_u64())
        }
        IidStrategy::Eui64 => Iid::from_mac(inputs.mac),
        IidStrategy::LowByte => {
            let mut r = Rng::new(inputs.device_seed ^ 0x10);
            Iid::new(1 + r.below(0xfe))
        }
        IidStrategy::LowTwoBytes => {
            let mut r = Rng::new(inputs.device_seed ^ 0x20);
            Iid::new(0x100 + r.below(0xff00))
        }
        IidStrategy::Low4ByteRandom => {
            let mut r = Rng::new(inputs.device_seed ^ 0x4444).fork(b"low4", prefix_epoch);
            Iid::new(r.next_u32() as u64)
        }
        IidStrategy::Ipv4Embedded(enc) => match inputs.ipv4 {
            Some(v4) => enc.encode(v4),
            // Dual-stack not provisioned: fall back to a stable random IID.
            None => {
                let mut r = Rng::new(inputs.device_seed ^ 0x0404);
                Iid::new(r.next_u64())
            }
        },
        IidStrategy::Dhcpv6Sequential => {
            // Pool base is per-network (derived from the seed), hosts get
            // consecutive values — low-entropy structured IIDs.
            let base = (inputs.device_seed & 0xff) << 8;
            Iid::new(0x1_0000 + base + inputs.host_index as u64)
        }
    }
}

/// How often an AS rotates the prefixes delegated to its customers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RotationPolicy {
    /// Static delegation for the whole study.
    Never,
    /// Rotate every fixed period (§2.1: some ISPs rotate daily).
    Every(SimDuration),
}

impl RotationPolicy {
    /// The prefix-epoch number at time `t`.
    pub fn epoch(self, t: SimTime) -> u64 {
        match self {
            RotationPolicy::Never => 0,
            RotationPolicy::Every(d) => t.as_secs() / d.as_secs().max(1),
        }
    }

    /// Number of epochs that fit in `window` (at least 1).
    pub fn epochs_in(self, window: SimDuration) -> u64 {
        match self {
            RotationPolicy::Never => 1,
            RotationPolicy::Every(d) => (window.as_secs() / d.as_secs().max(1)).max(1),
        }
    }

    /// The time at which epoch `e` begins.
    pub fn epoch_start(self, e: u64) -> SimTime {
        match self {
            RotationPolicy::Never => SimTime::START,
            RotationPolicy::Every(d) => SimTime(e * d.as_secs()),
        }
    }
}

/// The addressing mix of one AS's client population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressingProfile {
    /// `(strategy, weight)` pairs; weights need not sum to 1.
    pub strategies: Vec<(IidStrategy, f64)>,
    /// Privacy-extension IID rotation period for clients that use it.
    pub iid_rotation: SimDuration,
    /// Customer prefix rotation policy.
    pub rotation: RotationPolicy,
    /// Delegated prefix length for home networks (/56 or /64 typical).
    pub delegation_len: u8,
    /// Fraction of home networks whose CPE filters unsolicited inbound
    /// traffic. The paper's backscan (~⅔ responsive) implies this is
    /// *far* lower than security folklore assumes.
    pub firewall_rate: f64,
    /// Fraction of this AS's CPE fleet that forms its WAN address via
    /// EUI-64 (the pre-Fritz!OS-7.50 AVM behaviour §5.3 exploits).
    pub cpe_eui64_rate: f64,
}

impl AddressingProfile {
    /// Draws a strategy for one client device.
    pub fn draw_strategy(&self, rng: &mut Rng) -> IidStrategy {
        let weights: Vec<f64> = self.strategies.iter().map(|&(_, w)| w).collect();
        self.strategies[rng.weighted(&weights)].0
    }

    /// Default fixed-line eyeball profile: mostly privacy-random clients,
    /// a sprinkle of EUI-64 IoT, weekly-ish prefix rotation.
    pub fn eyeball_default() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::PrivacyRandom, 0.80),
                (IidStrategy::StableRandom, 0.10),
                (IidStrategy::Eui64, 0.07),
                (IidStrategy::Dhcpv6Sequential, 0.03),
            ],
            iid_rotation: SimDuration::DAY,
            // Most fixed-line ISPs hold customer delegations for months
            // (§5.2: 86% of multi-/64 EUI-64 devices are "mostly static").
            rotation: RotationPolicy::Every(SimDuration::days(90)),
            delegation_len: 56,
            firewall_rate: 0.30,
            cpe_eui64_rate: 0.20,
        }
    }

    /// Default mobile-carrier profile: handsets rotate fast, almost all
    /// privacy-random, per-session /64s, no CPE firewall.
    pub fn mobile_default() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::PrivacyRandom, 0.90),
                (IidStrategy::Eui64, 0.04),
                (IidStrategy::StableRandom, 0.06),
            ],
            iid_rotation: SimDuration::DAY,
            rotation: RotationPolicy::Every(SimDuration::DAY),
            delegation_len: 64,
            firewall_rate: 0.05,
            cpe_eui64_rate: 0.05,
        }
    }

    /// Reliance Jio (§4.3): two coexisting patterns — fully random IIDs
    /// and IIDs with only the lower four bytes random. This is what bends
    /// Jio's entropy CDF in Fig. 4.
    pub fn jio() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::PrivacyRandom, 0.60),
                (IidStrategy::Low4ByteRandom, 0.33),
                (IidStrategy::Eui64, 0.07),
            ],
            iid_rotation: SimDuration::DAY,
            rotation: RotationPolicy::Every(SimDuration::DAY),
            delegation_len: 64,
            firewall_rate: 0.05,
            cpe_eui64_rate: 0.05,
        }
    }

    /// Telekomunikasi Selular (§4.3): markedly lower median entropy —
    /// structured DHCPv6 and low-4-byte pools dominate.
    pub fn telkomsel() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::PrivacyRandom, 0.35),
                (IidStrategy::Low4ByteRandom, 0.30),
                (IidStrategy::Dhcpv6Sequential, 0.25),
                (IidStrategy::Eui64, 0.10),
            ],
            iid_rotation: SimDuration::days(2),
            rotation: RotationPolicy::Every(SimDuration::days(2)),
            delegation_len: 64,
            firewall_rate: 0.05,
            cpe_eui64_rate: 0.10,
        }
    }

    /// German eyeball ISPs: AVM Fritz!Box CPE used EUI-64 WAN addresses
    /// until Fritz!OS 7.50 (§5.3); daily prefix rotation is standard
    /// practice in Germany, which is exactly what makes EUI-64 tracking
    /// (Fig. 7a) so effective there.
    pub fn german_avm() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::PrivacyRandom, 0.78),
                (IidStrategy::Eui64, 0.12),
                (IidStrategy::StableRandom, 0.10),
            ],
            iid_rotation: SimDuration::DAY,
            rotation: RotationPolicy::Every(SimDuration::DAY),
            delegation_len: 56,
            firewall_rate: 0.35,
            cpe_eui64_rate: 0.85,
        }
    }

    /// A smaller ISP whose CPE fleet is EUI-64-heavy (Fig. 7c's Brazilian
    /// provider pair).
    pub fn eyeball_eui64_heavy() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::PrivacyRandom, 0.60),
                (IidStrategy::Eui64, 0.30),
                (IidStrategy::StableRandom, 0.10),
            ],
            iid_rotation: SimDuration::DAY,
            rotation: RotationPolicy::Every(SimDuration::days(7)),
            delegation_len: 56,
            firewall_rate: 0.25,
            cpe_eui64_rate: 0.80,
        }
    }

    /// University/enterprise: stable addresses, some manual, some DHCPv6,
    /// IPv4 embeddings on dual-stack segments.
    pub fn enterprise() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::StableRandom, 0.40),
                (IidStrategy::Dhcpv6Sequential, 0.25),
                (IidStrategy::Ipv4Embedded(Ipv4Encoding::LowHex), 0.20),
                (IidStrategy::LowByte, 0.10),
                (IidStrategy::Eui64, 0.05),
            ],
            iid_rotation: SimDuration::days(30),
            rotation: RotationPolicy::Never,
            delegation_len: 48,
            firewall_rate: 0.60,
            cpe_eui64_rate: 0.10,
        }
    }

    /// Routers and servers: manual low-byte addressing, never rotates.
    pub fn infrastructure() -> Self {
        AddressingProfile {
            strategies: vec![
                (IidStrategy::LowByte, 0.75),
                (IidStrategy::LowTwoBytes, 0.15),
                (IidStrategy::Ipv4Embedded(Ipv4Encoding::LowHex), 0.10),
            ],
            iid_rotation: SimDuration::days(3650),
            rotation: RotationPolicy::Never,
            delegation_len: 48,
            firewall_rate: 0.0,
            cpe_eui64_rate: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6addr::entropy::iid_entropy;

    fn inputs(seed: u64) -> IidInputs {
        IidInputs {
            mac: Mac::from_u64(0x0012_3456_789a),
            device_seed: seed,
            ipv4: Some("10.1.2.3".parse().unwrap()),
            host_index: 5,
        }
    }

    #[test]
    fn privacy_random_changes_per_epoch() {
        let inp = inputs(1);
        let a = generate_iid(IidStrategy::PrivacyRandom, &inp, 0, 0);
        let b = generate_iid(IidStrategy::PrivacyRandom, &inp, 1, 0);
        assert_ne!(a, b);
        // ... but is deterministic for the same epoch.
        assert_eq!(a, generate_iid(IidStrategy::PrivacyRandom, &inp, 0, 5));
    }

    #[test]
    fn stable_random_changes_only_with_prefix() {
        let inp = inputs(2);
        let a = generate_iid(IidStrategy::StableRandom, &inp, 0, 0);
        assert_eq!(a, generate_iid(IidStrategy::StableRandom, &inp, 9, 0));
        assert_ne!(a, generate_iid(IidStrategy::StableRandom, &inp, 0, 1));
    }

    #[test]
    fn eui64_is_constant_and_recoverable() {
        let inp = inputs(3);
        let a = generate_iid(IidStrategy::Eui64, &inp, 0, 0);
        let b = generate_iid(IidStrategy::Eui64, &inp, 7, 3);
        assert_eq!(a, b);
        assert_eq!(a.to_mac(), Some(inp.mac));
    }

    #[test]
    fn low_byte_is_in_low_byte_class() {
        for seed in 0..50 {
            let iid = generate_iid(IidStrategy::LowByte, &inputs(seed), 0, 0);
            assert!(iid.is_low_byte(), "{iid}");
        }
    }

    #[test]
    fn low_two_bytes_class() {
        for seed in 0..50 {
            let iid = generate_iid(IidStrategy::LowTwoBytes, &inputs(seed), 0, 0);
            assert!(iid.is_low_two_bytes(), "{iid}");
        }
    }

    #[test]
    fn low4_random_has_upper_half_zero() {
        for seed in 0..50 {
            let iid = generate_iid(IidStrategy::Low4ByteRandom, &inputs(seed), 0, 0);
            assert_eq!(iid.as_u64() >> 32, 0, "{iid}");
        }
    }

    #[test]
    fn low4_random_entropy_is_mid_band() {
        // The Jio signature: entropy clearly below fully random but above
        // manual. Average over many devices.
        let mean: f64 = (0..200)
            .map(|s| iid_entropy(generate_iid(IidStrategy::Low4ByteRandom, &inputs(s), 0, 0)))
            .sum::<f64>()
            / 200.0;
        assert!(mean > 0.4 && mean < 0.75, "mean = {mean}");
    }

    #[test]
    fn ipv4_embedding_decodes() {
        let inp = inputs(4);
        let iid = generate_iid(IidStrategy::Ipv4Embedded(Ipv4Encoding::LowHex), &inp, 0, 0);
        assert_eq!(
            Ipv4Encoding::LowHex.decode(iid),
            Some("10.1.2.3".parse().unwrap())
        );
    }

    #[test]
    fn ipv4_embedding_without_v4_falls_back() {
        let mut inp = inputs(5);
        inp.ipv4 = None;
        let iid = generate_iid(IidStrategy::Ipv4Embedded(Ipv4Encoding::LowHex), &inp, 0, 0);
        // Fallback is full-width random, so the top half is almost surely
        // nonzero (probability 2⁻³² otherwise).
        assert_ne!(iid.as_u64() >> 32, 0);
    }

    #[test]
    fn dhcpv6_sequential_is_structured() {
        let a = generate_iid(IidStrategy::Dhcpv6Sequential, &inputs(6), 0, 0);
        let mut inp7 = inputs(6);
        inp7.host_index = 6;
        let b = generate_iid(IidStrategy::Dhcpv6Sequential, &inp7, 0, 0);
        assert_eq!(b.as_u64() - a.as_u64(), 1);
    }

    #[test]
    fn rotation_policy_epochs() {
        let daily = RotationPolicy::Every(SimDuration::DAY);
        assert_eq!(daily.epoch(SimTime(0)), 0);
        assert_eq!(daily.epoch(SimTime(86_399)), 0);
        assert_eq!(daily.epoch(SimTime(86_400)), 1);
        assert_eq!(daily.epochs_in(SimDuration::days(10)), 10);
        assert_eq!(daily.epoch_start(3), SimTime(3 * 86_400));
        assert_eq!(RotationPolicy::Never.epoch(SimTime(1 << 30)), 0);
        assert_eq!(RotationPolicy::Never.epochs_in(SimDuration::days(218)), 1);
    }

    #[test]
    fn profile_draw_respects_weights() {
        let p = AddressingProfile::jio();
        let mut rng = Rng::new(42);
        let mut low4 = 0;
        let n = 5_000;
        for _ in 0..n {
            if p.draw_strategy(&mut rng) == IidStrategy::Low4ByteRandom {
                low4 += 1;
            }
        }
        let frac = low4 as f64 / n as f64;
        assert!((frac - 0.33).abs() < 0.03, "frac = {frac}");
    }
}
