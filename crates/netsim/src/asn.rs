//! Autonomous Systems of the synthetic Internet.
//!
//! The paper classifies origin ASes with ASdb (§4.1): all three datasets
//! are dominated by "Computer and Information Technology / ISP" ASes, but
//! the NTP corpus has 14% from the "Phone Provider" subtype versus the
//! Hitlist's 2% — evidence the passive corpus is mobile-client-rich. The
//! catalog below bakes in the paper's named top-5 ASes (Reliance Jio,
//! T-Mobile, ChinaNet, China Mobile, Telkomsel) with their §4.3 addressing
//! quirks, plus Brazilian and German ISPs needed for the §5 exemplars.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::addressing::AddressingProfile;
use crate::geo_model::Country;

/// How an AS's middleboxes answer probes aimed at its *client* ranges
/// (§4.2: aliased client networks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AliasFront {
    /// Normal: only the actual holder of an address may answer.
    None,
    /// A front answers for any address inside an *active* customer
    /// delegation (/64 or /56), but arbitrary un-delegated space stays
    /// silent. Invisible to routed-space alias detection; exposed only by
    /// probing next to known-active clients — the paper's "new" aliases.
    ActiveOnly,
    /// A front answers for the entire client region. Routed-space alias
    /// detection finds these, so hitlist alias lists know them.
    Full,
}

/// An Autonomous System Number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Asn({})", self.0)
    }
}

/// The role an AS plays in the model (maps onto ASdb categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// Fixed-line eyeball ISP: hosts home networks behind CPE.
    EyeballIsp,
    /// Mobile carrier ("Phone Provider" ASdb subtype): hosts handsets.
    MobileIsp,
    /// Transit/backbone: routers only, no clients. Active traceroute
    /// campaigns discover these; the passive NTP corpus never sees them.
    Transit,
    /// Hosting/cloud: servers, and most of the aliased prefixes.
    Hosting,
    /// University or enterprise network: a few servers and clients.
    Edu,
}

impl AsKind {
    /// The ASdb top-level category string the paper reports.
    pub fn asdb_category(self) -> &'static str {
        match self {
            AsKind::EyeballIsp | AsKind::MobileIsp | AsKind::Transit => {
                "Computer and Information Technology"
            }
            AsKind::Hosting => "Computer and Information Technology",
            AsKind::Edu => "Education and Research",
        }
    }

    /// The ASdb subtype string (the paper's "Phone Provider" signal).
    pub fn asdb_subtype(self) -> &'static str {
        match self {
            AsKind::EyeballIsp => "Internet Service Provider (ISP)",
            AsKind::MobileIsp => "Phone Provider",
            AsKind::Transit => "Internet Service Provider (ISP)",
            AsKind::Hosting => "Hosting and Cloud Provider",
            AsKind::Edu => "Education",
        }
    }

    /// True when the AS terminates client devices.
    pub fn has_clients(self) -> bool {
        matches!(self, AsKind::EyeballIsp | AsKind::MobileIsp | AsKind::Edu)
    }
}

/// Static description of one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Organization name (real names for the paper's exemplar ASes).
    pub name: String,
    /// Home country.
    pub country: Country,
    /// Role.
    pub kind: AsKind,
    /// How client devices in this AS form addresses. Ignored for
    /// Transit/Hosting ASes.
    pub profile: AddressingProfile,
    /// Relative share of the world's client population this AS serves
    /// (within its country; normalized at world build time).
    pub client_share: f64,
    /// Whether (and how) this AS fronts its client ranges with
    /// alias-like middleboxes (§4.2).
    pub alias_front: AliasFront,
}

impl AsInfo {
    /// True when any alias front covers this AS's client ranges.
    pub fn clients_aliased(&self) -> bool {
        self.alias_front != AliasFront::None
    }
}

/// The full AS catalog the world builder instantiates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsCatalog {
    /// All ASes; index in this vector is the AS's dense id.
    pub ases: Vec<AsInfo>,
}

impl AsCatalog {
    /// Builds the default catalog.
    ///
    /// Named ASes reproduce the paper's figures: the top-5 NTP ASes with
    /// their entropy signatures (Fig. 4), Telefonica Brasil / Nova Santos
    /// Telecom (Fig. 7c), German AVM-heavy ISPs (§5.3), plus generated
    /// eyeball/mobile/transit/hosting tails across every registry country.
    pub fn builtin(registry: &crate::geo_model::CountryRegistry) -> Self {
        use crate::addressing::AddressingProfile as P;
        let mut ases: Vec<AsInfo> = Vec::new();
        let mut next_asn = 64_500u32;
        let mut push =
            |ases: &mut Vec<AsInfo>, name: &str, cc: &str, kind: AsKind, profile: P, share: f64| {
                let asn = Asn(next_asn);
                next_asn += 1;
                ases.push(AsInfo {
                    asn,
                    name: name.to_string(),
                    country: Country::new(cc),
                    kind,
                    profile,
                    client_share: share,
                    alias_front: AliasFront::None,
                });
            };

        // ---- The paper's named heavyweights (Fig. 4, Fig. 7) ----
        push(
            &mut ases,
            "Reliance Jio",
            "IN",
            AsKind::MobileIsp,
            P::jio(),
            0.62,
        );
        push(
            &mut ases,
            "Bharti Airtel",
            "IN",
            AsKind::MobileIsp,
            P::mobile_default(),
            0.22,
        );
        push(
            &mut ases,
            "BSNL",
            "IN",
            AsKind::EyeballIsp,
            P::eyeball_default(),
            0.16,
        );

        push(
            &mut ases,
            "ChinaNet",
            "CN",
            AsKind::EyeballIsp,
            P::eyeball_default(),
            0.40,
        );
        push(
            &mut ases,
            "China Mobile",
            "CN",
            AsKind::MobileIsp,
            P::mobile_default(),
            0.38,
        );
        push(
            &mut ases,
            "China Unicom",
            "CN",
            AsKind::EyeballIsp,
            P::eyeball_default(),
            0.22,
        );

        push(
            &mut ases,
            "T-Mobile US",
            "US",
            AsKind::MobileIsp,
            P::mobile_default(),
            0.30,
        );
        push(
            &mut ases,
            "Comcast",
            "US",
            AsKind::EyeballIsp,
            P::eyeball_default(),
            0.28,
        );
        push(
            &mut ases,
            "Verizon",
            "US",
            AsKind::MobileIsp,
            P::mobile_default(),
            0.20,
        );
        push(
            &mut ases,
            "Charter",
            "US",
            AsKind::EyeballIsp,
            P::eyeball_default(),
            0.22,
        );

        push(
            &mut ases,
            "Telefonica Brasil",
            "BR",
            AsKind::EyeballIsp,
            P::eyeball_default(),
            0.40,
        );
        push(
            &mut ases,
            "Claro BR",
            "BR",
            AsKind::MobileIsp,
            P::mobile_default(),
            0.35,
        );
        push(
            &mut ases,
            "Nova Santos Telecom",
            "BR",
            AsKind::EyeballIsp,
            P::eyeball_eui64_heavy(),
            0.25,
        );

        push(
            &mut ases,
            "Telekomunikasi Selular",
            "ID",
            AsKind::MobileIsp,
            P::telkomsel(),
            0.60,
        );
        push(
            &mut ases,
            "Indosat",
            "ID",
            AsKind::MobileIsp,
            P::mobile_default(),
            0.40,
        );

        // German ISPs ship AVM Fritz!Box CPE with (pre-7.50) EUI-64 WAN
        // addresses — the §5.3 geolocation population.
        push(
            &mut ases,
            "Deutsche Telekom",
            "DE",
            AsKind::EyeballIsp,
            P::german_avm(),
            0.55,
        );
        push(
            &mut ases,
            "Vodafone DE",
            "DE",
            AsKind::EyeballIsp,
            P::german_avm(),
            0.45,
        );

        // ---- Generated per-country tails ----
        for info in registry.all() {
            let cc = info.code.as_str();
            let named: f64 = ases
                .iter()
                .filter(|a| a.country == info.code && a.kind.has_clients())
                .map(|a| a.client_share)
                .sum();
            if named > 0.0 {
                continue; // countries with hand-named ASes are covered
            }
            push(
                &mut ases,
                &format!("{cc} Broadband"),
                cc,
                AsKind::EyeballIsp,
                P::eyeball_default(),
                0.5,
            );
            push(
                &mut ases,
                &format!("{cc} Mobile"),
                cc,
                AsKind::MobileIsp,
                P::mobile_default(),
                0.4,
            );
            push(
                &mut ases,
                &format!("{cc} University"),
                cc,
                AsKind::Edu,
                P::enterprise(),
                0.1,
            );
        }

        // ---- Transit backbone (no clients; traceroute fodder) ----
        for (i, cc) in [
            "US", "US", "DE", "GB", "NL", "SE", "JP", "SG", "BR", "ZA", "FR", "HK", "US", "DE",
            "IN", "CN", "AU", "ES", "PL", "KR", "IT", "CA", "RU", "TR", "MX",
        ]
        .iter()
        .enumerate()
        {
            push(
                &mut ases,
                &format!("Transit Backbone {i:02}"),
                cc,
                AsKind::Transit,
                P::infrastructure(),
                0.0,
            );
        }

        // ---- Hosting / cloud (servers + aliased prefixes) ----
        for (i, cc) in [
            "US", "US", "DE", "NL", "SG", "JP", "GB", "IN", "BR", "AU", "FR", "CA",
        ]
        .iter()
        .enumerate()
        {
            push(
                &mut ases,
                &format!("Cloud Hosting {i:02}"),
                cc,
                AsKind::Hosting,
                P::infrastructure(),
                0.0,
            );
        }

        // Client ASes fronted by alias-like middleboxes (§4.2). One big
        // carrier answers for its whole region (hitlist alias lists learn
        // it — the paper's 98% "known" bulk); smaller tails answer only
        // inside active delegations, staying invisible to routed-space
        // alias detection (the paper's 2% "new" discoveries).
        for (name, front) in [
            ("Claro BR", AliasFront::Full),
            ("JP Mobile", AliasFront::ActiveOnly),
            ("GB Mobile", AliasFront::ActiveOnly),
            ("FR Mobile", AliasFront::ActiveOnly),
            ("MX Mobile", AliasFront::ActiveOnly),
        ] {
            if let Some(a) = ases.iter_mut().find(|a| a.name == name) {
                a.alias_front = front;
            }
        }

        AsCatalog { ases }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// Looks up an AS by number.
    pub fn by_asn(&self, asn: Asn) -> Option<&AsInfo> {
        self.ases.iter().find(|a| a.asn == asn)
    }

    /// Looks up an AS by organization name.
    pub fn by_name(&self, name: &str) -> Option<&AsInfo> {
        self.ases.iter().find(|a| a.name == name)
    }

    /// Dense indices of all ASes of a given kind.
    pub fn of_kind(&self, kind: AsKind) -> Vec<usize> {
        self.ases
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo_model::CountryRegistry;

    fn catalog() -> AsCatalog {
        AsCatalog::builtin(&CountryRegistry::builtin())
    }

    #[test]
    fn named_ases_present() {
        let c = catalog();
        for name in [
            "Reliance Jio",
            "T-Mobile US",
            "ChinaNet",
            "China Mobile",
            "Telekomunikasi Selular",
            "Telefonica Brasil",
            "Nova Santos Telecom",
            "Deutsche Telekom",
        ] {
            assert!(c.by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn asns_unique() {
        let c = catalog();
        let mut asns: Vec<u32> = c.ases.iter().map(|a| a.asn.0).collect();
        let n = asns.len();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), n);
    }

    #[test]
    fn has_all_kinds() {
        let c = catalog();
        for kind in [
            AsKind::EyeballIsp,
            AsKind::MobileIsp,
            AsKind::Transit,
            AsKind::Hosting,
            AsKind::Edu,
        ] {
            assert!(!c.of_kind(kind).is_empty(), "no {kind:?} ASes");
        }
    }

    #[test]
    fn transit_and_hosting_have_no_clients() {
        let c = catalog();
        for a in &c.ases {
            if matches!(a.kind, AsKind::Transit | AsKind::Hosting) {
                assert_eq!(a.client_share, 0.0, "{} has clients", a.name);
                assert_eq!(a.alias_front, AliasFront::None);
                assert!(!a.kind.has_clients());
            }
        }
    }

    #[test]
    fn some_client_ases_aliased() {
        let c = catalog();
        let aliased = c.ases.iter().filter(|a| a.clients_aliased()).count();
        assert!(aliased >= 2, "expected several client-aliased ASes");
        assert!(c.ases.iter().any(|a| a.alias_front == AliasFront::Full));
        assert!(c
            .ases
            .iter()
            .any(|a| a.alias_front == AliasFront::ActiveOnly));
    }

    #[test]
    fn phone_provider_subtype() {
        let c = catalog();
        let jio = c.by_name("Reliance Jio").unwrap();
        assert_eq!(jio.kind.asdb_subtype(), "Phone Provider");
        let comcast = c.by_name("Comcast").unwrap();
        assert_eq!(
            comcast.kind.asdb_subtype(),
            "Internet Service Provider (ISP)"
        );
    }

    #[test]
    fn every_country_has_client_as() {
        let reg = CountryRegistry::builtin();
        let c = catalog();
        for info in reg.all() {
            let has = c
                .ases
                .iter()
                .any(|a| a.country == info.code && a.kind.has_clients());
            assert!(has, "no client AS in {}", info.code);
        }
    }
}
