//! Adaptive radix sort for 192-bit `(u128, u64)` keys.
//!
//! The hitlist pipeline's dominant sort orders `(address bits, secondary)`
//! integer pairs — billions of them at paper scale. A comparison sort
//! pays `O(n log n)` cache-missing comparisons on 24-byte tuples; radix
//! techniques pay `O(n)` counting passes instead. Naively a 192-bit key
//! is 24 byte passes, which loses badly. Two observations from the
//! measurement literature make radix win:
//!
//! 1. **Hitlist addresses cluster** ("Clusters in the Expanse", IMC
//!    2018): real corpora share long /48–/64 prefixes and structured
//!    IIDs, so most key *bits* hold a single value across the whole
//!    input. One cheap OR/AND aggregation pass identifies the live
//!    bits, and everything downstream only ever touches those.
//! 2. **The live-bit count picks the strategy.** Narrow keys (at most
//!    [`LSD_MAX_LIVE`] live byte positions — dense counters, week
//!    numbers, small IID planes) take classic LSD stable counting
//!    passes, least-significant first: a handful of linear sweeps and
//!    no comparisons at all. Wide keys take a single **MSD partition**:
//!    the top [`MSD_MAX_BITS`] live bits — extracted with per-byte
//!    lookup tables, no per-bit loop — spread elements into up to 64 Ki
//!    order-correct buckets in one scatter, and each small bucket is
//!    finished with a comparison sort that now runs entirely in cache.
//!    One scatter plus in-cache sorts beats both a long LSD schedule
//!    and a whole-array comparison sort on clustered input.
//!
//! Both paths produce output element-for-element identical to
//! `sort_unstable` for keys that are injective over the element and
//! consistent with `Ord` (every call site sorts plain integer tuples).
//!
//! [`par_radix_sort`] composes the same kernel with the persistent
//! pool's chunking: disjoint chunk views are radix-sorted in parallel
//! (each with its own live-bit schedule) and combined with the existing
//! tournament move-merge, so results are byte-identical at any thread
//! count — the same contract every other kernel in this crate honors.
//!
//! This module contains no `unsafe`; the only unsafe code in the crate
//! remains in `pool.rs` (the merge this calls into is behind its safe
//! API).

use crate::pool::{merge_runs_in_place, par_for_each_mut, split_ranges, Cost};

/// Number of 8-bit digits in the 192-bit `(u128, u64)` key.
const DIGITS: usize = 24;

/// Radix-sort threshold: below this many elements the constant-factor
/// setup (live-bit detection + histograms) costs more than a comparison
/// sort of the whole input, so the kernel falls back to `sort_unstable`.
const RADIX_MIN_LEN: usize = 1 << 10;

/// Keys with at most this many live byte positions take the LSD
/// counting path; wider keys take the MSD partition path (a long LSD
/// schedule of cache-missing scatters loses to one partition pass plus
/// in-cache comparison finishes).
const LSD_MAX_LIVE: usize = 3;

/// Bucket-bit cap for the MSD partition: 2^16 count/offset slots keep
/// the bookkeeping arrays inside L2 while leaving average buckets tiny.
const MSD_MAX_BITS: usize = 16;

/// The 8-bit digit at position `d` (0 = least significant byte of the
/// minor `u64`, 23 = most significant byte of the major `u128`).
#[inline(always)]
fn digit(hi: u128, lo: u64, d: usize) -> usize {
    if d < 8 {
        ((lo >> (8 * d)) & 0xff) as usize
    } else {
        ((hi >> (8 * (d - 8))) & 0xff) as usize
    }
}

/// Global bit positions (0 = least significant bit of the minor `u64`,
/// 191 = top bit of the major `u128`) that vary across the input, most
/// significant first. Constant bits cannot affect the order.
fn live_bit_positions<T, K>(data: &[T], key: &K) -> Vec<usize>
where
    K: Fn(&T) -> (u128, u64),
{
    let (mut or_hi, mut or_lo) = (0u128, 0u64);
    let (mut and_hi, mut and_lo) = (u128::MAX, u64::MAX);
    for x in data.iter() {
        let (hi, lo) = key(x);
        or_hi |= hi;
        or_lo |= lo;
        and_hi &= hi;
        and_lo &= lo;
    }
    let varies_hi = or_hi & !and_hi;
    let varies_lo = or_lo & !and_lo;
    let mut live = Vec::new();
    for b in (0..128).rev() {
        if (varies_hi >> b) & 1 == 1 {
            live.push(64 + b);
        }
    }
    for b in (0..64).rev() {
        if (varies_lo >> b) & 1 == 1 {
            live.push(b);
        }
    }
    live
}

/// Extracts an MSD bucket index — the input's top live bits, compacted —
/// via one 256-entry table per key byte those bits touch: clustered
/// inputs concentrate their top live bits in two or three bytes, so a
/// bucket costs a couple of L1 lookups instead of a per-bit loop.
struct BucketLut {
    tables: Vec<(usize, [u32; 256])>,
}

impl BucketLut {
    /// `chosen` lists global bit positions, most significant first; bit
    /// `chosen[i]` lands at output bit `chosen.len() - 1 - i`.
    fn build(chosen: &[usize]) -> Self {
        let b_bits = chosen.len();
        let mut tables: Vec<(usize, [u32; 256])> = Vec::new();
        for (i, &p) in chosen.iter().enumerate() {
            let out_bit = b_bits - 1 - i;
            let byte = p / 8;
            let in_bit = p % 8;
            if tables.last().map(|&(j, _)| j) != Some(byte) {
                tables.push((byte, [0u32; 256]));
            }
            let tbl = &mut tables.last_mut().expect("just pushed").1;
            for (v, slot) in tbl.iter_mut().enumerate() {
                *slot |= (((v >> in_bit) & 1) as u32) << out_bit;
            }
        }
        BucketLut { tables }
    }

    #[inline(always)]
    fn bucket(&self, hi: u128, lo: u64) -> usize {
        let mut acc = 0u32;
        for (j, tbl) in self.tables.iter() {
            acc |= tbl[digit(hi, lo, *j)];
        }
        acc as usize
    }
}

/// LSD stable counting passes over the given live byte positions
/// (ascending), ping-ponging between `data` and an internal scratch.
fn lsd_sort<T, K>(data: &mut [T], key: &K, live_bytes: &[usize])
where
    T: Copy + Ord,
    K: Fn(&T) -> (u128, u64),
{
    // Histogram every live digit in one sweep.
    let mut hist = vec![[0usize; 256]; live_bytes.len()];
    for x in data.iter() {
        let (hi, lo) = key(x);
        for (h, &d) in hist.iter_mut().zip(live_bytes) {
            h[digit(hi, lo, d)] += 1;
        }
    }

    // One stable counting scatter per live digit, least significant
    // first.
    let mut scratch: Vec<T> = data.to_vec();
    let mut src_is_data = true;
    for (h, &d) in hist.iter().zip(live_bytes) {
        let mut offsets = [0usize; 256];
        let mut sum = 0usize;
        for (o, &count) in offsets.iter_mut().zip(h.iter()) {
            *o = sum;
            sum += count;
        }
        let (src, dst): (&[T], &mut [T]) = if src_is_data {
            (&*data, &mut scratch)
        } else {
            (&scratch, data)
        };
        for x in src {
            let (hi, lo) = key(x);
            let b = digit(hi, lo, d);
            dst[offsets[b]] = *x;
            offsets[b] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

/// MSD partition of `data` into `scratch` (resized to match) by the top
/// live bits, followed by an in-place comparison finish per bucket —
/// the sorted result is left in `scratch`. Returns the bucket count
/// actually used.
fn msd_partition_sort<T, K>(data: &[T], scratch: &mut Vec<T>, key: &K, live_bits: &[usize]) -> usize
where
    T: Copy + Ord,
    K: Fn(&T) -> (u128, u64),
{
    let n = data.len();
    // Aim for ~8 elements per bucket, capped so the count/offset arrays
    // stay cache-resident.
    let b_bits = ((usize::BITS - (n / 8).leading_zeros()) as usize)
        .min(MSD_MAX_BITS)
        .min(live_bits.len())
        .max(1);
    let lut = BucketLut::build(&live_bits[..b_bits]);
    let buckets = 1usize << b_bits;

    let mut counts = vec![0u32; buckets];
    for x in data.iter() {
        let (hi, lo) = key(x);
        counts[lut.bucket(hi, lo)] += 1;
    }
    let mut offsets = vec![0u32; buckets];
    let mut sum = 0u32;
    for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
        *o = sum;
        sum += c;
    }
    scratch.clear();
    scratch.resize(n, data[0]);
    for x in data.iter() {
        let (hi, lo) = key(x);
        let b = lut.bucket(hi, lo);
        scratch[offsets[b] as usize] = *x;
        offsets[b] += 1;
    }
    // Buckets are ordered by a prefix of the key; finishing each with a
    // comparison sort yields the exact `sort_unstable` order, and the
    // small slices sort in cache.
    let mut start = 0usize;
    for &c in counts.iter() {
        let end = start + c as usize;
        scratch[start..end].sort_unstable();
        start = end;
    }
    buckets
}

/// Slice-level kernel: dispatches to the comparison fallback, the LSD
/// counting path, or the MSD partition (paying one copy back into
/// `data`). Used for parallel chunk views; the `Vec` entry points below
/// avoid the copy by swapping buffers.
fn radix_sort_slice<T, K>(data: &mut [T], key: &K)
where
    T: Copy + Ord,
    K: Fn(&T) -> (u128, u64),
{
    if data.len() < RADIX_MIN_LEN {
        data.sort_unstable();
        return;
    }
    let live = live_bit_positions(data, key);
    if live.is_empty() {
        // Every key is identical; for injective keys there is nothing
        // to reorder.
        return;
    }
    let live_bytes = live_bytes_asc(&live);
    if live_bytes.len() <= LSD_MAX_LIVE {
        lsd_sort(data, key, &live_bytes);
    } else {
        let mut scratch = Vec::new();
        msd_partition_sort(data, &mut scratch, key, &live);
        data.copy_from_slice(&scratch);
    }
}

/// Ascending byte positions touched by the given live bit positions.
fn live_bytes_asc(live_bits: &[usize]) -> Vec<usize> {
    let mut bytes: Vec<usize> = live_bits.iter().map(|&p| p / 8).collect();
    bytes.sort_unstable();
    bytes.dedup();
    debug_assert!(bytes.iter().all(|&b| b < DIGITS));
    bytes
}

/// Sorts `data` ascending by `key`, where `key` maps each element to a
/// `(major, minor)` pair ordered lexicographically (major first).
///
/// **Contract:** `key` must be consistent with `T`'s `Ord` and
/// injective over the element — which every call site satisfies by
/// sorting plain integer tuples by themselves. Under that contract the
/// result is element-for-element identical to `data.sort_unstable()`.
///
/// Adaptive: constant key bits are detected in one OR/AND pass and
/// never touched again; narrow keys take LSD counting passes, wide
/// keys one MSD partition with in-cache comparison finishes, and small
/// inputs fall back to a comparison sort outright.
pub fn radix_sort_by_key<T, K>(data: &mut Vec<T>, key: K)
where
    T: Copy + Ord,
    K: Fn(&T) -> (u128, u64),
{
    if data.len() < RADIX_MIN_LEN {
        data.sort_unstable();
        return;
    }
    let live = live_bit_positions(data, &key);
    if live.is_empty() {
        return;
    }
    let live_bytes = live_bytes_asc(&live);
    if live_bytes.len() <= LSD_MAX_LIVE {
        lsd_sort(data, &key, &live_bytes);
    } else {
        // The Vec entry point hands the scratch buffer back as the
        // result instead of copying it — the partitioned, finished
        // buffer simply becomes `data`.
        let mut scratch = Vec::new();
        msd_partition_sort(data, &mut scratch, &key, &live);
        std::mem::swap(data, &mut scratch);
    }
}

/// [`radix_sort_by_key`] for the pipeline's dominant element type:
/// `(u128, u64)` pairs sorted by their natural tuple order.
pub fn radix_sort_u128(data: &mut Vec<(u128, u64)>) {
    radix_sort_by_key(data, |&(hi, lo)| (hi, lo));
}

/// The IEEE-754 total-order mapping: a monotone bijection from finite
/// `f64` bit patterns to `u64` (sign-folded so negative values order
/// below positive ones).
#[inline]
fn f64_key(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// Inverse of [`f64_key`].
#[inline]
fn f64_unkey(k: u64) -> f64 {
    f64::from_bits(if k & (1 << 63) != 0 {
        k ^ (1 << 63)
    } else {
        !k
    })
}

/// Sorts `f64` samples ascending through the IEEE-754 monotone integer
/// mapping and the adaptive radix sort — the comparison-free
/// replacement for `sort_by(partial_cmp)` over analysis sample vectors
/// (Cdf construction, rotation intervals, geolocation errors).
///
/// **Contract:** no NaNs (every call site drops them first; NaN keys
/// would sort above `+inf` rather than panic, but the debug assert
/// keeps the contract honest). `-0.0` and `0.0` map to distinct keys
/// ordered `-0.0 < 0.0` — a refinement of their `PartialOrd` equality
/// that no rank or quantile query can observe.
pub fn radix_sort_f64(data: &mut [f64]) {
    debug_assert!(data.iter().all(|v| !v.is_nan()), "NaN in radix_sort_f64");
    let mut keys: Vec<u64> = data.iter().map(|&v| f64_key(v)).collect();
    radix_sort_by_key(&mut keys, |&k| (u128::from(k), 0));
    for (dst, k) in data.iter_mut().zip(&keys) {
        *dst = f64_unkey(*k);
    }
}

/// Calibrated per-element radix cost for the parallel cutoff: cheaper
/// than [`super::pool::par_sort_unstable`]'s comparison estimate because
/// the passes are branch-free linear sweeps.
const RADIX_ITEM_NS: u64 = 25;

/// Work below this estimate sorts inline: chunked radix sorting pays
/// the tournament merge's extra move of every element, mirroring the
/// bar `par_sort_unstable` applies.
const RADIX_PAR_CUTOFF_NANOS: u64 = 8 * crate::pool::SEQ_CUTOFF_NANOS;

/// Parallel adaptive radix sort: disjoint chunk views are radix-sorted
/// on the persistent pool and combined with one tournament move-merge.
///
/// Same determinism contract as [`super::pool::par_sort_unstable`]: for
/// element types whose equal values are indistinguishable and a `key`
/// consistent with `Ord`, the result is byte-identical to
/// `data.sort_unstable()` at any thread count (including 1).
pub fn par_radix_sort<T, K>(threads: usize, data: &mut Vec<T>, key: K)
where
    T: Copy + Ord + Send + Sync,
    K: Fn(&T) -> (u128, u64) + Sync,
{
    let n = data.len();
    let threads = threads.max(1);
    let estimate = (n as u64).saturating_mul(RADIX_ITEM_NS);
    if threads == 1 || n < 2 * RADIX_MIN_LEN || estimate < RADIX_PAR_CUTOFF_NANOS {
        radix_sort_by_key(data, key);
        return;
    }
    let parts = threads
        .min(((estimate / RADIX_PAR_CUTOFF_NANOS) as usize).max(2))
        .min(n);
    let ranges = split_ranges(n, parts);
    let mut views: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [T] = data.as_mut_slice();
    for r in &ranges[..ranges.len() - 1] {
        let (head, tail) = rest.split_at_mut(r.len());
        views.push(head);
        rest = tail;
    }
    views.push(rest);
    let per_view = estimate / ranges.len() as u64;
    par_for_each_mut(
        threads,
        &mut views,
        Cost::per_item_ns(per_view).labeled("radix.chunk"),
        |_, view| radix_sort_slice(view, &key),
    );
    merge_runs_in_place(data, &ranges);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, seed: u64) -> Vec<(u128, u64)> {
        // Hitlist-shaped: a few thousand /48s under one /32, structured
        // low IIDs, small timestamps.
        let mut h = seed | 1;
        (0..n)
            .map(|_| {
                h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(23) ^ 0x5eed;
                let net48 = (h >> 40) % 4096;
                let subnet = (h >> 20) % 8;
                let iid = h % 65_536;
                let bits = (0x2001_0db8u128 << 96)
                    | (u128::from(net48) << 80)
                    | (u128::from(subnet) << 64)
                    | u128::from(iid);
                (bits, h % 1_000_000)
            })
            .collect()
    }

    fn random(n: usize, seed: u64) -> Vec<(u128, u64)> {
        let mut h = seed | 1;
        (0..n)
            .map(|_| {
                h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(31) ^ 0xabcd;
                let hi = (u128::from(h) << 64) | u128::from(h.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (hi, h ^ 0xffff)
            })
            .collect()
    }

    #[test]
    fn radix_matches_sort_unstable() {
        for n in [0usize, 1, 100, RADIX_MIN_LEN - 1, RADIX_MIN_LEN, 50_000] {
            for gen in [clustered as fn(usize, u64) -> _, random] {
                let mut data = gen(n, 7);
                let mut expect = data.clone();
                expect.sort_unstable();
                radix_sort_u128(&mut data);
                assert_eq!(data, expect, "n={n}");
            }
        }
    }

    #[test]
    fn narrow_keys_take_the_lsd_path_and_match() {
        // At most 3 live bytes: a dense 16-bit low plane plus a tiny
        // secondary — the LSD counting path end to end.
        let mut h = 13u64;
        let mut data: Vec<(u128, u64)> = (0..20_000)
            .map(|_| {
                h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(11) ^ 7;
                ((0xfeed_0000u128 << 64) | u128::from(h % 65_536), h % 100)
            })
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort_u128(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn radix_handles_duplicates_and_constant_keys() {
        let mut data: Vec<(u128, u64)> = (0..5_000u64).map(|i| (42, i % 17)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort_u128(&mut data);
        assert_eq!(data, expect);

        let mut same: Vec<(u128, u64)> = vec![(7, 7); 4_096];
        radix_sort_u128(&mut same);
        assert!(same.iter().all(|&x| x == (7, 7)));
    }

    #[test]
    fn radix_by_key_orders_u32_weeks() {
        // The ingestion element type: (bits, week) with week < 2^32.
        let mut data: Vec<(u128, u32)> = clustered(30_000, 3)
            .into_iter()
            .map(|(b, t)| (b, t as u32))
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort_by_key(&mut data, |&(b, w)| (b, u64::from(w)));
        assert_eq!(data, expect);
    }

    #[test]
    fn f64_sort_matches_partial_cmp_sort() {
        let mut h = 99u64;
        for n in [0usize, 1, 100, RADIX_MIN_LEN, 30_000] {
            let mut data: Vec<f64> = (0..n)
                .map(|i| {
                    h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17) ^ 5;
                    match i % 7 {
                        0 => -(h as f64) / 1e6,
                        1 => (h % 1000) as f64,
                        2 => 0.0,
                        3 => -0.0,
                        4 => f64::from_bits(h >> 12), // denormals & small
                        5 => (h as f64) * 1e18,
                        _ => (h as f64).sqrt(),
                    }
                })
                .collect();
            let mut expect = data.clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            radix_sort_f64(&mut data);
            // Compare by bits so -0.0 vs 0.0 ordering is visible — the
            // radix order (-0.0 before 0.0) is a valid partial_cmp sort.
            assert!(data.windows(2).all(|w| f64_key(w[0]) <= f64_key(w[1])));
            assert_eq!(data.len(), expect.len());
            for (a, b) in data.iter().zip(&expect) {
                assert!(a == b || (*a == 0.0 && *b == 0.0), "{a} vs {b}");
            }
        }
        let mut infs = vec![f64::INFINITY, f64::NEG_INFINITY, 1.0, -1.0];
        radix_sort_f64(&mut infs);
        assert_eq!(infs, vec![f64::NEG_INFINITY, -1.0, 1.0, f64::INFINITY]);
    }

    #[test]
    fn slice_kernel_matches_vec_kernel() {
        for gen in [clustered as fn(usize, u64) -> _, random] {
            let mut via_slice = gen(40_000, 9);
            let mut via_vec = via_slice.clone();
            let mut expect = via_slice.clone();
            expect.sort_unstable();
            radix_sort_slice(&mut via_slice, &|&(hi, lo): &(u128, u64)| (hi, lo));
            radix_sort_u128(&mut via_vec);
            assert_eq!(via_slice, expect);
            assert_eq!(via_vec, expect);
        }
    }

    #[test]
    fn par_radix_matches_sequential_at_any_thread_count() {
        let data = clustered(120_000, 11);
        let mut expect = data.clone();
        expect.sort_unstable();
        for threads in [1usize, 2, 3, 8] {
            let mut got = data.clone();
            par_radix_sort(threads, &mut got, |&(hi, lo)| (hi, lo));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_radix_small_input_stays_inline_and_exact() {
        let mut data = random(500, 5);
        let mut expect = data.clone();
        expect.sort_unstable();
        par_radix_sort(8, &mut data, |&(hi, lo)| (hi, lo));
        assert_eq!(data, expect);
    }
}
