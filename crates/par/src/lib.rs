//! # v6par — deterministic data parallelism for the hitlist pipeline
//!
//! The paper's substrate is embarrassingly parallel — 27 independent
//! vantage points, per-/48 probing, per-device EUI-64 analysis — but
//! parallel code that changes its answer with the worker count is
//! useless for a reproduction. Everything here therefore honors one
//! contract: **the result is a pure function of the input, bit-identical
//! at any thread count** (including 1).
//!
//! Building blocks:
//!
//! * [`threads`] — the worker count, overridable with `V6_THREADS`.
//! * [`scope`] — scoped spawning (re-exported [`std::thread::scope`]).
//! * [`par_map`] — order-preserving parallel map with chunk-level work
//!   stealing: idle workers steal the next unclaimed chunk.
//! * [`par_chunks_fold`] — fold disjoint chunks in parallel, returning
//!   the per-chunk accumulators in chunk order for an exact caller-side
//!   merge.
//! * [`par_merge_sorted`] / [`merge_sorted_pair`] — stable k-way merge
//!   of sorted runs (earlier runs win ties), parallelized as a merge
//!   tree.
//! * [`par_sort_unstable`] — chunked sort + stable merge; equals a
//!   global `sort_unstable` for any input whose equal elements are
//!   indistinguishable.
//! * [`Dag`] — an explicit stage dependency graph executed by a worker
//!   pool; independent stages run concurrently, results are retrieved
//!   by name. [`Dag::run_with`] adds per-stage retry with capped
//!   exponential backoff, deadlines, and pluggable fault injection
//!   ([`FaultInjector`]) for deterministic chaos testing.
//!
//! Determinism comes from construction, not from luck: `par_map` writes
//! result chunks into their input positions, folds merge in chunk
//! order, and the merge tree resolves ties by run index. Scheduling
//! order may vary run to run; observable output never does.
//!
//! Observability: the DAG runner and the pool record into the global
//! `v6obs` registry — `par.dag.*` (stage completions/failures/retries,
//! injected-fault counts, stage latency, ready-queue peak) and
//! `par.pool.*` (par_map calls, chunk counts, steals, chunk latency).
//! With `V6_TRACE=1` each stage body runs inside a `v6obs` span named
//! after the stage. `par.pool.*` values and all timing metrics describe
//! scheduling, not data, and are exempt from the thread-count-invariance
//! contract above.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dag;
mod pool;

pub use dag::{
    Dag, DagOutputs, DagRun, FailReason, FaultInjector, InjectedFault, NoFaults, RetryPolicy,
    StageFailure, StageTiming, TaskOutputs,
};
pub use pool::{
    merge_sorted_pair, par_chunks_fold, par_map, par_merge_sorted, par_sort_unstable, split_ranges,
};

/// Scoped thread spawning — re-exported [`std::thread::scope`], so
/// callers that need bespoke fan-out depend only on `v6par`.
pub use std::thread::scope;

/// The worker count the pipeline should use.
///
/// `V6_THREADS` overrides (clamped to ≥ 1); otherwise the machine's
/// available parallelism. Every parallel entry point takes an explicit
/// thread count, so this is only the *default* plumbed in at the top of
/// the pipeline — tests pin counts explicitly and never race on the
/// environment.
pub fn threads() -> usize {
    match std::env::var("V6_THREADS") {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1),
        Err(_) => None,
    }
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }
}
