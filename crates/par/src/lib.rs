//! # v6par — deterministic data parallelism for the hitlist pipeline
//!
//! The paper's substrate is embarrassingly parallel — 27 independent
//! vantage points, per-/48 probing, per-device EUI-64 analysis — but
//! parallel code that changes its answer with the worker count is
//! useless for a reproduction. Everything here therefore honors one
//! contract: **the result is a pure function of the input, bit-identical
//! at any thread count** (including 1).
//!
//! Building blocks:
//!
//! * [`threads`] — the worker count, overridable with `V6_THREADS`.
//! * [`scope`] — scoped spawning (re-exported [`std::thread::scope`]).
//! * [`par_map`] / [`par_map_cost`] — order-preserving parallel map:
//!   participants claim fixed-cost morsels off a shared cursor and
//!   write each result straight into its final output slot.
//! * [`par_for_each_mut`] — in-place parallel mutation under the same
//!   morsel scheduler, for callers that own their buffers.
//! * [`par_chunks_fold`] / [`par_chunks_fold_cost`] — fold disjoint
//!   chunks in parallel, returning the per-chunk accumulators in chunk
//!   order for an exact caller-side merge.
//! * [`par_merge_sorted`] / [`merge_sorted_pair`] — stable k-way merge
//!   of sorted runs (earlier runs win ties) via a single-output
//!   tournament move-merge; no `Clone` required.
//! * [`par_sort_unstable`] — in-place parallel chunk sorts plus one
//!   tournament move-merge; equals a global `sort_unstable` for any
//!   input whose equal elements are indistinguishable. No `Clone`.
//! * [`radix_sort_u128`] / [`radix_sort_by_key`] / [`par_radix_sort`] —
//!   adaptive LSD radix sort for 192-bit `(u128, u64)` keys: trivial
//!   digit positions (shared address-prefix bytes) are detected in one
//!   pass and skipped, and the parallel variant composes chunked radix
//!   sorts with the same tournament move-merge. The ingestion paths'
//!   replacement for comparison sorting of address keys.
//! * [`Cost`] — per-item work hints driving the adaptive
//!   sequential-vs-parallel cutoff ([`SEQ_CUTOFF_NANOS`]) and morsel
//!   sizing ([`MORSEL_TARGET_NANOS`]).
//! * [`Dag`] — an explicit stage dependency graph executed by a worker
//!   pool; independent stages run concurrently, results are retrieved
//!   by name. [`Dag::run_with`] adds per-stage retry with capped
//!   exponential backoff, deadlines, and pluggable fault injection
//!   ([`FaultInjector`]) for deterministic chaos testing.
//!
//! The data-parallel kernels all execute on one **persistent,
//! lazily-spawned worker pool** (see [`pool_threads_spawned`]): OS
//! threads are created once per process and park between jobs, so the
//! spawn/join cost that used to be paid per call is paid once.
//! `V6_THREADS=1` (or any call below its work cutoff) never touches the
//! pool at all.
//!
//! Determinism comes from construction, not from luck: `par_map` writes
//! results into their input positions, folds merge in chunk order, and
//! the tournament merge resolves ties by run index. Scheduling order
//! may vary run to run; observable output never does.
//!
//! Observability: the DAG runner and the pool record into the global
//! `v6obs` registry — `par.dag.*` (stage completions/failures/retries,
//! injected-fault counts, stage latency, ready-queue peak),
//! `par.pool.*` (parallel calls, morsel counts, steals, pool threads,
//! morsel latency), and `par.cutoff.<site>.{inline,parallel}` (adaptive
//! cutoff decisions per labeled call site). With `V6_TRACE=1` each
//! stage body runs inside a `v6obs` span named after the stage. All
//! `par.*` values describe scheduling, not data, and are exempt from
//! the thread-count-invariance contract above.
//!
//! Safety: this crate contains the workspace's only `unsafe` — the
//! zero-copy output writes, in-place chunk views, and move-merges in
//! `pool.rs`, each behind a safe API with its disjointness argument
//! documented at the site. Everything else is `#![deny(unsafe_code)]`.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod dag;
mod pool;
mod radix;

pub use dag::{
    Dag, DagOutputs, DagRun, FailReason, FaultInjector, InjectedFault, NoFaults, RetryPolicy,
    StageFailure, StageTiming, TaskOutputs,
};
pub use pool::{
    merge_sorted_pair, par_chunks_fold, par_chunks_fold_cost, par_for_each_mut, par_map,
    par_map_cost, par_merge_sorted, par_sort_unstable, pool_threads_spawned, split_ranges, Cost,
    MORSEL_TARGET_NANOS, SEQ_CUTOFF_NANOS,
};
pub use radix::{par_radix_sort, radix_sort_by_key, radix_sort_f64, radix_sort_u128};

/// Scoped thread spawning — re-exported [`std::thread::scope`], so
/// callers that need bespoke fan-out depend only on `v6par`.
pub use std::thread::scope;

/// The worker count the pipeline should use.
///
/// `V6_THREADS` overrides (clamped to ≥ 1); otherwise the machine's
/// available parallelism. Every parallel entry point takes an explicit
/// thread count, so this is only the *default* plumbed in at the top of
/// the pipeline — tests pin counts explicitly and never race on the
/// environment.
pub fn threads() -> usize {
    match std::env::var("V6_THREADS") {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1),
        Err(_) => None,
    }
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }
}
