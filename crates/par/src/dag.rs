//! An explicit stage dependency DAG executed by a worker pool.
//!
//! The experiment pipeline used to be straight-line code: collect, then
//! campaign, then campaign, then four analyses — even though most
//! stages only depend on one or two others. [`Dag`] makes the
//! dependency structure explicit: each stage is a named task plus the
//! names of the stages it consumes; [`Dag::run`] executes stages as
//! soon as their inputs exist, with up to `threads` stages in flight.
//!
//! Determinism: the DAG only controls *when* a stage runs, never what
//! it computes — every task is a pure function of its named inputs, so
//! scheduling order cannot leak into the artifacts. Per-stage wall
//! times are recorded for the bench harness.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel;

type BoxedOutput = Box<dyn Any + Send + Sync>;
type TaskFn<'env> = Box<dyn FnOnce(&TaskOutputs) -> BoxedOutput + Send + 'env>;

/// Wall-clock time one stage took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// The stage name.
    pub name: &'static str,
    /// Its wall-clock duration.
    pub wall: Duration,
}

struct Node<'env> {
    name: &'static str,
    deps: Vec<usize>,
    task: TaskFn<'env>,
}

/// Completed stage outputs, indexed by stage name.
///
/// Tasks receive `&TaskOutputs` and read their dependencies with
/// [`TaskOutputs::get`]; the scheduler guarantees a dependency's slot
/// is filled before any dependent starts.
pub struct TaskOutputs {
    names: HashMap<&'static str, usize>,
    slots: Vec<OnceLock<BoxedOutput>>,
}

impl TaskOutputs {
    /// A completed dependency's output.
    ///
    /// Panics on an unknown name, a stage that has not completed (only
    /// possible if it was not declared as a dependency), or a type
    /// mismatch — all three are wiring bugs, not runtime conditions.
    pub fn get<T: Any>(&self, name: &str) -> &T {
        let &i = self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown stage `{name}`"));
        self.slots[i]
            .get()
            .unwrap_or_else(|| panic!("stage `{name}` has not completed; declare it as a dep"))
            .downcast_ref::<T>()
            .unwrap_or_else(|| {
                panic!(
                    "stage `{name}` output is not a {}",
                    std::any::type_name::<T>()
                )
            })
    }
}

/// The stage outputs and timings of a completed [`Dag::run`].
pub struct DagOutputs {
    outputs: TaskOutputs,
    /// Per-stage wall-clock durations, in stage insertion order.
    pub timings: Vec<StageTiming>,
}

impl DagOutputs {
    /// Takes ownership of one stage's output.
    ///
    /// Panics on an unknown name, a double-take, or a type mismatch.
    pub fn take<T: Any>(&mut self, name: &str) -> T {
        let &i = self
            .outputs
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown stage `{name}`"));
        let boxed = self.outputs.slots[i]
            .take()
            .unwrap_or_else(|| panic!("stage `{name}` output already taken (or never ran)"));
        match boxed.downcast::<T>() {
            Ok(v) => *v,
            Err(_) => panic!(
                "stage `{name}` output is not a {}",
                std::any::type_name::<T>()
            ),
        }
    }
}

/// A named-stage dependency graph under construction.
pub struct Dag<'env> {
    nodes: Vec<Node<'env>>,
    index: HashMap<&'static str, usize>,
}

impl<'env> Dag<'env> {
    /// An empty DAG.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of stages added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no stages have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a stage. `deps` must name stages added earlier (which also
    /// rules out cycles by construction).
    ///
    /// Panics on a duplicate name or an unknown dependency.
    pub fn add<T, F>(&mut self, name: &'static str, deps: &[&str], task: F)
    where
        T: Any + Send + Sync,
        F: FnOnce(&TaskOutputs) -> T + Send + 'env,
    {
        assert!(
            !self.index.contains_key(name),
            "duplicate stage name `{name}`"
        );
        let deps: Vec<usize> = deps
            .iter()
            .map(|d| {
                *self
                    .index
                    .get(d)
                    .unwrap_or_else(|| panic!("stage `{name}` depends on unknown stage `{d}`"))
            })
            .collect();
        self.index.insert(name, self.nodes.len());
        self.nodes.push(Node {
            name,
            deps,
            task: Box::new(move |outputs| Box::new(task(outputs))),
        });
    }

    /// Executes every stage with up to `threads` in flight and returns
    /// the outputs plus per-stage timings.
    ///
    /// A panicking stage is re-raised here after the pool drains, so a
    /// failure inside one stage never deadlocks the others.
    pub fn run(self, threads: usize) -> DagOutputs {
        const DONE: usize = usize::MAX;
        let n = self.nodes.len();
        let outputs = TaskOutputs {
            names: self.index,
            slots: (0..n).map(|_| OnceLock::new()).collect(),
        };
        let mut names = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut tasks: Vec<Mutex<Option<TaskFn<'env>>>> = Vec::with_capacity(n);
        let indegree: Vec<AtomicUsize> = self
            .nodes
            .iter()
            .map(|node| AtomicUsize::new(node.deps.len()))
            .collect();
        for (i, node) in self.nodes.into_iter().enumerate() {
            names.push(node.name);
            for &d in &node.deps {
                dependents[d].push(i);
            }
            tasks.push(Mutex::new(Some(node.task)));
        }

        let workers = threads.max(1).min(n.max(1));
        let (ready_tx, ready_rx) = channel::unbounded::<usize>();
        for (i, deg) in indegree.iter().enumerate() {
            if deg.load(Ordering::Relaxed) == 0 {
                ready_tx.send(i).expect("receiver alive");
            }
        }
        let remaining = AtomicUsize::new(n);
        let timings: Mutex<Vec<(usize, Duration)>> = Mutex::new(Vec::with_capacity(n));
        let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

        let run_worker = || {
            while let Ok(i) = ready_rx.recv() {
                if i == DONE {
                    break;
                }
                let task = tasks[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("stage scheduled twice");
                let started = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| task(&outputs))) {
                    Ok(output) => {
                        let elapsed = started.elapsed();
                        outputs.slots[i]
                            .set(output)
                            .unwrap_or_else(|_| panic!("stage output set twice"));
                        timings
                            .lock()
                            .expect("timing log poisoned")
                            .push((i, elapsed));
                        for &dep in &dependents[i] {
                            if indegree[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                                ready_tx.send(dep).expect("receiver alive");
                            }
                        }
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            for _ in 0..workers {
                                ready_tx.send(DONE).expect("receiver alive");
                            }
                        }
                    }
                    Err(payload) => {
                        // Record the panic and unblock every worker; the
                        // caller re-raises after the pool drains.
                        panicked
                            .lock()
                            .expect("panic slot poisoned")
                            .get_or_insert(payload);
                        for _ in 0..workers {
                            ready_tx.send(DONE).expect("receiver alive");
                        }
                        break;
                    }
                }
            }
        };

        if workers <= 1 {
            run_worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(run_worker);
                }
            });
        }

        if let Some(payload) = panicked.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        assert_eq!(
            remaining.load(Ordering::Relaxed),
            0,
            "DAG did not complete (cycle or lost stage?)"
        );
        let mut raw = timings.into_inner().expect("timing log poisoned");
        raw.sort_by_key(|&(i, _)| i);
        DagOutputs {
            outputs,
            timings: raw
                .into_iter()
                .map(|(i, wall)| StageTiming {
                    name: names[i],
                    wall,
                })
                .collect(),
        }
    }
}

impl Default for Dag<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond<'a>(trace: &'a Mutex<Vec<&'static str>>) -> Dag<'a> {
        let mut dag = Dag::new();
        dag.add("a", &[], move |_| {
            trace.lock().unwrap().push("a");
            2u64
        });
        dag.add("b", &["a"], move |o| {
            trace.lock().unwrap().push("b");
            o.get::<u64>("a") * 10
        });
        dag.add("c", &["a"], move |o| {
            trace.lock().unwrap().push("c");
            o.get::<u64>("a") + 1
        });
        dag.add("d", &["b", "c"], move |o| {
            trace.lock().unwrap().push("d");
            o.get::<u64>("b") + o.get::<u64>("c")
        });
        dag
    }

    #[test]
    fn diamond_runs_in_dependency_order() {
        for threads in [1, 2, 8] {
            let trace = Mutex::new(Vec::new());
            let mut out = diamond(&trace).run(threads);
            assert_eq!(out.take::<u64>("d"), 23);
            let order = trace.into_inner().unwrap();
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], "a");
            assert_eq!(order[3], "d");
            assert_eq!(out.timings.len(), 4);
            assert_eq!(out.timings[0].name, "a");
        }
    }

    #[test]
    fn heterogeneous_outputs() {
        let mut dag = Dag::new();
        dag.add("nums", &[], |_| vec![1u32, 2, 3]);
        dag.add("label", &["nums"], |o| {
            format!("{} nums", o.get::<Vec<u32>>("nums").len())
        });
        let mut out = dag.run(4);
        assert_eq!(out.take::<String>("label"), "3 nums");
        assert_eq!(out.take::<Vec<u32>>("nums"), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unknown stage")]
    fn unknown_dep_panics_at_add() {
        let mut dag = Dag::new();
        dag.add("x", &["missing"], |_| 0u8);
    }

    #[test]
    fn stage_panic_propagates_without_deadlock() {
        for threads in [1, 4] {
            let result = std::panic::catch_unwind(|| {
                let mut dag = Dag::new();
                dag.add("ok", &[], |_| 1u8);
                dag.add("boom", &[], |_| -> u8 { panic!("stage exploded") });
                dag.add("after", &["ok"], |o| *o.get::<u8>("ok"));
                dag.run(threads)
            });
            assert!(result.is_err(), "threads={threads}");
        }
    }

    #[test]
    fn borrows_environment() {
        let data = vec![5u64, 6, 7];
        let mut dag = Dag::new();
        dag.add("sum", &[], |_| data.iter().sum::<u64>());
        let mut out = dag.run(2);
        assert_eq!(out.take::<u64>("sum"), 18);
        drop(data);
    }
}
