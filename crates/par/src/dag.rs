//! An explicit stage dependency DAG executed by a worker pool.
//!
//! The experiment pipeline used to be straight-line code: collect, then
//! campaign, then campaign, then four analyses — even though most
//! stages only depend on one or two others. [`Dag`] makes the
//! dependency structure explicit: each stage is a named task plus the
//! names of the stages it consumes; [`Dag::run`] executes stages as
//! soon as their inputs exist, with up to `threads` stages in flight.
//!
//! Failure handling lives in [`Dag::run_with`]: each stage gets a
//! [`RetryPolicy`] (capped exponential backoff between attempts, an
//! optional per-stage deadline) and a [`FaultInjector`] consulted once
//! per attempt, so chaos tests can script transient errors, panics, and
//! stalls deterministically. A stage that exhausts its attempts is
//! *reported* — as a [`StageFailure`] in the returned [`DagRun`] — and
//! its dependents are failed with `DependencyFailed` without running,
//! never silently skipped and never deadlocking the pool.
//!
//! Determinism: the DAG only controls *when* a stage runs, never what
//! it computes — every task is a pure function of its named inputs, so
//! scheduling order cannot leak into the artifacts. Per-stage wall
//! times are recorded for the bench harness.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel;

/// Cached handles into the global metrics registry for the DAG runner.
///
/// Stage/retry/injection counts are a pure function of the DAG and the
/// injector script, so they are thread-count-invariant; `ready_peak` and
/// the latency histogram are scheduling/timing observations and are not.
struct DagMetrics {
    stages_completed: v6obs::Counter,
    stage_failures: v6obs::Counter,
    dependency_failures: v6obs::Counter,
    retries: v6obs::Counter,
    injected_errors: v6obs::Counter,
    injected_panics: v6obs::Counter,
    injected_stalls: v6obs::Counter,
    ready_peak: v6obs::Gauge,
    stage_latency: v6obs::Histogram,
}

fn dag_metrics() -> &'static DagMetrics {
    static METRICS: OnceLock<DagMetrics> = OnceLock::new();
    METRICS.get_or_init(|| DagMetrics {
        stages_completed: v6obs::counter("par.dag.stages_completed"),
        stage_failures: v6obs::counter("par.dag.stage_failures"),
        dependency_failures: v6obs::counter("par.dag.dependency_failures"),
        retries: v6obs::counter("par.dag.retries"),
        injected_errors: v6obs::counter("par.dag.injected.errors"),
        injected_panics: v6obs::counter("par.dag.injected.panics"),
        injected_stalls: v6obs::counter("par.dag.injected.stalls"),
        ready_peak: v6obs::gauge("par.dag.ready_peak"),
        stage_latency: v6obs::histogram("par.dag.stage_latency"),
    })
}

type BoxedOutput = Box<dyn Any + Send + Sync>;
type TaskFn<'env> = Box<dyn FnMut(&TaskOutputs) -> BoxedOutput + Send + 'env>;

/// Wall-clock time one stage took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// The stage name.
    pub name: &'static str,
    /// Its wall-clock duration.
    pub wall: Duration,
}

/// A fault the injector asks one stage attempt to exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFault {
    /// Run the attempt normally.
    None,
    /// Sleep this long, then run the attempt normally.
    Stall(Duration),
    /// Fail the attempt with this error, without running the task.
    Error(String),
    /// Fail the attempt as if the task panicked with this message,
    /// without running the task.
    Panic(String),
}

/// A deterministic source of per-attempt stage faults.
///
/// [`Dag::run_with`] consults the injector exactly once per `(stage,
/// attempt)` pair before running the task; injected `Error`/`Panic`
/// faults replace the task body for that attempt, so on a transient
/// script the body still executes exactly once (on the first clean
/// attempt).
pub trait FaultInjector: Sync {
    /// The fault for this `(stage, attempt)` pair.
    fn decide(&self, stage: &str, attempt: u32) -> InjectedFault;
}

/// The production injector: never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn decide(&self, _stage: &str, _attempt: u32) -> InjectedFault {
        InjectedFault::None
    }
}

/// Per-stage retry behavior: attempt cap, capped exponential backoff
/// between attempts, and an optional wall-clock deadline per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so a stage runs at most
    /// `max_retries + 1` times).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Wall-clock budget for one stage across all of its attempts.
    pub stage_deadline: Option<Duration>,
}

impl RetryPolicy {
    /// No retries, no backoff, no deadline — the [`Dag::run`] default.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            stage_deadline: None,
        }
    }

    /// `n` retries with a small capped exponential backoff (1 ms base,
    /// 16 ms cap) and no deadline.
    pub fn retries(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(16),
            stage_deadline: None,
        }
    }

    /// The same policy with a per-stage wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.stage_deadline = Some(deadline);
        self
    }

    /// The backoff sleep after failed attempt `attempt` (0-based):
    /// `min(backoff_base * 2^attempt, backoff_cap)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(20);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Why a stage ended up failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// The last attempt failed with an (injected) error.
    Error(String),
    /// The last attempt panicked, with this payload message.
    Panicked(String),
    /// The stage's wall-clock deadline expired before an attempt
    /// succeeded.
    DeadlineExceeded,
    /// A dependency failed, so this stage never ran.
    DependencyFailed(&'static str),
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::Error(msg) => write!(f, "{msg}"),
            FailReason::Panicked(msg) => write!(f, "panicked: {msg}"),
            FailReason::DeadlineExceeded => write!(f, "stage deadline exceeded"),
            FailReason::DependencyFailed(dep) => write!(f, "dependency `{dep}` failed"),
        }
    }
}

/// One stage that did not complete: its name, how many attempts it
/// made, and the last failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFailure {
    /// The failed stage.
    pub name: &'static str,
    /// Attempts actually executed (0 when a dependency failed first).
    pub attempts: u32,
    /// The final failure.
    pub reason: FailReason,
}

/// Completed stage outputs, indexed by stage name.
///
/// Tasks receive `&TaskOutputs` and read their dependencies with
/// [`TaskOutputs::get`]; the scheduler guarantees a dependency's slot
/// is filled before any dependent starts.
pub struct TaskOutputs {
    names: HashMap<&'static str, usize>,
    slots: Vec<OnceLock<BoxedOutput>>,
}

impl TaskOutputs {
    /// A completed dependency's output.
    ///
    /// Panics on an unknown name, a stage that has not completed (only
    /// possible if it was not declared as a dependency), or a type
    /// mismatch — all three are wiring bugs, not runtime conditions.
    pub fn get<T: Any>(&self, name: &str) -> &T {
        let &i = self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown stage `{name}`"));
        self.slots[i]
            .get()
            .unwrap_or_else(|| panic!("stage `{name}` has not completed; declare it as a dep"))
            .downcast_ref::<T>()
            .unwrap_or_else(|| {
                panic!(
                    "stage `{name}` output is not a {}",
                    std::any::type_name::<T>()
                )
            })
    }
}

/// The stage outputs and timings of a completed [`Dag::run`].
pub struct DagOutputs {
    outputs: TaskOutputs,
    /// Per-stage wall-clock durations for the stages that *succeeded*,
    /// in stage insertion order.
    pub timings: Vec<StageTiming>,
}

impl DagOutputs {
    /// Takes ownership of one stage's output.
    ///
    /// Panics on an unknown name, a double-take, or a type mismatch.
    pub fn take<T: Any>(&mut self, name: &str) -> T {
        match self.try_take::<T>(name) {
            Some(v) => v,
            None => panic!("stage `{name}` output already taken (or never ran)"),
        }
    }

    /// Takes ownership of one stage's output, or `None` when the stage
    /// failed (or its output was already taken).
    ///
    /// Panics on an unknown name or a type mismatch — those are wiring
    /// bugs, unlike a failed stage, which is a runtime condition chaos
    /// runs must handle.
    pub fn try_take<T: Any>(&mut self, name: &str) -> Option<T> {
        let &i = self
            .outputs
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown stage `{name}`"));
        let boxed = self.outputs.slots[i].take()?;
        match boxed.downcast::<T>() {
            Ok(v) => Some(*v),
            Err(_) => panic!(
                "stage `{name}` output is not a {}",
                std::any::type_name::<T>()
            ),
        }
    }
}

/// The result of a fault-tolerant [`Dag::run_with`]: outputs of the
/// stages that succeeded plus a precise account of those that did not.
pub struct DagRun {
    /// Outputs and timings of the successful stages.
    pub outputs: DagOutputs,
    /// Every stage that failed, in stage insertion order. Empty means
    /// the run converged — the outputs are complete.
    pub failures: Vec<StageFailure>,
}

impl DagRun {
    /// True when every stage succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

struct Node<'env> {
    name: &'static str,
    deps: Vec<usize>,
    task: TaskFn<'env>,
}

/// A named-stage dependency graph under construction.
pub struct Dag<'env> {
    nodes: Vec<Node<'env>>,
    index: HashMap<&'static str, usize>,
}

impl<'env> Dag<'env> {
    /// An empty DAG.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of stages added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no stages have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a stage. `deps` must name stages added earlier (which also
    /// rules out cycles by construction).
    ///
    /// The task may be retried (hence `FnMut`), but within one run it is
    /// invoked again only after a previous invocation failed — a
    /// successful body runs exactly once.
    ///
    /// Panics on a duplicate name or an unknown dependency.
    pub fn add<T, F>(&mut self, name: &'static str, deps: &[&str], mut task: F)
    where
        T: Any + Send + Sync,
        F: FnMut(&TaskOutputs) -> T + Send + 'env,
    {
        assert!(
            !self.index.contains_key(name),
            "duplicate stage name `{name}`"
        );
        let deps: Vec<usize> = deps
            .iter()
            .map(|d| {
                *self
                    .index
                    .get(d)
                    .unwrap_or_else(|| panic!("stage `{name}` depends on unknown stage `{d}`"))
            })
            .collect();
        self.index.insert(name, self.nodes.len());
        self.nodes.push(Node {
            name,
            deps,
            task: Box::new(move |outputs| Box::new(task(outputs))),
        });
    }

    /// Executes every stage with up to `threads` in flight and returns
    /// the outputs plus per-stage timings.
    ///
    /// No retries, no injection: any stage failure (i.e. a panic inside
    /// a task) is re-raised here as a panic after the pool drains, so a
    /// failure inside one stage never deadlocks the others.
    pub fn run(self, threads: usize) -> DagOutputs {
        let run = self.run_with(threads, &RetryPolicy::none(), &NoFaults);
        if let Some(f) = run.failures.first() {
            panic!(
                "stage `{}` failed after {} attempt(s): {}",
                f.name, f.attempts, f.reason
            );
        }
        run.outputs
    }

    /// Executes every stage under `policy`, consulting `injector` once
    /// per attempt, and returns both the surviving outputs and the
    /// failures.
    ///
    /// Guarantees, at any thread count:
    ///
    /// * every stage either succeeds exactly once or appears in
    ///   [`DagRun::failures`] — never both, never neither;
    /// * a stage whose dependency failed is reported
    ///   [`FailReason::DependencyFailed`] without its task ever running;
    /// * a stage makes at most `policy.max_retries + 1` attempts, with
    ///   [`RetryPolicy::backoff`] sleeps between them;
    /// * the pool always drains — failures never deadlock waiters.
    pub fn run_with(
        self,
        threads: usize,
        policy: &RetryPolicy,
        injector: &dyn FaultInjector,
    ) -> DagRun {
        const DONE: usize = usize::MAX;
        let n = self.nodes.len();
        let outputs = TaskOutputs {
            names: self.index,
            slots: (0..n).map(|_| OnceLock::new()).collect(),
        };
        let mut names = Vec::with_capacity(n);
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut tasks: Vec<Mutex<Option<TaskFn<'env>>>> = Vec::with_capacity(n);
        let indegree: Vec<AtomicUsize> = self
            .nodes
            .iter()
            .map(|node| AtomicUsize::new(node.deps.len()))
            .collect();
        let failed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        for (i, node) in self.nodes.into_iter().enumerate() {
            names.push(node.name);
            for &d in &node.deps {
                dependents[d].push(i);
            }
            deps.push(node.deps);
            tasks.push(Mutex::new(Some(node.task)));
        }

        // Never run more DAG workers than hardware threads: stage bodies
        // already fan out through the data-parallel pool, so extra stage
        // workers would only timeshare the cores and inflate every
        // stage's wall clock. (Stage *outputs* are unaffected — the DAG
        // is deterministic at any worker count.)
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let workers = threads.max(1).min(n.max(1)).min(cores.max(1));
        let (ready_tx, ready_rx) = channel::unbounded::<usize>();
        for (i, deg) in indegree.iter().enumerate() {
            if deg.load(Ordering::Relaxed) == 0 {
                ready_tx.send(i).expect("receiver alive");
            }
        }
        let remaining = AtomicUsize::new(n);
        let timings: Mutex<Vec<(usize, Duration)>> = Mutex::new(Vec::with_capacity(n));
        let failures: Mutex<Vec<(usize, StageFailure)>> = Mutex::new(Vec::new());

        let metrics = dag_metrics();
        let run_worker = || {
            while let Ok(i) = ready_rx.recv() {
                if i == DONE {
                    break;
                }
                // Stages still ready behind the one just claimed: a
                // high-water mark of scheduler backlog (not data-derived).
                metrics.ready_peak.set_max(ready_rx.len() as i64);
                // A stage is claimed by exactly one worker; completion
                // (success or failure) must cascade exactly once.
                let complete = |i: usize| {
                    for &dep in &dependents[i] {
                        if indegree[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                            ready_tx.send(dep).expect("receiver alive");
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        for _ in 0..workers {
                            ready_tx.send(DONE).expect("receiver alive");
                        }
                    }
                };

                if let Some(&d) = deps[i].iter().find(|&&d| failed[d].load(Ordering::Acquire)) {
                    failed[i].store(true, Ordering::Release);
                    metrics.dependency_failures.inc();
                    failures.lock().expect("failure log poisoned").push((
                        i,
                        StageFailure {
                            name: names[i],
                            attempts: 0,
                            reason: FailReason::DependencyFailed(names[d]),
                        },
                    ));
                    complete(i);
                    continue;
                }

                let mut task = tasks[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("stage scheduled twice");
                let stage_start = Instant::now();
                let mut attempt: u32 = 0;
                let outcome: Result<(BoxedOutput, Duration), FailReason> = loop {
                    let over_deadline =
                        |since: Instant| policy.stage_deadline.is_some_and(|d| since.elapsed() > d);
                    if over_deadline(stage_start) {
                        break Err(FailReason::DeadlineExceeded);
                    }
                    let injected = match injector.decide(names[i], attempt) {
                        InjectedFault::None => None,
                        InjectedFault::Stall(d) => {
                            metrics.injected_stalls.inc();
                            std::thread::sleep(d);
                            if over_deadline(stage_start) {
                                break Err(FailReason::DeadlineExceeded);
                            }
                            None
                        }
                        InjectedFault::Error(msg) => {
                            metrics.injected_errors.inc();
                            Some(FailReason::Error(msg))
                        }
                        InjectedFault::Panic(msg) => {
                            metrics.injected_panics.inc();
                            Some(FailReason::Panicked(msg))
                        }
                    };
                    let result = match injected {
                        Some(reason) => Err(reason),
                        None => {
                            let _span = v6obs::span(names[i]);
                            let started = Instant::now();
                            match catch_unwind(AssertUnwindSafe(|| task(&outputs))) {
                                Ok(out) => Ok((out, started.elapsed())),
                                Err(payload) => Err(FailReason::Panicked(panic_message(&payload))),
                            }
                        }
                    };
                    match result {
                        Ok(done) => break Ok(done),
                        Err(reason) => {
                            if attempt >= policy.max_retries {
                                break Err(reason);
                            }
                            metrics.retries.inc();
                            std::thread::sleep(policy.backoff(attempt));
                            attempt += 1;
                        }
                    }
                };

                match outcome {
                    Ok((output, elapsed)) => {
                        metrics.stages_completed.inc();
                        metrics.stage_latency.record_duration(elapsed);
                        outputs.slots[i]
                            .set(output)
                            .unwrap_or_else(|_| panic!("stage output set twice"));
                        timings
                            .lock()
                            .expect("timing log poisoned")
                            .push((i, elapsed));
                    }
                    Err(reason) => {
                        metrics.stage_failures.inc();
                        failed[i].store(true, Ordering::Release);
                        failures.lock().expect("failure log poisoned").push((
                            i,
                            StageFailure {
                                name: names[i],
                                attempts: attempt + 1,
                                reason,
                            },
                        ));
                    }
                }
                complete(i);
            }
        };

        if workers <= 1 {
            run_worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(run_worker);
                }
            });
        }

        assert_eq!(
            remaining.load(Ordering::Relaxed),
            0,
            "DAG did not complete (cycle or lost stage?)"
        );
        let mut raw = timings.into_inner().expect("timing log poisoned");
        raw.sort_by_key(|&(i, _)| i);
        let mut fails = failures.into_inner().expect("failure log poisoned");
        fails.sort_by_key(|&(i, _)| i);
        DagRun {
            outputs: DagOutputs {
                outputs,
                timings: raw
                    .into_iter()
                    .map(|(i, wall)| StageTiming {
                        name: names[i],
                        wall,
                    })
                    .collect(),
            },
            failures: fails.into_iter().map(|(_, f)| f).collect(),
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl Default for Dag<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond<'a>(trace: &'a Mutex<Vec<&'static str>>) -> Dag<'a> {
        let mut dag = Dag::new();
        dag.add("a", &[], move |_| {
            trace.lock().unwrap().push("a");
            2u64
        });
        dag.add("b", &["a"], move |o| {
            trace.lock().unwrap().push("b");
            o.get::<u64>("a") * 10
        });
        dag.add("c", &["a"], move |o| {
            trace.lock().unwrap().push("c");
            o.get::<u64>("a") + 1
        });
        dag.add("d", &["b", "c"], move |o| {
            trace.lock().unwrap().push("d");
            o.get::<u64>("b") + o.get::<u64>("c")
        });
        dag
    }

    #[test]
    fn diamond_runs_in_dependency_order() {
        for threads in [1, 2, 8] {
            let trace = Mutex::new(Vec::new());
            let mut out = diamond(&trace).run(threads);
            assert_eq!(out.take::<u64>("d"), 23);
            let order = trace.into_inner().unwrap();
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], "a");
            assert_eq!(order[3], "d");
            assert_eq!(out.timings.len(), 4);
            assert_eq!(out.timings[0].name, "a");
        }
    }

    #[test]
    fn heterogeneous_outputs() {
        let mut dag = Dag::new();
        dag.add("nums", &[], |_| vec![1u32, 2, 3]);
        dag.add("label", &["nums"], |o| {
            format!("{} nums", o.get::<Vec<u32>>("nums").len())
        });
        let mut out = dag.run(4);
        assert_eq!(out.take::<String>("label"), "3 nums");
        assert_eq!(out.take::<Vec<u32>>("nums"), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unknown stage")]
    fn unknown_dep_panics_at_add() {
        let mut dag = Dag::new();
        dag.add("x", &["missing"], |_| 0u8);
    }

    #[test]
    fn stage_panic_propagates_without_deadlock() {
        for threads in [1, 4] {
            let result = std::panic::catch_unwind(|| {
                let mut dag = Dag::new();
                dag.add("ok", &[], |_| 1u8);
                dag.add("boom", &[], |_| -> u8 { panic!("stage exploded") });
                dag.add("after", &["ok"], |o| *o.get::<u8>("ok"));
                dag.run(threads)
            });
            assert!(result.is_err(), "threads={threads}");
        }
    }

    #[test]
    fn borrows_environment() {
        let data = vec![5u64, 6, 7];
        let mut dag = Dag::new();
        dag.add("sum", &[], |_| data.iter().sum::<u64>());
        let mut out = dag.run(2);
        assert_eq!(out.take::<u64>("sum"), 18);
        drop(data);
    }

    /// Injector that fails a fixed set of stages for their first
    /// `fail_n` attempts.
    struct FlakyStages {
        stages: Vec<&'static str>,
        fail_n: u32,
        panic: bool,
    }

    impl FaultInjector for FlakyStages {
        fn decide(&self, stage: &str, attempt: u32) -> InjectedFault {
            if self.stages.contains(&stage) && attempt < self.fail_n {
                if self.panic {
                    InjectedFault::Panic(format!("injected panic at attempt {attempt}"))
                } else {
                    InjectedFault::Error(format!("injected error at attempt {attempt}"))
                }
            } else {
                InjectedFault::None
            }
        }
    }

    #[test]
    fn transient_injected_faults_converge_with_retries() {
        for threads in [1, 4] {
            let trace = Mutex::new(Vec::new());
            let injector = FlakyStages {
                stages: vec!["b", "d"],
                fail_n: 2,
                panic: false,
            };
            let mut run = diamond(&trace).run_with(threads, &RetryPolicy::retries(2), &injector);
            assert!(run.is_complete(), "threads={threads}: {:?}", run.failures);
            assert_eq!(run.outputs.take::<u64>("d"), 23);
            // Injected failures replace the body: each stage body ran
            // exactly once despite the retries.
            assert_eq!(trace.into_inner().unwrap().len(), 4);
        }
    }

    #[test]
    fn permanent_fault_fails_stage_and_dependents_without_running_them() {
        for threads in [1, 4] {
            let trace = Mutex::new(Vec::new());
            let injector = FlakyStages {
                stages: vec!["b"],
                fail_n: u32::MAX,
                panic: true,
            };
            let mut run = diamond(&trace).run_with(threads, &RetryPolicy::retries(3), &injector);
            let failed: Vec<&str> = run.failures.iter().map(|f| f.name).collect();
            assert_eq!(failed, vec!["b", "d"], "threads={threads}");
            assert_eq!(run.failures[0].attempts, 4);
            assert!(matches!(run.failures[0].reason, FailReason::Panicked(_)));
            assert_eq!(run.failures[1].attempts, 0);
            assert_eq!(
                run.failures[1].reason,
                FailReason::DependencyFailed("b"),
                "threads={threads}"
            );
            // a and c still succeeded; b and d never ran their bodies.
            assert_eq!(run.outputs.try_take::<u64>("c"), Some(3));
            assert_eq!(run.outputs.try_take::<u64>("b"), None);
            assert_eq!(run.outputs.try_take::<u64>("d"), None);
            let order = trace.into_inner().unwrap();
            assert!(!order.contains(&"b") && !order.contains(&"d"));
            assert_eq!(run.outputs.timings.len(), 2);
        }
    }

    #[test]
    fn real_panics_are_retried_under_policy() {
        let attempts = AtomicUsize::new(0);
        let mut dag = Dag::new();
        dag.add("flaky", &[], |_| {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("not yet");
            }
            7u32
        });
        let mut run = dag.run_with(1, &RetryPolicy::retries(2), &NoFaults);
        assert!(run.is_complete());
        assert_eq!(run.outputs.take::<u32>("flaky"), 7);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn stall_past_deadline_fails_the_stage() {
        struct Staller;
        impl FaultInjector for Staller {
            fn decide(&self, stage: &str, _attempt: u32) -> InjectedFault {
                if stage == "slow" {
                    InjectedFault::Stall(Duration::from_millis(20))
                } else {
                    InjectedFault::None
                }
            }
        }
        let mut dag = Dag::new();
        dag.add("slow", &[], |_| 1u8);
        dag.add("fast", &[], |_| 2u8);
        let policy = RetryPolicy::retries(1).with_deadline(Duration::from_millis(5));
        let mut run = dag.run_with(2, &policy, &Staller);
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].name, "slow");
        assert_eq!(run.failures[0].reason, FailReason::DeadlineExceeded);
        assert_eq!(run.outputs.take::<u8>("fast"), 2);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(9),
            stage_deadline: None,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(9));
        assert_eq!(p.backoff(63), Duration::from_millis(9));
    }
}
