//! Morsel-driven parallel kernels on a persistent worker pool.
//!
//! Three ideas keep parallel from ever costing more than sequential:
//!
//! 1. **Persistent pool** — worker threads are spawned once per process
//!    (lazily, on the first job that wants them) and park on a condvar
//!    between jobs. A job is injected by pushing lightweight references
//!    onto a shared run queue; the submitting thread always participates
//!    in its own job, so progress never depends on a free worker.
//! 2. **Morsel scheduling** — each call estimates its total work from a
//!    caller-supplied [`Cost`] hint, runs inline when the estimate is
//!    below [`SEQ_CUTOFF_NANOS`], and otherwise splits the input into
//!    fixed-cost morsels (~[`MORSEL_TARGET_NANOS`] each) claimed off an
//!    atomic cursor. Tiny inputs pay zero scheduling tax; skewed inputs
//!    rebalance by stealing.
//! 3. **Zero-copy results** — [`par_map`] writes each result directly
//!    into its final slot in the preallocated output's spare capacity
//!    (disjoint indices, one writer per slot), and [`par_sort_unstable`]
//!    sorts chunk views in place and merges runs with a single-output
//!    tournament (loser-tree) k-way move-merge. Nothing is cloned and
//!    nothing is copied twice.
//!
//! Determinism is structural: every morsel knows its output range, the
//! merge resolves ties by run index, and the work estimate depends only
//! on the input — so results are byte-identical at any thread count.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Cached handles into the global metrics registry for the pool.
///
/// All `par.pool.*` metrics describe *scheduling* — how work was split
/// and stolen — which depends on the worker count and OS timing. They
/// are explicitly excluded from the thread-count-invariance contract
/// (the sequential fast path records nothing at all). Workers
/// accumulate locally and flush once per job, never per item.
struct PoolMetrics {
    maps: v6obs::Counter,
    chunks: v6obs::Counter,
    steals: v6obs::Counter,
    threads: v6obs::Gauge,
    chunk_latency: v6obs::Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        maps: v6obs::counter("par.pool.maps"),
        chunks: v6obs::counter("par.pool.chunks"),
        steals: v6obs::counter("par.pool.steals"),
        threads: v6obs::gauge("par.pool.threads"),
        chunk_latency: v6obs::histogram("par.pool.chunk_latency"),
    })
}

/// Records a cutoff decision under `par.cutoff.<label>.{inline,parallel}`.
///
/// Only recorded when a real choice existed (`threads > 1`); the
/// zero-machinery single-thread path touches no metrics at all. Once
/// per call, off the hot path.
fn record_cutoff(label: Option<&'static str>, parallel: bool) {
    let which = if parallel { "parallel" } else { "inline" };
    let site = label.unwrap_or("unlabeled");
    v6obs::counter(&format!("par.cutoff.{site}.{which}")).inc();
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Work below this estimate runs inline on the caller: dispatching even
/// one helper costs a queue push plus an unpark, which only pays for
/// itself above roughly this much work.
pub const SEQ_CUTOFF_NANOS: u64 = 100_000;

/// Target work per morsel. Small enough that stealing rebalances skew,
/// large enough that the claim `fetch_add` and two clock reads are
/// noise (< 0.5% at 50µs).
pub const MORSEL_TARGET_NANOS: u64 = 50_000;

/// A caller-supplied estimate of per-item work, used by the adaptive
/// sequential/parallel cutoff and to size morsels.
///
/// The hint only steers *scheduling* — a wrong hint can cost speed,
/// never correctness, and the chosen schedule is a pure function of the
/// input so results stay thread-count invariant either way.
#[derive(Debug, Clone, Copy)]
pub struct Cost {
    per_item_ns: u64,
    label: Option<&'static str>,
}

impl Cost {
    /// Default per-item estimate when the caller gives no hint:
    /// a light closure over a small item (hash + a few branches).
    pub const DEFAULT_PER_ITEM_NS: u64 = 200;

    /// A cost hint of `ns` nanoseconds per item (clamped to ≥ 1).
    pub fn per_item_ns(ns: u64) -> Cost {
        Cost {
            per_item_ns: ns.max(1),
            label: None,
        }
    }

    /// Tags the call site so its cutoff decisions show up as
    /// `par.cutoff.<label>.{inline,parallel}` counters.
    pub fn labeled(mut self, label: &'static str) -> Cost {
        self.label = Some(label);
        self
    }
}

impl Default for Cost {
    fn default() -> Cost {
        Cost::per_item_ns(Cost::DEFAULT_PER_ITEM_NS)
    }
}

/// The morsel/participant plan for one parallel call: `None` means run
/// inline (and carries whether a cutoff decision should be recorded).
fn plan(threads: usize, n: usize, cost: Cost) -> Option<(usize, usize)> {
    let threads = threads.max(1);
    if threads == 1 || n < 2 {
        return None; // zero-machinery path: not even a metrics touch
    }
    let estimate = (n as u64).saturating_mul(cost.per_item_ns);
    let morsels = ((estimate / MORSEL_TARGET_NANOS) as usize).clamp(1, n);
    if estimate < SEQ_CUTOFF_NANOS || morsels < 2 {
        record_cutoff(cost.label, false);
        return None;
    }
    record_cutoff(cost.label, true);
    Some((morsels, threads.min(morsels)))
}

// ---------------------------------------------------------------------------
// Range splitting
// ---------------------------------------------------------------------------

/// Splits `0..len` into `parts` near-equal contiguous ranges (the first
/// `len % parts` ranges get one extra element). Empty ranges are never
/// produced; fewer than `parts` ranges come back when `len < parts`.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(lo..lo + size);
        lo += size;
    }
    out
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// Hard ceiling on pool threads, far above any sane `V6_THREADS`.
const MAX_POOL_THREADS: usize = 256;

/// One job, living on the submitting caller's stack for the duration of
/// [`Pool::run_job`]. Workers reach it through a raw pointer; validity
/// is guaranteed because the caller does not return until `queued` and
/// `active` are both zero.
struct JobCore {
    /// Type-erased `&F` where `F: Fn() + Sync`.
    data: *const (),
    /// Monomorphized trampoline that calls the closure behind `data`.
    call: unsafe fn(*const ()),
    /// Queue entries for this job not yet picked up by a worker.
    queued: AtomicUsize,
    /// Workers currently executing the job body.
    active: AtomicUsize,
    /// The submitting thread, unparked when the job fully drains.
    waiter: std::thread::Thread,
    /// First panic payload captured from a worker, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

/// A queue entry pointing at a [`JobCore`] on some caller's stack.
#[derive(Clone, Copy)]
struct JobRef(*const JobCore);

// SAFETY: a JobRef only crosses threads through the pool queue, and the
// JobCore it points to is kept alive by the submitting caller until the
// queued/active counts — which every queue pop participates in — reach
// zero. The pointee is only used via &-references to Sync fields.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

struct Pool {
    /// Jobs awaiting pickup. One entry per requested helper.
    queue: Mutex<VecDeque<JobRef>>,
    /// Wakes parked workers when entries are pushed.
    work_cv: Condvar,
    /// OS threads spawned so far; grows monotonically, never shrinks.
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// OS worker threads the global pool has spawned so far in this process.
///
/// Zero until the first call that crosses the parallel cutoff — the
/// single-thread path never touches the pool. The count only grows
/// (workers park between jobs; they are never joined), and only up to
/// the largest helper count any call has asked for, so steady-state
/// reuse spawns nothing. Exposed for tests and diagnostics; mirrored as
/// the `par.pool.threads` gauge.
pub fn pool_threads_spawned() -> usize {
    // `pool()` lazily constructs an empty Pool, which spawns nothing, so
    // touching it here is observationally free.
    pool().spawned.load(Ordering::Acquire)
}

#[allow(unsafe_code)]
fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = pool.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: the queue entry we just popped is counted in `queued`,
        // so the submitting caller is still blocked in `run_job` and the
        // JobCore (and the closure behind it) is alive. We bump `active`
        // *before* releasing our `queued` hold so the caller can never
        // observe the job as drained while we are touching it.
        let core = unsafe { &*job.0 };
        core.active.fetch_add(1, Ordering::AcqRel);
        core.queued.fetch_sub(1, Ordering::AcqRel);
        // SAFETY: `data`/`call` were erased from a live `&F` by `run_job`.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (core.call)(core.data) }));
        if let Err(payload) = result {
            let mut slot = core.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // Clone the waiter handle while `active` still pins the job: after
        // the fetch_sub below the caller may free the JobCore at any time,
        // so from there on we touch only our own clone.
        let waiter = core.waiter.clone();
        let queued = core.queued.load(Ordering::Acquire);
        if core.active.fetch_sub(1, Ordering::AcqRel) == 1 && queued == 0 {
            waiter.unpark();
        }
    }
}

impl Pool {
    /// Runs `body` on the caller plus up to `helpers` pool workers, all
    /// draining the same closure (jobs are self-scheduling: the body is
    /// a claim-a-morsel loop, so running it on fewer threads — or even
    /// twice on one — is harmless). Blocks until every participant is
    /// done; propagates the first panic without poisoning the pool.
    #[allow(unsafe_code)]
    fn run_job<F: Fn() + Sync>(&'static self, helpers: usize, body: &F) {
        let helpers = helpers.min(MAX_POOL_THREADS);
        if helpers == 0 {
            body();
            return;
        }
        unsafe fn trampoline<F: Fn() + Sync>(data: *const ()) {
            // SAFETY: `data` is the `&F` erased in `run_job` below, alive
            // until run_job returns.
            unsafe { (*(data as *const F))() }
        }
        let core = JobCore {
            data: body as *const F as *const (),
            call: trampoline::<F>,
            queued: AtomicUsize::new(helpers),
            active: AtomicUsize::new(0),
            waiter: std::thread::current(),
            panic: Mutex::new(None),
        };
        let core_ptr: *const JobCore = &core;
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Deterministic growth: spawn exactly enough workers to cover
            // the largest helper count ever requested, under the queue
            // lock so the spawn counter is exact.
            while self.spawned.load(Ordering::Acquire) < helpers {
                std::thread::Builder::new()
                    .name("v6par-worker".into())
                    .spawn(move || worker_loop(pool()))
                    .expect("spawn v6par pool worker");
                let now = self.spawned.fetch_add(1, Ordering::AcqRel) + 1;
                pool_metrics().threads.set(now as i64);
            }
            for _ in 0..helpers {
                q.push_back(JobRef(core_ptr));
            }
        }
        if helpers == 1 {
            self.work_cv.notify_one();
        } else {
            self.work_cv.notify_all();
        }

        // The caller always participates: even with every worker busy on
        // other jobs, the submitting thread drains its own morsels, so
        // nested jobs and a saturated pool cannot deadlock.
        let caller_result = catch_unwind(AssertUnwindSafe(body));

        // Cancel entries no worker picked up — common when the caller
        // finished the whole job alone — so stale JobRefs never outlive
        // this frame.
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            let before = q.len();
            q.retain(|j| !std::ptr::eq(j.0, core_ptr));
            let removed = before - q.len();
            if removed > 0 {
                core.queued.fetch_sub(removed, Ordering::AcqRel);
            }
        }
        // Wait for in-flight workers. The Acquire loads pair with the
        // workers' AcqRel count updates, which also publish every result
        // the workers wrote through shared pointers. The timeout is a
        // belt-and-braces guard against a lost unpark; the common path
        // parks at most once.
        while core.queued.load(Ordering::Acquire) != 0 || core.active.load(Ordering::Acquire) != 0 {
            std::thread::park_timeout(Duration::from_millis(10));
        }
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        let worker_panic = core.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

/// A raw base pointer that workers write through.
///
/// Safety rests with index distribution, not with this type: every
/// index is claimed by exactly one participant (the atomic morsel
/// cursor), so accesses through the pointer never alias.
struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    /// The slot at `i`. Going through a method (rather than field
    /// access) makes closures capture the whole `SendPtr` — keeping its
    /// `Send`/`Sync` impls, not the raw pointer's lack of them.
    fn at(&self, i: usize) -> *mut T {
        // SAFETY note for callers: `wrapping_add` does no deref; the
        // unsafe read/write happens at the use site.
        self.0.wrapping_add(i)
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: see the type-level comment — disjointness is enforced by the
// single atomic cursor every participant claims indices from.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SendPtr<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Per-participant scheduling tallies, accumulated in locals during the
/// morsel loop and flushed to the registry once per job.
struct MorselStats {
    claimed: u64,
    latencies_ns: Vec<u64>,
}

impl MorselStats {
    fn new() -> MorselStats {
        MorselStats {
            claimed: 0,
            latencies_ns: Vec::new(),
        }
    }

    /// Flushes to `par.pool.*`. `share` is the participant's statically
    /// owned morsel count — claims beyond it are steals (claims up to it
    /// are not: a perfectly balanced run records zero steals).
    fn flush(self, share: u64) {
        if self.claimed == 0 {
            return;
        }
        let metrics = pool_metrics();
        metrics.steals.add(self.claimed.saturating_sub(share));
        for ns in self.latencies_ns {
            metrics.chunk_latency.record(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// par_map / par_for_each_mut / par_chunks_fold
// ---------------------------------------------------------------------------

/// Order-preserving parallel map: `out[i] == f(i, &items[i])` for every
/// `i`, regardless of `threads`. Uses the default [`Cost`] hint; see
/// [`par_map_cost`] to pass a real one.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_cost(threads, items, Cost::default(), f)
}

/// [`par_map`] with an explicit per-item [`Cost`] hint.
///
/// Below the work cutoff this is a plain sequential map with no thread
/// machinery at all. Above it, participants claim fixed-cost morsels
/// off a shared cursor and write each result straight into its final
/// slot in the output's spare capacity — no per-chunk buffers, no
/// result re-copy, no locks on the data path.
///
/// If `f` panics the panic propagates to the caller; results already
/// written are leaked (not dropped), never double-dropped.
#[allow(unsafe_code)]
pub fn par_map_cost<T, R, F>(threads: usize, items: &[T], cost: Cost, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let Some((morsels, participants)) = plan(threads, n, cost) else {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    };
    let metrics = pool_metrics();
    metrics.maps.inc();
    metrics.chunks.add(morsels as u64);
    let ranges = split_ranges(n, morsels);
    let share = ranges.len().div_ceil(participants) as u64;
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<R> = Vec::with_capacity(n);
    let out_base = SendPtr(out.as_mut_ptr());
    let body = || {
        let mut stats = MorselStats::new();
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(range) = ranges.get(c) else { break };
            stats.claimed += 1;
            let t0 = Instant::now();
            for i in range.clone() {
                let value = f(i, &items[i]);
                // SAFETY: `i` lies in a morsel this participant claimed
                // exclusively and `out` has capacity `n`, so this writes
                // a distinct, in-bounds, uninitialized slot.
                unsafe { out_base.at(i).write(value) };
            }
            stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
        }
        stats.flush(share);
    };
    pool().run_job(participants - 1, &body);
    // SAFETY: run_job returned without unwinding, so every morsel ran to
    // completion and all `n` slots are initialized. (On panic we never
    // get here: `out` drops with len 0 and written results leak.)
    unsafe { out.set_len(n) };
    out
}

/// In-place parallel mutation: `f(i, &mut items[i])` for every `i`,
/// each item visited exactly once. The workhorse behind the in-place
/// chunk sorts; exposed because callers with their own buffers (e.g.
/// per-shard runs in `v6serve`) want the same no-copy treatment.
#[allow(unsafe_code)]
pub fn par_for_each_mut<T, F>(threads: usize, items: &mut [T], cost: Cost, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let Some((morsels, participants)) = plan(threads, n, cost) else {
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    };
    let metrics = pool_metrics();
    metrics.maps.inc();
    metrics.chunks.add(morsels as u64);
    let ranges = split_ranges(n, morsels);
    let share = ranges.len().div_ceil(participants) as u64;
    let cursor = AtomicUsize::new(0);
    let base = SendPtr(items.as_mut_ptr());
    let body = || {
        let mut stats = MorselStats::new();
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(range) = ranges.get(c) else { break };
            stats.claimed += 1;
            let t0 = Instant::now();
            for i in range.clone() {
                // SAFETY: `i` lies in a morsel this participant claimed
                // exclusively, so no other reference to `items[i]` exists.
                f(i, unsafe { &mut *base.at(i) });
            }
            stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
        }
        stats.flush(share);
    };
    pool().run_job(participants - 1, &body);
}

/// Folds `chunks` disjoint contiguous chunks of `items` in parallel and
/// returns the per-chunk accumulators **in chunk order**. Default
/// [`Cost`] hint; see [`par_chunks_fold_cost`].
pub fn par_chunks_fold<T, A, I, F>(
    threads: usize,
    items: &[T],
    chunks: usize,
    init: I,
    fold: F,
) -> Vec<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
{
    par_chunks_fold_cost(threads, items, chunks, Cost::default(), init, fold)
}

/// [`par_chunks_fold`] with an explicit per-item [`Cost`] hint.
///
/// The caller owns the cross-chunk merge; as long as that merge is
/// exact (integer sums, ordered concatenation, stable run merges), the
/// combined result is independent of both `threads` and `chunks`.
pub fn par_chunks_fold_cost<T, A, I, F>(
    threads: usize,
    items: &[T],
    chunks: usize,
    cost: Cost,
    init: I,
    fold: F,
) -> Vec<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
{
    let ranges = split_ranges(items.len(), chunks);
    let per_range = cost
        .per_item_ns
        .saturating_mul((items.len() / ranges.len().max(1)).max(1) as u64);
    let range_cost = Cost {
        per_item_ns: per_range,
        label: cost.label,
    };
    par_map_cost(threads, &ranges, range_cost, |_, range| {
        range.clone().fold(init(), |acc, i| fold(acc, i, &items[i]))
    })
}

// ---------------------------------------------------------------------------
// Sorting and merging
// ---------------------------------------------------------------------------

/// Stable two-way merge of sorted runs: on ties, `a`'s element comes
/// first.
pub fn merge_sorted_pair<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if b[j] < a[i] {
            out.push(b[j].clone());
            j += 1;
        } else {
            out.push(a[i].clone());
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sentinel for an exhausted run in the tournament tree.
const EXHAUSTED: usize = usize::MAX;

/// A winner (loser-tree style) tournament over `k` runs: the root holds
/// the run with the smallest current head, ties won by the lower run
/// index (lower indices sit in left subtrees, and `play` keeps the left
/// winner on ties). Replacing one head re-plays only its leaf-to-root
/// path: `O(log k)` comparisons per merged element.
struct Tournament {
    leaves: usize,
    tree: Vec<usize>,
}

impl Tournament {
    /// Builds the tree. `alive(j)` says whether run `j` has a head;
    /// `less(a, b)` compares the heads of two alive runs.
    fn new(
        k: usize,
        alive: impl Fn(usize) -> bool,
        less: impl Fn(usize, usize) -> bool,
    ) -> Tournament {
        let leaves = k.next_power_of_two().max(1);
        let mut tree = vec![EXHAUSTED; 2 * leaves];
        for (j, slot) in tree[leaves..leaves + k].iter_mut().enumerate() {
            if alive(j) {
                *slot = j;
            }
        }
        let mut t = Tournament { leaves, tree };
        for i in (1..leaves).rev() {
            t.tree[i] = play(t.tree[2 * i], t.tree[2 * i + 1], &less);
        }
        t
    }

    /// The run holding the smallest head, or [`EXHAUSTED`].
    fn winner(&self) -> usize {
        self.tree[1]
    }

    /// Re-plays run `j`'s leaf-to-root path after its head changed.
    fn refresh(&mut self, j: usize, alive: bool, less: impl Fn(usize, usize) -> bool) {
        let mut i = self.leaves + j;
        self.tree[i] = if alive { j } else { EXHAUSTED };
        while i > 1 {
            i /= 2;
            self.tree[i] = play(self.tree[2 * i], self.tree[2 * i + 1], &less);
        }
    }
}

/// One tournament match; exhausted runs lose to everything, ties go to
/// the left (lower-indexed) contender.
fn play(a: usize, b: usize, less: &impl Fn(usize, usize) -> bool) -> usize {
    if a == EXHAUSTED {
        return b;
    }
    if b == EXHAUSTED {
        return a;
    }
    if less(b, a) {
        b
    } else {
        a
    }
}

/// Stable k-way merge of sorted runs into one vector, without cloning:
/// elements are *moved* out of the runs through a single-output-buffer
/// tournament merge. Ties always resolve in favor of the
/// earlier-indexed run, exactly as a sequential stable merge of the
/// concatenated runs would, so equal multisets of runs merge to
/// identical vectors.
///
/// The `threads` argument is accepted for call-site symmetry with the
/// other kernels but unused: a single merge pass is memory-bound and
/// `O(n log k)`, and measured slower when split into parallel
/// sub-merges that re-touch every element.
pub fn par_merge_sorted<T: Ord>(threads: usize, runs: Vec<Vec<T>>) -> Vec<T> {
    let _ = threads;
    let total = runs.iter().map(Vec::len).sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<T>> = iters.iter_mut().map(Iterator::next).collect();
    let k = heads.len();
    let mut t = Tournament::new(k, |j| heads[j].is_some(), |a, b| heads[a] < heads[b]);
    loop {
        let w = t.winner();
        if w == EXHAUSTED {
            break;
        }
        let value = heads[w].take().expect("winning run has a head");
        heads[w] = iters[w].next();
        let alive = heads[w].is_some();
        out.push(value);
        t.refresh(w, alive, |a, b| heads[a] < heads[b]);
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Extra bar for parallel sorting over [`SEQ_CUTOFF_NANOS`]: the k-way
/// merge re-moves every element once, so chunked sorting must save more
/// than a full extra pass before it pays.
const SORT_SEQ_CUTOFF_NANOS: u64 = 8 * SEQ_CUTOFF_NANOS;

/// Calibrated per-element sort cost (comparison-heavy, cache-missing)
/// used by [`par_sort_unstable`]'s cutoff.
const SORT_ITEM_NS: u64 = 60;

/// Sorts `data` via in-place parallel chunk sorts plus one tournament
/// move-merge into a single fresh buffer. No `Clone`: elements are
/// sorted where they lie and moved exactly once.
///
/// For element types whose equal values are indistinguishable (plain
/// `Ord` data like integers and tuples of integers — everything the
/// pipeline sorts), the result is byte-identical to
/// `data.sort_unstable()` at any thread count.
///
/// If a comparison panics mid-merge, the elements in flight are leaked
/// (never double-dropped) and `data` is left empty.
pub fn par_sort_unstable<T>(threads: usize, data: &mut Vec<T>)
where
    T: Ord + Send,
{
    let n = data.len();
    let threads = threads.max(1);
    if threads == 1 || n < 2 {
        data.sort_unstable();
        return;
    }
    let estimate = (n as u64).saturating_mul(SORT_ITEM_NS);
    if estimate < SORT_SEQ_CUTOFF_NANOS {
        record_cutoff(Some("sort"), false);
        data.sort_unstable();
        return;
    }
    record_cutoff(Some("sort"), true);
    let parts = threads
        .min(((estimate / SORT_SEQ_CUTOFF_NANOS) as usize).max(2))
        .min(n);
    let ranges = split_ranges(n, parts);
    // Disjoint in-place chunk views via repeated split_at_mut — safe
    // code; the parallel distribution happens one level down.
    let mut views: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [T] = data.as_mut_slice();
    for r in &ranges[..ranges.len() - 1] {
        let (head, tail) = rest.split_at_mut(r.len());
        views.push(head);
        rest = tail;
    }
    views.push(rest);
    let per_view = estimate / ranges.len() as u64;
    par_for_each_mut(
        threads,
        &mut views,
        Cost::per_item_ns(per_view).labeled("sort.chunk"),
        |_, view| view.sort_unstable(),
    );
    merge_runs_in_place(data, &ranges);
}

/// Move-merges `ranges.len()` sorted contiguous runs of `data` into a
/// fresh buffer with one tournament pass, then replaces `data` with it.
/// Shared with the radix kernel (`radix.rs`), which sorts the runs by
/// other means but merges them identically.
#[allow(unsafe_code)]
pub(crate) fn merge_runs_in_place<T: Ord>(data: &mut Vec<T>, ranges: &[Range<usize>]) {
    struct RunCursor {
        next: usize,
        end: usize,
    }
    let n = data.len();
    let base = data.as_mut_ptr();
    let mut out: Vec<T> = Vec::with_capacity(n);
    let out_base = out.as_mut_ptr();
    // Logically move every element out of `data` now: from here on the
    // old buffer is uninitialized storage whose slots are each read
    // exactly once. A panicking comparison leaks, never double-drops.
    // SAFETY: shrinking the length only forgets elements.
    unsafe { data.set_len(0) };
    let mut runs: Vec<RunCursor> = ranges
        .iter()
        .map(|r| RunCursor {
            next: r.start,
            end: r.end,
        })
        .collect();
    let k = runs.len();
    // SAFETY (both closures below): only called for alive runs, whose
    // `next` is in-bounds and not yet moved out.
    let mut t = Tournament::new(
        k,
        |j| runs[j].next < runs[j].end,
        |a, b| unsafe { *base.add(runs[a].next) < *base.add(runs[b].next) },
    );
    let mut written = 0usize;
    loop {
        let w = t.winner();
        if w == EXHAUSTED {
            break;
        }
        // SAFETY: slot `runs[w].next` is alive (tournament invariant) and
        // read exactly once; slot `written` of `out` is in-capacity and
        // unwritten. Both are plain moves.
        unsafe {
            let value = std::ptr::read(base.add(runs[w].next));
            std::ptr::write(out_base.add(written), value);
        }
        runs[w].next += 1;
        written += 1;
        let alive = runs[w].next < runs[w].end;
        t.refresh(w, alive, |a, b| unsafe {
            *base.add(runs[a].next) < *base.add(runs[b].next)
        });
    }
    debug_assert_eq!(written, n);
    // SAFETY: the tournament drained all k runs, so exactly `n` moved
    // elements now sit in `out`'s first `n` slots.
    unsafe { out.set_len(written) };
    *data = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..999).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(threads, &items, |i, x| {
                assert_eq!(items[i], *x);
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_unbalanced_work() {
        assert!(par_map(4, &[] as &[u8], |_, x| *x).is_empty());
        // Skewed cost: later items much more expensive; stealing must
        // still return them in order. The large hint forces the
        // parallel path despite the small item count.
        let items: Vec<usize> = (0..64).collect();
        let got = par_map_cost(8, &items, Cost::per_item_ns(60_000), |_, &x| {
            let mut acc = 0u64;
            for k in 0..(x as u64 * 1000) {
                acc = acc.wrapping_add(k);
            }
            (x, acc)
        });
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(i, *x);
        }
    }

    #[test]
    fn par_map_cost_cutoff_stays_inline_but_exact() {
        // Cheap hint: must take the inline path (observable only through
        // the result being exact; the scheduling metrics are process
        // global and not assertable here).
        let items: Vec<u32> = (0..10_000).collect();
        let got = par_map_cost(8, &items, Cost::per_item_ns(1), |_, &x| x ^ 0xabcd);
        let expect: Vec<u32> = items.iter().map(|&x| x ^ 0xabcd).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_for_each_mut_visits_every_item_once() {
        for (threads, per_item) in [(1usize, 1u64), (4, 1), (4, 80_000), (64, 80_000)] {
            let mut items: Vec<u64> = (0..257).collect();
            par_for_each_mut(threads, &mut items, Cost::per_item_ns(per_item), |i, x| {
                assert_eq!(i as u64, *x);
                *x = x.wrapping_mul(7) + 1;
            });
            let expect: Vec<u64> = (0..257u64).map(|x| x.wrapping_mul(7) + 1).collect();
            assert_eq!(items, expect, "threads={threads} per_item={per_item}");
        }
    }

    #[test]
    fn par_chunks_fold_sums_exactly() {
        let items: Vec<u64> = (0..10_001).collect();
        let expect: u64 = items.iter().sum();
        for (threads, chunks) in [(1, 1), (2, 5), (8, 3), (4, 100)] {
            let parts = par_chunks_fold(threads, &items, chunks, || 0u64, |acc, _, x| acc + x);
            assert_eq!(parts.iter().sum::<u64>(), expect);
            assert_eq!(parts.len(), chunks.min(items.len()));
        }
    }

    #[test]
    fn merge_pair_is_stable() {
        let a = [(1, 'a'), (3, 'a')];
        let b = [(1, 'b'), (2, 'b')];
        // Only the first element participates in Ord for this check.
        let merged = merge_sorted_pair(
            &a.iter().map(|x| x.0).collect::<Vec<_>>(),
            &b.iter().map(|x| x.0).collect::<Vec<_>>(),
        );
        assert_eq!(merged, vec![1, 1, 2, 3]);
    }

    #[test]
    fn par_merge_equals_global_sort() {
        let runs: Vec<Vec<u32>> = vec![vec![1, 5, 9], vec![], vec![2, 2, 2], vec![0, 10], vec![3]];
        let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        for threads in [1, 2, 8] {
            assert_eq!(par_merge_sorted(threads, runs.clone()), expect);
        }
        assert!(par_merge_sorted(4, Vec::<Vec<u32>>::new()).is_empty());
    }

    #[test]
    fn par_merge_is_stable_across_runs_without_clone() {
        // Keys collide across runs; payloads don't participate in Ord.
        // Earlier runs must win ties — and the element type is not Clone.
        #[derive(Debug, PartialEq, Eq)]
        struct NoClone(u32, &'static str);
        impl PartialOrd for NoClone {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for NoClone {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }
        let runs = vec![
            vec![NoClone(1, "a"), NoClone(4, "a")],
            vec![NoClone(1, "b"), NoClone(2, "b")],
            vec![NoClone(1, "c")],
        ];
        let merged = par_merge_sorted(3, runs);
        let tags: Vec<&str> = merged.iter().map(|x| x.1).collect();
        assert_eq!(tags, vec!["a", "b", "c", "b", "a"]);
    }

    #[test]
    fn par_sort_matches_sequential() {
        let mut data: Vec<(u128, u64)> = (0..40_000u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
                ((h as u128) << 3 | (i % 5) as u128, h ^ i)
            })
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        for threads in [1, 2, 3, 8] {
            let mut got = data.clone();
            par_sort_unstable(threads, &mut got);
            assert_eq!(got, expect, "threads={threads}");
        }
        par_sort_unstable(4, &mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn par_sort_handles_non_clone_elements() {
        #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
        struct Key(u64);
        let mut data: Vec<Key> = (0..50_000u64)
            .map(|i| Key(i.wrapping_mul(0x2545_f491_4f6c_dd1d)))
            .collect();
        let mut expect: Vec<u64> = data.iter().map(|k| k.0).collect();
        expect.sort_unstable();
        par_sort_unstable(4, &mut data);
        let got: Vec<u64> = data.iter().map(|k| k.0).collect();
        assert_eq!(got, expect);
    }
}
