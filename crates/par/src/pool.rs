//! The work-stealing primitives.
//!
//! The pool is created per call inside [`std::thread::scope`]: workers
//! share an atomic chunk cursor, and an idle worker "steals" the next
//! unclaimed chunk with one `fetch_add`. That keeps the load balanced
//! under skewed chunk costs (the whole point of stealing) without any
//! per-worker deques — and, because every chunk knows its output
//! position, without any effect on the result order.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cached handles into the global metrics registry for the pool.
///
/// All `par.pool.*` metrics describe *scheduling* — how work was split
/// and stolen — which depends on the worker count and OS timing. They
/// are explicitly excluded from the thread-count-invariance contract
/// (the sequential fast path records nothing at all).
struct PoolMetrics {
    maps: v6obs::Counter,
    chunks: v6obs::Counter,
    steals: v6obs::Counter,
    chunk_latency: v6obs::Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        maps: v6obs::counter("par.pool.maps"),
        chunks: v6obs::counter("par.pool.chunks"),
        steals: v6obs::counter("par.pool.steals"),
        chunk_latency: v6obs::histogram("par.pool.chunk_latency"),
    })
}

/// Splits `0..len` into `parts` near-equal contiguous ranges (the first
/// `len % parts` ranges get one extra element). Empty ranges are never
/// produced; fewer than `parts` ranges come back when `len < parts`.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(lo..lo + size);
        lo += size;
    }
    out
}

/// Order-preserving parallel map: `out[i] == f(i, &items[i])` for every
/// `i`, regardless of `threads`.
///
/// Items are grouped into chunks; `threads` scoped workers steal chunks
/// off a shared cursor until none remain. With `threads <= 1` (or a
/// single item) this degenerates to a plain sequential map with no
/// thread machinery at all.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    // ~4 chunks per worker: coarse enough to amortize the cursor, fine
    // enough that stealing rebalances skewed chunk costs.
    let chunks = split_ranges(n, workers * 4);
    let metrics = pool_metrics();
    metrics.maps.inc();
    metrics.chunks.add(chunks.len() as u64);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Vec<R>>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut claimed = 0u64;
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = chunks.get(c) else {
                        // Every claim past a worker's first is a "steal":
                        // work another worker could have owned under a
                        // static 1-chunk-per-worker split.
                        metrics.steals.add(claimed.saturating_sub(1));
                        break;
                    };
                    claimed += 1;
                    let out: Vec<R> = metrics
                        .chunk_latency
                        .time(|| range.clone().map(|i| f(i, &items[i])).collect());
                    *slots[c].lock().expect("worker poisoned a result slot") = Some(out);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(
            slot.into_inner()
                .expect("worker poisoned a result slot")
                .expect("every chunk was claimed exactly once"),
        );
    }
    out
}

/// Folds `chunks` disjoint contiguous chunks of `items` in parallel and
/// returns the per-chunk accumulators **in chunk order**.
///
/// The caller owns the cross-chunk merge; as long as that merge is
/// exact (integer sums, ordered concatenation, stable run merges), the
/// combined result is independent of both `threads` and `chunks`.
pub fn par_chunks_fold<T, A, I, F>(
    threads: usize,
    items: &[T],
    chunks: usize,
    init: I,
    fold: F,
) -> Vec<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
{
    let ranges = split_ranges(items.len(), chunks);
    par_map(threads, &ranges, |_, range| {
        range.clone().fold(init(), |acc, i| fold(acc, i, &items[i]))
    })
}

/// Stable two-way merge of sorted runs: on ties, `a`'s element comes
/// first.
pub fn merge_sorted_pair<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if b[j] < a[i] {
            out.push(b[j].clone());
            j += 1;
        } else {
            out.push(a[i].clone());
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Stable k-way merge of sorted runs, parallelized as a merge tree.
///
/// Rounds merge runs pairwise — `(0,1), (2,3), …` with any odd run
/// passing through — so ties always resolve in favor of the
/// earlier-indexed run, exactly as a sequential stable merge of the
/// concatenated runs would. Equal multisets of runs therefore merge to
/// identical vectors at any thread count.
pub fn par_merge_sorted<T>(threads: usize, mut runs: Vec<Vec<T>>) -> Vec<T>
where
    T: Ord + Clone + Send + Sync,
{
    runs.retain(|r| !r.is_empty());
    if runs.is_empty() {
        return Vec::new();
    }
    while runs.len() > 1 {
        let leftover = if runs.len() % 2 == 1 {
            runs.pop()
        } else {
            None
        };
        let pairs: Vec<usize> = (0..runs.len() / 2).collect();
        let mut merged = par_map(threads, &pairs, |_, &k| {
            merge_sorted_pair(&runs[2 * k], &runs[2 * k + 1])
        });
        if let Some(l) = leftover {
            merged.push(l);
        }
        runs = merged;
    }
    runs.pop().expect("at least one non-empty run remains")
}

/// Sorts `data` via chunked parallel sorts plus a stable merge tree.
///
/// For element types whose equal values are indistinguishable (plain
/// `Ord` data like integers and tuples of integers — everything the
/// pipeline sorts), the result is byte-identical to
/// `data.sort_unstable()` at any thread count.
pub fn par_sort_unstable<T>(threads: usize, data: &mut Vec<T>)
where
    T: Ord + Clone + Send + Sync,
{
    // Below this, the merge-tree copies cost more than they save.
    const MIN_PARALLEL_LEN: usize = 16 * 1024;
    if threads <= 1 || data.len() < MIN_PARALLEL_LEN {
        data.sort_unstable();
        return;
    }
    let n = data.len();
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    for range in split_ranges(n, threads) {
        chunks.push(data[range].to_vec());
    }
    data.clear();
    std::thread::scope(|s| {
        for chunk in chunks.iter_mut() {
            s.spawn(move || chunk.sort_unstable());
        }
    });
    *data = par_merge_sorted(threads, chunks);
    debug_assert_eq!(data.len(), n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..999).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(threads, &items, |i, x| {
                assert_eq!(items[i], *x);
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_unbalanced_work() {
        assert!(par_map(4, &[] as &[u8], |_, x| *x).is_empty());
        // Skewed cost: later items much more expensive; stealing must
        // still return them in order.
        let items: Vec<usize> = (0..64).collect();
        let got = par_map(8, &items, |_, &x| {
            let mut acc = 0u64;
            for k in 0..(x as u64 * 1000) {
                acc = acc.wrapping_add(k);
            }
            (x, acc)
        });
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(i, *x);
        }
    }

    #[test]
    fn par_chunks_fold_sums_exactly() {
        let items: Vec<u64> = (0..10_001).collect();
        let expect: u64 = items.iter().sum();
        for (threads, chunks) in [(1, 1), (2, 5), (8, 3), (4, 100)] {
            let parts = par_chunks_fold(threads, &items, chunks, || 0u64, |acc, _, x| acc + x);
            assert_eq!(parts.iter().sum::<u64>(), expect);
            assert_eq!(parts.len(), chunks.min(items.len()));
        }
    }

    #[test]
    fn merge_pair_is_stable() {
        let a = [(1, 'a'), (3, 'a')];
        let b = [(1, 'b'), (2, 'b')];
        // Only the first element participates in Ord for this check.
        let merged = merge_sorted_pair(
            &a.iter().map(|x| x.0).collect::<Vec<_>>(),
            &b.iter().map(|x| x.0).collect::<Vec<_>>(),
        );
        assert_eq!(merged, vec![1, 1, 2, 3]);
    }

    #[test]
    fn par_merge_equals_global_sort() {
        let runs: Vec<Vec<u32>> = vec![vec![1, 5, 9], vec![], vec![2, 2, 2], vec![0, 10], vec![3]];
        let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        for threads in [1, 2, 8] {
            assert_eq!(par_merge_sorted(threads, runs.clone()), expect);
        }
    }

    #[test]
    fn par_sort_matches_sequential() {
        let mut data: Vec<(u128, u64)> = (0..40_000u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
                ((h as u128) << 3 | (i % 5) as u128, h ^ i)
            })
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        for threads in [1, 2, 3, 8] {
            let mut got = data.clone();
            par_sort_unstable(threads, &mut got);
            assert_eq!(got, expect, "threads={threads}");
        }
        par_sort_unstable(4, &mut data);
        assert_eq!(data, expect);
    }
}
