//! Lifecycle contract of the persistent worker pool.
//!
//! This file must stay a single-test binary: the pool (and its spawn
//! counter) is global to the process, so the phases below only mean
//! something when they run in a controlled order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use v6par::{par_map, par_map_cost, pool_threads_spawned, Cost};

/// A hint far above the cutoff, so every call below commits to the
/// parallel path regardless of item count.
const HEAVY: u64 = 1_000_000;

#[test]
fn pool_spawns_once_survives_panics_and_serves_concurrent_callers() {
    // Phase 1 — zero-machinery path: single-thread calls and calls
    // below the work cutoff never touch the pool.
    let items: Vec<u64> = (0..512).collect();
    let seq: Vec<u64> = par_map(1, &items, |_, &x| x + 1);
    assert_eq!(seq[511], 512);
    let tiny: Vec<u64> = par_map_cost(8, &items[..4], Cost::per_item_ns(1), |_, &x| x + 1);
    assert_eq!(tiny, vec![1, 2, 3, 4]);
    assert_eq!(
        pool_threads_spawned(),
        0,
        "sequential/inline calls must not spawn pool threads"
    );

    // Phase 2 — first parallel job lazily spawns exactly the helpers it
    // needs: 4 participants = the caller plus 3 pool workers.
    let par: Vec<u64> = par_map_cost(4, &items, Cost::per_item_ns(HEAVY), |_, &x| x * 2);
    assert_eq!(par, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    assert_eq!(
        pool_threads_spawned(),
        3,
        "4 participants need exactly 3 spawned helpers"
    );

    // Phase 3 — reuse: further jobs at the same width spawn nothing.
    for round in 0..20u64 {
        let got: Vec<u64> = par_map_cost(4, &items, Cost::per_item_ns(HEAVY), |_, &x| x + round);
        assert_eq!(got[0], round);
    }
    assert_eq!(
        pool_threads_spawned(),
        3,
        "pool reuse must not spawn new OS threads"
    );

    // Phase 4 — panic in the mapped closure propagates to the caller …
    let result = catch_unwind(AssertUnwindSafe(|| {
        par_map_cost(4, &items, Cost::per_item_ns(HEAVY), |i, &x| {
            if i == 300 {
                panic!("injected closure panic");
            }
            x
        })
    }));
    assert!(result.is_err(), "closure panic must reach the caller");

    // … without poisoning the pool: the next job runs clean on the same
    // threads.
    let after: Vec<u64> = par_map_cost(4, &items, Cost::per_item_ns(HEAVY), |_, &x| x ^ 1);
    assert_eq!(after, items.iter().map(|&x| x ^ 1).collect::<Vec<_>>());
    assert_eq!(pool_threads_spawned(), 3, "panic must not cost threads");

    // Phase 5 — concurrent jobs from independent caller threads share
    // the pool and each get exact, ordered results.
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let items = &items;
            let done = &done;
            s.spawn(move || {
                for round in 0..8u64 {
                    let got: Vec<u64> =
                        par_map_cost(4, items, Cost::per_item_ns(HEAVY), |_, &x| {
                            x.wrapping_mul(t + 1).wrapping_add(round)
                        });
                    for (i, &v) in got.iter().enumerate() {
                        assert_eq!(v, (i as u64).wrapping_mul(t + 1).wrapping_add(round));
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(done.load(Ordering::SeqCst), 4);

    // Concurrent same-width callers share the existing workers: the
    // pool only grows when a job wants more helpers than ever spawned.
    assert_eq!(
        pool_threads_spawned(),
        3,
        "concurrent same-width callers must not grow the pool"
    );

    // Phase 6 — a wider job grows the pool deterministically to its
    // helper count and no further.
    let wide: Vec<u64> = par_map_cost(8, &items, Cost::per_item_ns(HEAVY), |_, &x| x + 7);
    assert_eq!(wide[0], 7);
    assert!(
        pool_threads_spawned() <= 7,
        "8 participants never need more than 7 helpers: {}",
        pool_threads_spawned()
    );
}
