//! Chaos property suite for the DAG runner: random seeded fault plans
//! over random DAGs must keep the execution invariants.
//!
//! For any plan and any acyclic stage graph:
//!
//! * every stage body runs exactly once (success) or never (failure) —
//!   injected faults replace the body, so a failed stage's work is
//!   never half-done;
//! * no stage runs after one of its dependencies permanently failed;
//! * the runner never consults the injector past the retry cap;
//! * the set of failed stages (and the per-stage body counts) is
//!   invariant under the worker thread count.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use v6chaos::{Chaos, DagInjector, FaultPlan, FaultSpec};
use v6par::{Dag, DagRun, FailReason, FaultInjector, InjectedFault, RetryPolicy};

/// Fixed pool of `'static` stage names for generated DAGs.
const NAMES: [&str; 12] = [
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
];

/// Wraps the chaos injector and records the highest attempt index each
/// stage was consulted at, so tests can pin the retry cap.
struct CountingInjector<'a> {
    inner: DagInjector<'a>,
    max_attempt: Mutex<HashMap<String, u32>>,
}

impl FaultInjector for CountingInjector<'_> {
    fn decide(&self, stage: &str, attempt: u32) -> InjectedFault {
        let mut seen = self.max_attempt.lock().unwrap();
        let max = seen.entry(stage.to_string()).or_insert(0);
        *max = (*max).max(attempt);
        drop(seen);
        self.inner.decide(stage, attempt)
    }
}

/// Builds the DAG described by `edges` (node `i` depends on the earlier
/// nodes in its bitmask), runs it under `plan`, and returns per-stage
/// body-run counts, the run outcome, and the injector's attempt log.
fn run_case(
    n: usize,
    edges: &[u16],
    plan: &FaultPlan,
    threads: usize,
) -> (Vec<u32>, DagRun, HashMap<String, u32>) {
    let counters: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut dag = Dag::new();
    for i in 0..n {
        let deps: Vec<&str> = (0..i)
            .filter(|&j| edges[i] >> j & 1 == 1)
            .map(|j| NAMES[j])
            .collect();
        let counter = &counters[i];
        dag.add(NAMES[i], &deps, move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            i as u64
        });
    }
    let injector = CountingInjector {
        inner: DagInjector::new(plan),
        max_attempt: Mutex::new(HashMap::new()),
    };
    // Zero backoff keeps the property suite fast; the backoff curve has
    // its own unit test in the dag module.
    let policy = RetryPolicy {
        max_retries: plan.retry_budget(),
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        stage_deadline: None,
    };
    let run = dag.run_with(threads, &policy, &injector);
    let counts = counters.iter().map(|c| c.load(Ordering::SeqCst)).collect();
    (counts, run, injector.max_attempt.into_inner().unwrap())
}

proptest! {
    #[test]
    fn mixed_fault_plans_hold_every_invariant(
        n in 2usize..12,
        edges in prop::collection::vec(any::<u16>(), 12),
        seed in any::<u64>(),
        fault_rate in 0.0f64..1.0,
        permanent_rate in 0.0f64..0.6,
    ) {
        let plan = FaultPlan::new(seed, FaultSpec::with_permanent(fault_rate, permanent_rate));
        let budget = plan.retry_budget();
        let (counts, run, attempts) = run_case(n, &edges, &plan, 1);
        let failed: HashSet<&str> = run.failures.iter().map(|f| f.name).collect();

        // Exactly-once-or-never, and the failure list is exhaustive.
        for i in 0..n {
            if failed.contains(NAMES[i]) {
                prop_assert_eq!(counts[i], 0, "failed stage {} ran its body", NAMES[i]);
            } else {
                prop_assert_eq!(counts[i], 1, "stage {} ran {} times", NAMES[i], counts[i]);
            }
        }

        // Retries never exceed the cap: at most budget+1 attempts, and
        // the injector is never consulted past attempt index `budget`.
        for f in &run.failures {
            prop_assert!(f.attempts <= budget + 1, "{}: {} attempts", f.name, f.attempts);
        }
        for (site, &max) in &attempts {
            prop_assert!(max <= budget, "{site} consulted at attempt {max}");
        }

        // Nothing runs after a failed dependency, and the cascade is
        // recorded as such, with zero attempts executed.
        for i in 0..n {
            let failed_dep = (0..i).find(|&j| edges[i] >> j & 1 == 1 && failed.contains(NAMES[j]));
            if let Some(dep) = failed_dep {
                prop_assert!(failed.contains(NAMES[i]), "{} ran under failed dep", NAMES[i]);
                prop_assert_eq!(counts[i], 0);
                let f = run.failures.iter().find(|f| f.name == NAMES[i]).unwrap();
                if let FailReason::DependencyFailed(d) = f.reason {
                    prop_assert!(
                        (0..i).any(|j| edges[i] >> j & 1 == 1 && NAMES[j] == d),
                        "{} blamed non-dependency {d}", NAMES[i]
                    );
                    prop_assert_eq!(f.attempts, 0);
                } else {
                    // A stage with both a failed dep and its own permanent
                    // script may be claimed before the dep resolves only if
                    // the dep was not yet failed — the runner checks deps
                    // first, so this must be a DependencyFailed.
                    prop_assert!(
                        false,
                        "{} (dep {} failed) reported {:?}", NAMES[i], NAMES[dep], f.reason
                    );
                }
            }
        }

        // The loss set and body counts are thread-count invariant.
        let (counts4, run4, _) = run_case(n, &edges, &plan, 4);
        let failed1: Vec<&str> = run.failures.iter().map(|f| f.name).collect();
        let failed4: Vec<&str> = run4.failures.iter().map(|f| f.name).collect();
        prop_assert_eq!(failed1, failed4);
        prop_assert_eq!(counts, counts4);
    }

    #[test]
    fn transient_plans_always_converge(
        n in 2usize..12,
        edges in prop::collection::vec(any::<u16>(), 12),
        seed in any::<u64>(),
        fault_rate in 0.0f64..1.0,
    ) {
        let plan = FaultPlan::new(seed, FaultSpec::transient(fault_rate));
        let (counts, run, attempts) = run_case(n, &edges, &plan, 4);
        prop_assert!(run.is_complete(), "transient-only plan lost {:?}", run.failures);
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, 1, "stage {} ran {} times", NAMES[i], c);
        }
        for (site, &max) in &attempts {
            prop_assert!(max <= plan.retry_budget(), "{site} over budget");
        }
        // Every stage produced its output.
        let mut out = run.outputs;
        for (i, name) in NAMES.iter().enumerate().take(n) {
            prop_assert_eq!(out.try_take::<u64>(name), Some(i as u64));
        }
    }
}
