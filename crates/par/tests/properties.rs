//! Property tests for the determinism contract: every v6par primitive
//! must produce the same bytes as its sequential counterpart at any
//! thread count.

use proptest::prelude::*;
use v6par::{merge_sorted_pair, par_chunks_fold, par_map, par_merge_sorted, par_sort_unstable};

fn pseudo_items(seed: u64, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            (seed ^ i)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(13)
        })
        .collect()
}

proptest! {
    /// par_map equals the sequential map, element for element.
    #[test]
    fn par_map_equals_map(seed in any::<u64>(), len in 0usize..600, threads in 1usize..9) {
        let items = pseudo_items(seed, len);
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(3)).collect();
        let got = par_map(threads, &items, |_, x| x.wrapping_mul(3));
        prop_assert_eq!(got, expect);
    }

    /// Per-chunk folds merge to the exact sequential fold.
    #[test]
    fn chunk_folds_merge_exactly(seed in any::<u64>(), len in 0usize..600,
                                 threads in 1usize..9, chunks in 1usize..17) {
        let items = pseudo_items(seed, len);
        let expect: u64 = items.iter().fold(0u64, |a, x| a.wrapping_add(*x));
        let parts = par_chunks_fold(threads, &items, chunks, || 0u64,
                                    |a, _, x| a.wrapping_add(*x));
        let got = parts.iter().fold(0u64, |a, x| a.wrapping_add(*x));
        prop_assert_eq!(got, expect);
    }

    /// Merging sorted runs equals sorting the concatenation.
    #[test]
    fn merge_equals_sort(seed in any::<u64>(), sizes in proptest::collection::vec(0usize..80, 0..6),
                         threads in 1usize..9) {
        let runs: Vec<Vec<u64>> = sizes
            .iter()
            .enumerate()
            .map(|(k, &n)| {
                let mut run = pseudo_items(seed ^ k as u64, n);
                // Coarse values force ties across runs.
                for v in run.iter_mut() { *v %= 17; }
                run.sort_unstable();
                run
            })
            .collect();
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(par_merge_sorted(threads, runs), expect);
    }

    /// Pairwise merge is stable and ordered.
    #[test]
    fn pair_merge_sorted_output(seed in any::<u64>(), na in 0usize..60, nb in 0usize..60) {
        let mut a = pseudo_items(seed, na);
        let mut b = pseudo_items(seed.wrapping_add(1), nb);
        for v in a.iter_mut() { *v %= 11; }
        for v in b.iter_mut() { *v %= 11; }
        a.sort_unstable();
        b.sort_unstable();
        let merged = merge_sorted_pair(&a, &b);
        prop_assert_eq!(merged.len(), na + nb);
        for w in merged.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Parallel sort equals sequential sort (duplicates included).
    #[test]
    fn par_sort_equals_sort(seed in any::<u64>(), len in 0usize..400, threads in 1usize..9) {
        let mut data: Vec<(u64, u64)> = pseudo_items(seed, len)
            .into_iter()
            .map(|v| (v % 23, v))
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        par_sort_unstable(threads, &mut data);
        prop_assert_eq!(data, expect);
    }
}
