//! Property-based tests for the NTP codec and client/server exchange.

use proptest::prelude::*;
use v6ntp::{
    LeapIndicator, Mode, NtpClient, NtpPacket, NtpShort, NtpTimestamp, PacketError, Stratum2Server,
    PACKET_LEN,
};

fn arb_packet() -> impl Strategy<Value = NtpPacket> {
    (
        0u8..4,
        1u8..=4,
        0u8..8,
        any::<u8>(),
        any::<i8>(),
        any::<i8>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<(u64, u64, u64, u64)>(),
    )
        .prop_map(
            |(leap, version, mode, stratum, poll, precision, rd, rdisp, refid, ts)| NtpPacket {
                leap: match leap {
                    0 => LeapIndicator::NoWarning,
                    1 => LeapIndicator::LastMinute61,
                    2 => LeapIndicator::LastMinute59,
                    _ => LeapIndicator::Unknown,
                },
                version,
                mode: match mode {
                    0 => Mode::Reserved,
                    1 => Mode::SymmetricActive,
                    2 => Mode::SymmetricPassive,
                    3 => Mode::Client,
                    4 => Mode::Server,
                    5 => Mode::Broadcast,
                    6 => Mode::Control,
                    _ => Mode::Private,
                },
                stratum,
                poll,
                precision,
                root_delay: NtpShort(rd),
                root_dispersion: NtpShort(rdisp),
                reference_id: refid,
                reference_ts: NtpTimestamp(ts.0),
                origin_ts: NtpTimestamp(ts.1),
                receive_ts: NtpTimestamp(ts.2),
                transmit_ts: NtpTimestamp(ts.3),
            },
        )
}

proptest! {
    /// Encode → decode is the identity on every representable packet.
    #[test]
    fn packet_round_trip(p in arb_packet()) {
        let wire = p.encode();
        prop_assert_eq!(wire.len(), PACKET_LEN);
        prop_assert_eq!(NtpPacket::decode(&wire).unwrap(), p);
    }

    /// The decoder never panics on arbitrary bytes; short inputs are
    /// rejected as truncated.
    #[test]
    fn decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        match NtpPacket::decode(&bytes) {
            Ok(p) => prop_assert!((1..=4).contains(&p.version)),
            Err(PacketError::Truncated) => prop_assert!(bytes.len() < PACKET_LEN),
            Err(PacketError::BadVersion(v)) => prop_assert!(!(1..=4).contains(&v)),
        }
    }

    /// Timestamp subtraction is antisymmetric and second-accurate.
    #[test]
    fn timestamp_subtraction(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (NtpTimestamp(a), NtpTimestamp(b));
        prop_assert!(((x - y) + (y - x)).abs() < 1e-6);
    }

    /// A full client↔server exchange yields a bounded offset whenever the
    /// client's clock skew is bounded (here: client is `skew` behind).
    #[test]
    fn exchange_recovers_offset(skew in 0u32..1000, t0 in 1_000_000u64..100_000_000) {
        // Use a VP from a throwaway tiny world for the server identity.
        use v6netsim::{World, WorldConfig, SimTime};
        let w = World::build(WorldConfig::tiny(), 1);
        let mut server = Stratum2Server::new(w.vantage_points[0].clone());
        let now = SimTime(t0 % 18_000_000);
        // Client clock runs `skew` seconds behind the server's.
        let t1 = NtpTimestamp::from_sim(now - v6netsim::SimDuration(skew as u64), 0);
        let (client, req) = NtpClient::start(t1);
        let resp = server.handle(&req, "2a00:1::1".parse().unwrap(), now).unwrap();
        let t4 = NtpTimestamp::from_sim(now - v6netsim::SimDuration(skew as u64), 600_000_000);
        let sync = client.finish(&resp, t4).unwrap();
        // Recovered offset ≈ skew (within the sub-second serve time).
        prop_assert!((sync.offset - skew as f64).abs() < 1.0,
            "offset {} for skew {}", sync.offset, skew);
    }
}
