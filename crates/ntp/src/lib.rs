//! # v6ntp — RFC 5905 NTP and the NTP Pool model
//!
//! The measurement instrument of *IPv6 Hitlists at Scale* (SIGCOMM 2023)
//! is the Network Time Protocol: 27 stratum-2 servers joined to the NTP
//! Pool, passively logging client source addresses. This crate provides:
//!
//! * [`timestamp`] — 64-bit NTP timestamps and the 16.16 short format.
//! * [`packet`] — the 48-byte NTPv4 header codec (encode/decode).
//! * [`server`] — a stratum-2 server state machine with source logging.
//! * [`client`] — the client half: request generation, response
//!   validation, offset/delay computation.
//! * [`pool`] — pool zones (country/continent/vendor), geo-DNS candidate
//!   selection and round-robin, monitor scores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod monitor;
pub mod packet;
pub mod pool;
pub mod server;
pub mod timestamp;

pub use client::{NtpClient, SyncError, SyncResult};
pub use monitor::{CheckResult, MonitorConfig, PoolMonitor};
pub use packet::{LeapIndicator, Mode, NtpPacket, PacketError, PACKET_LEN};
pub use pool::{NtpPool, Zone};
pub use server::{QueryRecord, ServeError, Stratum2Server};
pub use timestamp::{NtpShort, NtpTimestamp};
