//! The pool's monitoring system.
//!
//! The NTP Pool health-checks member servers and only hands out DNS
//! records for servers whose monitor score is high enough (§2.3); a
//! flapping server drops out of rotation and its clients shift elsewhere.
//! The paper's 27 VPSes were deliberately reliable ("exceptionally high
//! availability", §3 Ethics) precisely to stay in rotation.

use std::collections::HashMap;

use v6netsim::SimTime;

use crate::pool::NtpPool;

/// Outcome of one health check against one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// Server answered correctly and promptly.
    Ok,
    /// Server answered but with degraded quality (high stratum, offset).
    Degraded,
    /// No usable answer.
    Failed,
}

/// Score dynamics mirroring the pool's published algorithm shape:
/// successes add a little, failures subtract a lot, scores saturate.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Score gained per successful check.
    pub gain: f64,
    /// Score lost per degraded check.
    pub degrade_penalty: f64,
    /// Score lost per failed check.
    pub fail_penalty: f64,
    /// Score ceiling.
    pub max_score: f64,
    /// Score floor.
    pub min_score: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            gain: 1.0,
            degrade_penalty: 2.0,
            fail_penalty: 5.0,
            max_score: 20.0,
            min_score: -10.0,
        }
    }
}

/// The pool monitor: tracks per-server scores and pushes them into the
/// pool's rotation logic.
#[derive(Debug)]
pub struct PoolMonitor {
    cfg: MonitorConfig,
    scores: HashMap<u16, f64>,
    checks: u64,
}

impl PoolMonitor {
    /// A monitor over a pool's current servers (initial score 15: new
    /// servers must earn their way to full rotation weight).
    pub fn new(pool: &NtpPool, cfg: MonitorConfig) -> Self {
        let scores = pool.servers().iter().map(|s| (s.id, 15.0)).collect();
        PoolMonitor {
            cfg,
            scores,
            checks: 0,
        }
    }

    /// Applies one check result for a server and syncs the pool.
    pub fn record(&mut self, pool: &mut NtpPool, vp_id: u16, result: CheckResult, _t: SimTime) {
        self.checks += 1;
        let s = self.scores.entry(vp_id).or_insert(15.0);
        *s = match result {
            CheckResult::Ok => (*s + self.cfg.gain).min(self.cfg.max_score),
            CheckResult::Degraded => (*s - self.cfg.degrade_penalty).max(self.cfg.min_score),
            CheckResult::Failed => (*s - self.cfg.fail_penalty).max(self.cfg.min_score),
        };
        pool.set_score(vp_id, *s);
    }

    /// Current score of a server.
    pub fn score(&self, vp_id: u16) -> Option<f64> {
        self.scores.get(&vp_id).copied()
    }

    /// Checks performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::{CountryRegistry, World, WorldConfig};

    fn pool() -> NtpPool {
        let w = World::build(WorldConfig::tiny(), 808);
        NtpPool::new(w.vantage_points.clone(), CountryRegistry::builtin())
    }

    #[test]
    fn healthy_server_climbs_to_ceiling() {
        let mut pool = pool();
        let mut m = PoolMonitor::new(&pool, MonitorConfig::default());
        for i in 0..30 {
            m.record(&mut pool, 0, CheckResult::Ok, SimTime(i * 900));
        }
        assert_eq!(m.score(0), Some(20.0));
        assert_eq!(m.checks(), 30);
    }

    #[test]
    fn flapping_server_leaves_rotation_and_recovers() {
        let mut pool = pool();
        let country = pool.servers()[0].country;
        let vp = pool.servers()[0].id;
        let mut m = PoolMonitor::new(&pool, MonitorConfig::default());
        // Fail it below 10: candidates for its country must exclude it.
        for i in 0..3 {
            m.record(&mut pool, vp, CheckResult::Failed, SimTime(i * 900));
        }
        assert!(m.score(vp).unwrap() < 10.0);
        assert!(pool.candidates(country).iter().all(|s| s.id != vp));
        // Sustained health brings it back.
        for i in 0..20 {
            m.record(&mut pool, vp, CheckResult::Ok, SimTime(10_000 + i * 900));
        }
        assert!(m.score(vp).unwrap() >= 10.0);
        assert!(pool.candidates(country).iter().any(|s| s.id == vp));
    }

    #[test]
    fn degraded_checks_bleed_slowly() {
        let mut pool = pool();
        let mut m = PoolMonitor::new(&pool, MonitorConfig::default());
        m.record(&mut pool, 3, CheckResult::Degraded, SimTime(0));
        m.record(&mut pool, 4, CheckResult::Failed, SimTime(0));
        assert!(m.score(3).unwrap() > m.score(4).unwrap());
    }

    #[test]
    fn score_floor_holds() {
        let mut pool = pool();
        let mut m = PoolMonitor::new(&pool, MonitorConfig::default());
        for i in 0..100 {
            m.record(&mut pool, 1, CheckResult::Failed, SimTime(i));
        }
        assert_eq!(m.score(1), Some(-10.0));
    }
}
