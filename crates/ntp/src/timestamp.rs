//! NTP timestamps (RFC 5905 §6).
//!
//! NTP represents time as a 64-bit unsigned fixed-point number: 32 bits of
//! seconds since 1 January 1900 and 32 bits of fraction (~233 ps
//! resolution). The simulator's [`SimTime`] epoch (25 January 2022) maps
//! onto the NTP era at a fixed offset.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Sub;

use v6netsim::SimTime;

/// Seconds between the NTP epoch (1900-01-01) and the study start
/// (2022-01-25): 122 years incl. 30 leap days, plus 24 days of January.
pub const STUDY_START_NTP_SECS: u64 = (122 * 365 + 30 + 24) * 86_400;

/// A 64-bit NTP timestamp (32.32 fixed point, seconds since 1900).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NtpTimestamp(pub u64);

impl NtpTimestamp {
    /// The "unknown" timestamp (all zeros), used before synchronization.
    pub const ZERO: NtpTimestamp = NtpTimestamp(0);

    /// Builds from whole seconds and a 32-bit fraction.
    pub const fn new(secs: u32, frac: u32) -> Self {
        NtpTimestamp(((secs as u64) << 32) | frac as u64)
    }

    /// The seconds part.
    pub const fn secs(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The fractional part.
    pub const fn frac(self) -> u32 {
        self.0 as u32
    }

    /// Converts a simulation instant (plus sub-second nanoseconds) to an
    /// NTP timestamp.
    pub fn from_sim(t: SimTime, subsec_nanos: u32) -> Self {
        let secs = (STUDY_START_NTP_SECS + t.as_secs()) as u32;
        let frac = ((subsec_nanos as u64) << 32) / 1_000_000_000;
        NtpTimestamp::new(secs, frac as u32)
    }

    /// The simulation instant this timestamp corresponds to (seconds
    /// resolution; `None` if before the study start).
    pub fn to_sim(self) -> Option<SimTime> {
        (self.secs() as u64)
            .checked_sub(STUDY_START_NTP_SECS)
            .map(SimTime)
    }

    /// The timestamp as fractional seconds since 1900.
    pub fn as_f64(self) -> f64 {
        self.secs() as f64 + self.frac() as f64 / 4_294_967_296.0
    }
}

impl Sub for NtpTimestamp {
    type Output = f64;

    /// Signed difference in seconds (`self - rhs`).
    #[allow(clippy::suspicious_arithmetic_impl)] // fixed-point → seconds
    fn sub(self, rhs: NtpTimestamp) -> f64 {
        // Wrapping signed difference handles era boundaries like NTP does.
        (self.0.wrapping_sub(rhs.0) as i64) as f64 / 4_294_967_296.0
    }
}

impl fmt::Display for NtpTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:08x}", self.secs(), self.frac())
    }
}

/// A short 32-bit NTP time format (16.16 fixed point), used for root
/// delay and root dispersion.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NtpShort(pub u32);

impl NtpShort {
    /// Zero.
    pub const ZERO: NtpShort = NtpShort(0);

    /// From fractional seconds (saturating, non-negative).
    pub fn from_secs_f64(s: f64) -> Self {
        NtpShort((s.max(0.0) * 65_536.0).min(u32::MAX as f64) as u32)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 65_536.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_round_trip() {
        let t = SimTime(86_400 * 30 + 12_345);
        let ts = NtpTimestamp::from_sim(t, 500_000_000);
        assert_eq!(ts.to_sim(), Some(t));
        // Half-second fraction.
        assert!((ts.frac() as f64 / 4_294_967_296.0 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn before_study_start_is_none() {
        assert_eq!(NtpTimestamp::new(1000, 0).to_sim(), None);
    }

    #[test]
    fn subtraction_in_seconds() {
        let a = NtpTimestamp::new(100, 0);
        let b = NtpTimestamp::new(98, 1 << 31);
        assert!(((a - b) - 1.5).abs() < 1e-9);
        assert!(((b - a) + 1.5).abs() < 1e-9);
    }

    #[test]
    fn short_format_round_trip() {
        let s = NtpShort::from_secs_f64(0.125);
        assert!((s.as_secs_f64() - 0.125).abs() < 1e-4);
        assert_eq!(NtpShort::from_secs_f64(-1.0), NtpShort::ZERO);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards the hand-computed epoch constant
    fn epoch_offset_magnitude() {
        // 1900→2022 is about 3.85e9 seconds; sanity-check the constant.
        assert!(STUDY_START_NTP_SECS > 3_840_000_000);
        assert!(STUDY_START_NTP_SECS < 3_860_000_000);
    }

    #[test]
    fn display() {
        assert_eq!(NtpTimestamp::new(5, 0xff).to_string(), "5.000000ff");
    }
}
