//! The NTP Pool model: zones, geo-DNS and server selection (§2.3).
//!
//! `pool.ntp.org` resolves through a DNS round-robin that prefers servers
//! geographically near the client (country zone → continent zone →
//! global). That load-balancing is *why* 27 servers in 20 countries saw
//! clients from 175 countries: any country without an in-country pool
//! server spills to its continent and then the world.

use serde::{Deserialize, Serialize};

use v6netsim::geo_model::Continent;
use v6netsim::rng::hash64;
use v6netsim::{Country, CountryRegistry, SimTime, VantagePoint};

/// A pool zone name (country, continent, vendor or global).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Zone(pub String);

impl Zone {
    /// The global zone.
    pub fn global() -> Zone {
        Zone("pool.ntp.org".into())
    }

    /// A country zone like `de.pool.ntp.org`.
    pub fn country(c: Country) -> Zone {
        Zone(format!("{}.pool.ntp.org", c.as_str().to_ascii_lowercase()))
    }

    /// A continent zone like `europe.pool.ntp.org`.
    pub fn continent(c: Continent) -> Zone {
        let name = match c {
            Continent::Africa => "africa",
            Continent::Asia => "asia",
            Continent::Europe => "europe",
            Continent::NorthAmerica => "north-america",
            Continent::Oceania => "oceania",
            Continent::SouthAmerica => "south-america",
        };
        Zone(format!("{name}.pool.ntp.org"))
    }

    /// A vendor zone like `android.pool.ntp.org`. Vendor zones resolve to
    /// the same server set as the global zone (the pool's actual
    /// behaviour), but exist so vendor defaults can be modeled.
    pub fn vendor(v: &str) -> Zone {
        Zone(format!("{v}.pool.ntp.org"))
    }
}

/// The pool: the registered servers plus the selection logic.
#[derive(Debug, Clone)]
pub struct NtpPool {
    servers: Vec<VantagePoint>,
    /// Monitor score per server (the pool drops servers below 10; ours
    /// are healthy VPSes so scores sit near 20).
    scores: Vec<f64>,
    registry: CountryRegistry,
}

impl NtpPool {
    /// Registers a set of servers (our 27 vantage points).
    pub fn new(servers: Vec<VantagePoint>, registry: CountryRegistry) -> Self {
        let scores = vec![20.0; servers.len()];
        NtpPool {
            servers,
            scores,
            registry,
        }
    }

    /// Number of registered servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when no servers are registered.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// All servers.
    pub fn servers(&self) -> &[VantagePoint] {
        &self.servers
    }

    /// Sets a server's monitor score (≥ 10 keeps it in rotation).
    pub fn set_score(&mut self, vp_id: u16, score: f64) {
        if let Some(i) = self.servers.iter().position(|s| s.id == vp_id) {
            self.scores[i] = score;
        }
    }

    /// The candidate servers geo-DNS would hand a client in `country`:
    /// in-country servers if any, else in-continent, else all (healthy
    /// servers only).
    pub fn candidates(&self, country: Country) -> Vec<&VantagePoint> {
        let healthy = |i: &usize| self.scores[*i] >= 10.0;
        let idx: Vec<usize> = (0..self.servers.len()).collect();
        let in_country: Vec<usize> = idx
            .iter()
            .copied()
            .filter(healthy)
            .filter(|&i| self.servers[i].country == country)
            .collect();
        if !in_country.is_empty() {
            return in_country.iter().map(|&i| &self.servers[i]).collect();
        }
        let continent = self.registry.get(country).map(|c| c.continent);
        let in_continent: Vec<usize> = idx
            .iter()
            .copied()
            .filter(healthy)
            .filter(|&i| {
                self.registry
                    .get(self.servers[i].country)
                    .map(|c| Some(c.continent) == continent)
                    .unwrap_or(false)
            })
            .collect();
        if !in_continent.is_empty() {
            return in_continent.iter().map(|&i| &self.servers[i]).collect();
        }
        idx.iter()
            .copied()
            .filter(healthy)
            .map(|i| &self.servers[i])
            .collect()
    }

    /// DNS round-robin: which server a given client resolution at time `t`
    /// lands on. Deterministic in `(client key, DNS TTL window, country)`.
    pub fn select(&self, country: Country, client_key: u64, t: SimTime) -> Option<&VantagePoint> {
        let cands = self.candidates(country);
        if cands.is_empty() {
            return None;
        }
        // Pool DNS TTL is ~150 s; a client re-resolves each sync anyway,
        // so key on a 150-second window.
        let h = hash64(
            client_key ^ (t.as_secs() / 150),
            country.as_str().as_bytes(),
        );
        Some(cands[(h % cands.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::{World, WorldConfig};

    fn pool() -> NtpPool {
        let w = World::build(WorldConfig::tiny(), 9);
        NtpPool::new(w.vantage_points.clone(), CountryRegistry::builtin())
    }

    #[test]
    fn zone_names() {
        assert_eq!(Zone::global().0, "pool.ntp.org");
        assert_eq!(Zone::country(Country::new("DE")).0, "de.pool.ntp.org");
        assert_eq!(
            Zone::continent(Continent::NorthAmerica).0,
            "north-america.pool.ntp.org"
        );
        assert_eq!(Zone::vendor("android").0, "android.pool.ntp.org");
    }

    #[test]
    fn in_country_clients_get_in_country_servers() {
        let p = pool();
        for vp in p.servers() {
            let c = p.candidates(vp.country);
            assert!(c.iter().all(|s| s.country == vp.country));
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn uncovered_country_spills_to_continent_or_global() {
        let p = pool();
        // France has no VP; it should spill to European servers.
        let c = p.candidates(Country::new("FR"));
        assert!(!c.is_empty());
        let reg = CountryRegistry::builtin();
        for s in &c {
            assert_eq!(
                reg.get(s.country).unwrap().continent,
                Continent::Europe,
                "FR spilled outside Europe to {}",
                s.country
            );
        }
    }

    #[test]
    fn selection_is_deterministic_within_ttl() {
        let p = pool();
        let c = Country::new("US");
        // 1000 and 1040 fall in the same 150-second DNS TTL window.
        let a = p.select(c, 42, SimTime(1000)).unwrap().id;
        let b = p.select(c, 42, SimTime(1040)).unwrap().id;
        assert_eq!(a, b, "same TTL window must pin the same server");
    }

    #[test]
    fn selection_rotates_across_clients() {
        let p = pool();
        let c = Country::new("US");
        let mut seen = std::collections::BTreeSet::new();
        for key in 0..200 {
            seen.insert(p.select(c, key, SimTime(0)).unwrap().id);
        }
        // 6 US servers; round robin should hit most of them.
        assert!(seen.len() >= 4, "only {} servers used", seen.len());
    }

    #[test]
    fn unhealthy_servers_leave_rotation() {
        let mut p = pool();
        let us: Vec<u16> = p
            .servers()
            .iter()
            .filter(|s| s.country == Country::new("US"))
            .map(|s| s.id)
            .collect();
        for id in &us {
            p.set_score(*id, 5.0);
        }
        let cands = p.candidates(Country::new("US"));
        assert!(cands.iter().all(|s| !us.contains(&s.id)));
    }

    #[test]
    fn world_collects_from_everywhere() {
        // The paper's point: 20 VP countries, clients from 175. Every
        // registry country must resolve to *some* server.
        let p = pool();
        for info in CountryRegistry::builtin().all() {
            assert!(
                p.select(info.code, 7, SimTime(0)).is_some(),
                "{} cannot resolve a pool server",
                info.code
            );
        }
    }
}
