//! The client half of the NTP exchange.
//!
//! Devices in the simulation "really" query the pool: they encode a
//! mode-3 packet, the chosen server decodes and answers it, and the client
//! computes offset/delay from the four timestamps — the full RFC 5905
//! on-wire round trip, which is what makes the passive collection
//! faithful rather than a bookkeeping shortcut.

use crate::packet::{Mode, NtpPacket, PacketError};
use crate::timestamp::NtpTimestamp;

/// Result of a completed client exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncResult {
    /// Clock offset θ = ((T2−T1)+(T3−T4))/2, seconds.
    pub offset: f64,
    /// Round-trip delay δ = (T4−T1)−(T3−T2), seconds.
    pub delay: f64,
    /// Stratum of the server that answered.
    pub server_stratum: u8,
}

/// Errors completing an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncError {
    /// Could not decode the response.
    Malformed(PacketError),
    /// The response was not mode 4.
    NotAServerResponse(Mode),
    /// The origin timestamp did not echo our transmit timestamp
    /// (off-path spoofing defence, RFC 5905 §8).
    OriginMismatch,
    /// Server is unsynchronized (stratum 0 or 16).
    Unsynchronized,
}

/// A minimal SNTP client state machine for one exchange.
#[derive(Debug, Clone, Copy)]
pub struct NtpClient {
    t1: NtpTimestamp,
}

impl NtpClient {
    /// Starts an exchange at local time `t1`, producing the request wire
    /// bytes.
    pub fn start(t1: NtpTimestamp) -> (Self, bytes::Bytes) {
        (NtpClient { t1 }, NtpPacket::client_request(t1).encode())
    }

    /// Completes the exchange with the response received at local time
    /// `t4`.
    pub fn finish(self, wire: &[u8], t4: NtpTimestamp) -> Result<SyncResult, SyncError> {
        let resp = NtpPacket::decode(wire).map_err(SyncError::Malformed)?;
        if resp.mode != Mode::Server {
            return Err(SyncError::NotAServerResponse(resp.mode));
        }
        if resp.origin_ts != self.t1 {
            return Err(SyncError::OriginMismatch);
        }
        if resp.stratum == 0 || resp.stratum >= 16 {
            return Err(SyncError::Unsynchronized);
        }
        let (t1, t2, t3) = (self.t1, resp.receive_ts, resp.transmit_ts);
        let offset = ((t2 - t1) + (t3 - t4)) / 2.0;
        let delay = (t4 - t1) - (t3 - t2);
        Ok(SyncResult {
            offset,
            delay,
            server_stratum: resp.stratum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::LeapIndicator;
    use crate::timestamp::NtpShort;

    fn ts(s: u32, half: bool) -> NtpTimestamp {
        NtpTimestamp::new(s, if half { 1 << 31 } else { 0 })
    }

    fn response(origin: NtpTimestamp, t2: NtpTimestamp, t3: NtpTimestamp) -> bytes::Bytes {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Server,
            stratum: 2,
            poll: 6,
            precision: -23,
            root_delay: NtpShort::ZERO,
            root_dispersion: NtpShort::ZERO,
            reference_id: 1,
            reference_ts: t2,
            origin_ts: origin,
            receive_ts: t2,
            transmit_ts: t3,
        }
        .encode()
    }

    #[test]
    fn computes_offset_and_delay() {
        // Client clock 1 s behind server; 0.5 s each-way network delay.
        // T1=100 (client) = 101 (server); T2=101.5; T3=101.5; T4=101 (client).
        let t1 = ts(100, false);
        let (c, _req) = NtpClient::start(t1);
        let res = c
            .finish(&response(t1, ts(101, true), ts(101, true)), ts(101, false))
            .unwrap();
        assert!((res.offset - 1.0).abs() < 1e-9, "offset = {}", res.offset);
        assert!((res.delay - 1.0).abs() < 1e-9, "delay = {}", res.delay);
        assert_eq!(res.server_stratum, 2);
    }

    #[test]
    fn zero_offset_symmetric_path() {
        let t1 = ts(200, false);
        let (c, _req) = NtpClient::start(t1);
        // 0.5 s each way, clocks agree.
        let res = c
            .finish(&response(t1, ts(200, true), ts(200, true)), ts(201, false))
            .unwrap();
        assert!(res.offset.abs() < 1e-9);
        assert!((res.delay - 1.0).abs() < 1e-9);
    }

    #[test]
    fn origin_mismatch_rejected() {
        let (c, _req) = NtpClient::start(ts(100, false));
        let r = response(ts(999, false), ts(100, true), ts(100, true));
        assert_eq!(c.finish(&r, ts(101, false)), Err(SyncError::OriginMismatch));
    }

    #[test]
    fn unsynchronized_rejected() {
        let t1 = ts(100, false);
        let (c, _req) = NtpClient::start(t1);
        let mut p = NtpPacket::decode(&response(t1, t1, t1)).unwrap();
        p.stratum = 16;
        assert_eq!(
            c.finish(&p.encode(), ts(101, false)),
            Err(SyncError::Unsynchronized)
        );
    }

    #[test]
    fn wrong_mode_rejected() {
        let t1 = ts(100, false);
        let (c, _req) = NtpClient::start(t1);
        let mut p = NtpPacket::decode(&response(t1, t1, t1)).unwrap();
        p.mode = Mode::Broadcast;
        assert_eq!(
            c.finish(&p.encode(), ts(101, false)),
            Err(SyncError::NotAServerResponse(Mode::Broadcast))
        );
    }

    #[test]
    fn end_to_end_with_server() {
        use crate::server::Stratum2Server;
        use v6netsim::{SimTime, World, WorldConfig};
        let w = World::build(WorldConfig::tiny(), 5);
        let mut server = Stratum2Server::new(w.vantage_points[0].clone());
        let now = SimTime(5000);
        let t1 = NtpTimestamp::from_sim(now, 0);
        let (client, req) = NtpClient::start(t1);
        let resp = server
            .handle(&req, "2a00:2:8000::1".parse().unwrap(), now)
            .unwrap();
        let t4 = NtpTimestamp::from_sim(now, 400_000_000);
        let res = client.finish(&resp, t4).unwrap();
        assert_eq!(res.server_stratum, 2);
        assert!(res.delay >= 0.0);
        assert!(res.offset.abs() < 1.0);
    }
}
