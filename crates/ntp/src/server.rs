//! A stratum-2 NTP server with passive source-address logging.
//!
//! This is the paper's measurement instrument (§3): a cheap VPS running a
//! stratum-2 server joined to the pool. It answers real mode-3 packets and
//! records `(time, source address)` — nothing else, since NTP requests
//! carry no PII (§3, Ethics).

use std::net::Ipv6Addr;

use v6netsim::{SimTime, VantagePoint};

use crate::packet::{LeapIndicator, Mode, NtpPacket, PacketError};
use crate::timestamp::{NtpShort, NtpTimestamp};

/// One logged client query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Arrival time.
    pub t: SimTime,
    /// Source address of the request.
    pub src: Ipv6Addr,
}

/// Why a request was dropped instead of answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Could not decode the packet.
    Malformed(PacketError),
    /// Not a client-mode request.
    NotAClientRequest(Mode),
}

/// A stratum-2 server joined to the pool at one vantage point.
#[derive(Debug)]
pub struct Stratum2Server {
    /// The vantage point this server runs at.
    pub vp: VantagePoint,
    /// Upstream (stratum-1) reference id.
    pub reference_id: u32,
    log: Vec<QueryRecord>,
    served: u64,
    dropped: u64,
}

impl Stratum2Server {
    /// Creates a server at a vantage point.
    pub fn new(vp: VantagePoint) -> Self {
        // Reference id derived from the VP id (an upstream stratum-1).
        let reference_id = 0x0a00_0000 | vp.id as u32;
        Stratum2Server {
            vp,
            reference_id,
            log: Vec::new(),
            served: 0,
            dropped: 0,
        }
    }

    /// Handles one inbound wire packet: decodes, validates, logs the
    /// source, and produces the encoded mode-4 response.
    pub fn handle(
        &mut self,
        wire: &[u8],
        src: Ipv6Addr,
        now: SimTime,
    ) -> Result<bytes::Bytes, ServeError> {
        let req = match NtpPacket::decode(wire) {
            Ok(p) => p,
            Err(e) => {
                self.dropped += 1;
                return Err(ServeError::Malformed(e));
            }
        };
        if req.mode != Mode::Client {
            self.dropped += 1;
            return Err(ServeError::NotAClientRequest(req.mode));
        }
        self.log.push(QueryRecord { t: now, src });
        self.served += 1;

        let rx = NtpTimestamp::from_sim(now, 250_000_000);
        let tx = NtpTimestamp::from_sim(now, 250_050_000); // ~50 µs serve time
        let resp = NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Server,
            stratum: 2,
            poll: req.poll,
            precision: -23,
            root_delay: NtpShort::from_secs_f64(0.012),
            root_dispersion: NtpShort::from_secs_f64(0.004),
            reference_id: self.reference_id,
            reference_ts: NtpTimestamp::from_sim(now - v6netsim::SimDuration::minutes(4), 0),
            origin_ts: req.transmit_ts,
            receive_ts: rx,
            transmit_ts: tx,
        };
        Ok(resp.encode())
    }

    /// The query log.
    pub fn log(&self) -> &[QueryRecord] {
        &self.log
    }

    /// Takes the query log, leaving it empty (periodic flush to disk in
    /// the real deployment).
    pub fn drain_log(&mut self) -> Vec<QueryRecord> {
        std::mem::take(&mut self.log)
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests dropped (malformed / wrong mode).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6netsim::{World, WorldConfig};

    fn server() -> Stratum2Server {
        let w = World::build(WorldConfig::tiny(), 3);
        Stratum2Server::new(w.vantage_points[0].clone())
    }

    fn src() -> Ipv6Addr {
        "2a00:1:8000::42".parse().unwrap()
    }

    #[test]
    fn serves_client_request_and_logs_source() {
        let mut s = server();
        let t1 = NtpTimestamp::from_sim(SimTime(1000), 0);
        let req = NtpPacket::client_request(t1).encode();
        let resp = s.handle(&req, src(), SimTime(1000)).unwrap();
        let resp = NtpPacket::decode(&resp).unwrap();
        assert_eq!(resp.mode, Mode::Server);
        assert_eq!(resp.stratum, 2);
        // The server must echo T1 into the origin field.
        assert_eq!(resp.origin_ts, t1);
        assert!(resp.receive_ts <= resp.transmit_ts);
        assert_eq!(s.log().len(), 1);
        assert_eq!(s.log()[0].src, src());
        assert_eq!(s.served(), 1);
    }

    #[test]
    fn rejects_malformed() {
        let mut s = server();
        let err = s.handle(&[1, 2, 3], src(), SimTime(0)).unwrap_err();
        assert!(matches!(err, ServeError::Malformed(_)));
        assert_eq!(s.dropped(), 1);
        assert!(s.log().is_empty());
    }

    #[test]
    fn rejects_non_client_mode() {
        let mut s = server();
        let mut p = NtpPacket::client_request(NtpTimestamp::ZERO);
        p.mode = Mode::Server;
        let err = s.handle(&p.encode(), src(), SimTime(0)).unwrap_err();
        assert_eq!(err, ServeError::NotAClientRequest(Mode::Server));
    }

    #[test]
    fn drain_log_empties() {
        let mut s = server();
        let req = NtpPacket::client_request(NtpTimestamp::ZERO).encode();
        for i in 0..5 {
            s.handle(&req, src(), SimTime(i)).unwrap();
        }
        let drained = s.drain_log();
        assert_eq!(drained.len(), 5);
        assert!(s.log().is_empty());
        assert_eq!(s.served(), 5);
    }
}
