//! The 48-byte NTPv4 packet (RFC 5905 §7.3).
//!
//! The paper's collectors are real stratum-2 NTP servers; our simulated
//! collectors run real packets through a real codec so the collection path
//! is faithful: clients *encode* mode-3 requests, servers *decode* them,
//! log the source address, and encode mode-4 responses.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::timestamp::{NtpShort, NtpTimestamp};

/// Wire size of a bare NTPv4 header.
pub const PACKET_LEN: usize = 48;

/// Leap Indicator (RFC 5905 §7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeapIndicator {
    /// No warning.
    NoWarning,
    /// Last minute of the day has 61 seconds.
    LastMinute61,
    /// Last minute of the day has 59 seconds.
    LastMinute59,
    /// Clock unsynchronized.
    Unknown,
}

impl LeapIndicator {
    fn from_bits(b: u8) -> Self {
        match b & 0b11 {
            0 => LeapIndicator::NoWarning,
            1 => LeapIndicator::LastMinute61,
            2 => LeapIndicator::LastMinute59,
            _ => LeapIndicator::Unknown,
        }
    }

    fn bits(self) -> u8 {
        match self {
            LeapIndicator::NoWarning => 0,
            LeapIndicator::LastMinute61 => 1,
            LeapIndicator::LastMinute59 => 2,
            LeapIndicator::Unknown => 3,
        }
    }
}

/// Protocol mode (RFC 5905 §7.3). We model the client/server exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Reserved.
    Reserved,
    /// Symmetric active.
    SymmetricActive,
    /// Symmetric passive.
    SymmetricPassive,
    /// Client request.
    Client,
    /// Server response.
    Server,
    /// Broadcast.
    Broadcast,
    /// NTP control message.
    Control,
    /// Private use.
    Private,
}

impl Mode {
    fn from_bits(b: u8) -> Self {
        match b & 0b111 {
            0 => Mode::Reserved,
            1 => Mode::SymmetricActive,
            2 => Mode::SymmetricPassive,
            3 => Mode::Client,
            4 => Mode::Server,
            5 => Mode::Broadcast,
            6 => Mode::Control,
            _ => Mode::Private,
        }
    }

    fn bits(self) -> u8 {
        match self {
            Mode::Reserved => 0,
            Mode::SymmetricActive => 1,
            Mode::SymmetricPassive => 2,
            Mode::Client => 3,
            Mode::Server => 4,
            Mode::Broadcast => 5,
            Mode::Control => 6,
            Mode::Private => 7,
        }
    }
}

/// A decoded NTPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NtpPacket {
    /// Leap indicator.
    pub leap: LeapIndicator,
    /// Version number (4 for NTPv4).
    pub version: u8,
    /// Protocol mode.
    pub mode: Mode,
    /// Stratum (1 = primary, 2 = our servers, 16 = unsynchronized).
    pub stratum: u8,
    /// Log2 poll interval in seconds.
    pub poll: i8,
    /// Log2 clock precision in seconds.
    pub precision: i8,
    /// Total round-trip delay to the reference clock.
    pub root_delay: NtpShort,
    /// Total dispersion to the reference clock.
    pub root_dispersion: NtpShort,
    /// Reference identifier (upstream server for stratum ≥ 2).
    pub reference_id: u32,
    /// When the system clock was last set.
    pub reference_ts: NtpTimestamp,
    /// Client transmit time, echoed by the server ("origin", T1).
    pub origin_ts: NtpTimestamp,
    /// Server receive time (T2).
    pub receive_ts: NtpTimestamp,
    /// Transmit time (client: T1; server: T3).
    pub transmit_ts: NtpTimestamp,
}

/// Errors decoding an NTP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer than 48 bytes.
    Truncated,
    /// Version outside 1..=4.
    BadVersion(u8),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => f.write_str("NTP packet shorter than 48 bytes"),
            PacketError::BadVersion(v) => write!(f, "unsupported NTP version {v}"),
        }
    }
}

impl std::error::Error for PacketError {}

impl NtpPacket {
    /// A fresh mode-3 client request with `transmit_ts` set to T1.
    pub fn client_request(transmit_ts: NtpTimestamp) -> Self {
        NtpPacket {
            leap: LeapIndicator::Unknown,
            version: 4,
            mode: Mode::Client,
            stratum: 0,
            poll: 6, // 64 s
            precision: -20,
            root_delay: NtpShort::ZERO,
            root_dispersion: NtpShort::ZERO,
            reference_id: 0,
            reference_ts: NtpTimestamp::ZERO,
            origin_ts: NtpTimestamp::ZERO,
            receive_ts: NtpTimestamp::ZERO,
            transmit_ts,
        }
    }

    /// Encodes into 48 bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(PACKET_LEN);
        buf.put_u8((self.leap.bits() << 6) | ((self.version & 0b111) << 3) | self.mode.bits());
        buf.put_u8(self.stratum);
        buf.put_i8(self.poll);
        buf.put_i8(self.precision);
        buf.put_u32(self.root_delay.0);
        buf.put_u32(self.root_dispersion.0);
        buf.put_u32(self.reference_id);
        buf.put_u64(self.reference_ts.0);
        buf.put_u64(self.origin_ts.0);
        buf.put_u64(self.receive_ts.0);
        buf.put_u64(self.transmit_ts.0);
        debug_assert_eq!(buf.len(), PACKET_LEN);
        buf.freeze()
    }

    /// Decodes from wire bytes (extensions, if any, are ignored).
    pub fn decode(mut data: &[u8]) -> Result<Self, PacketError> {
        if data.len() < PACKET_LEN {
            return Err(PacketError::Truncated);
        }
        let b0 = data.get_u8();
        let version = (b0 >> 3) & 0b111;
        if !(1..=4).contains(&version) {
            return Err(PacketError::BadVersion(version));
        }
        Ok(NtpPacket {
            leap: LeapIndicator::from_bits(b0 >> 6),
            version,
            mode: Mode::from_bits(b0),
            stratum: data.get_u8(),
            poll: data.get_i8(),
            precision: data.get_i8(),
            root_delay: NtpShort(data.get_u32()),
            root_dispersion: NtpShort(data.get_u32()),
            reference_id: data.get_u32(),
            reference_ts: NtpTimestamp(data.get_u64()),
            origin_ts: NtpTimestamp(data.get_u64()),
            receive_ts: NtpTimestamp(data.get_u64()),
            transmit_ts: NtpTimestamp(data.get_u64()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NtpPacket {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Server,
            stratum: 2,
            poll: 6,
            precision: -23,
            root_delay: NtpShort::from_secs_f64(0.015),
            root_dispersion: NtpShort::from_secs_f64(0.002),
            reference_id: 0xc0a8_0101,
            reference_ts: NtpTimestamp::new(3_850_000_000, 1),
            origin_ts: NtpTimestamp::new(3_850_000_001, 2),
            receive_ts: NtpTimestamp::new(3_850_000_002, 3),
            transmit_ts: NtpTimestamp::new(3_850_000_003, 4),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        let wire = p.encode();
        assert_eq!(wire.len(), PACKET_LEN);
        assert_eq!(NtpPacket::decode(&wire).unwrap(), p);
    }

    #[test]
    fn client_request_shape() {
        let p = NtpPacket::client_request(NtpTimestamp::new(3_850_000_000, 0));
        let wire = p.encode();
        // LI=3 VN=4 Mode=3 → 0b11_100_011 = 0xe3, the classic first byte.
        assert_eq!(wire[0], 0xe3);
        let d = NtpPacket::decode(&wire).unwrap();
        assert_eq!(d.mode, Mode::Client);
        assert_eq!(d.version, 4);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(NtpPacket::decode(&[0; 47]), Err(PacketError::Truncated));
    }

    #[test]
    fn bad_version_rejected() {
        let mut wire = sample().encode().to_vec();
        wire[0] = (wire[0] & !0b0011_1000) | (7 << 3);
        assert_eq!(NtpPacket::decode(&wire), Err(PacketError::BadVersion(7)));
        wire[0] &= !0b0011_1000; // version 0
        assert_eq!(NtpPacket::decode(&wire), Err(PacketError::BadVersion(0)));
    }

    #[test]
    fn extensions_ignored() {
        let mut wire = sample().encode().to_vec();
        wire.extend_from_slice(&[0u8; 20]);
        assert_eq!(NtpPacket::decode(&wire).unwrap(), sample());
    }

    #[test]
    fn all_modes_round_trip() {
        for m in [
            Mode::Reserved,
            Mode::SymmetricActive,
            Mode::SymmetricPassive,
            Mode::Client,
            Mode::Server,
            Mode::Broadcast,
            Mode::Control,
            Mode::Private,
        ] {
            assert_eq!(Mode::from_bits(m.bits()), m);
        }
        for l in [
            LeapIndicator::NoWarning,
            LeapIndicator::LastMinute61,
            LeapIndicator::LastMinute59,
            LeapIndicator::Unknown,
        ] {
            assert_eq!(LeapIndicator::from_bits(l.bits()), l);
        }
    }
}
