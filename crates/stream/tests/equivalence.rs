//! The crate's governing invariant, pinned as properties:
//!
//! **At every epoch boundary, each streaming operator's checksum
//! equals that of the same operator rebuilt from the materialized
//! corpus** — under clean delivery, under duplicate/reordered
//! delivery, and after gap + resync. Streaming is an optimization,
//! never an approximation.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use v6store::replica::{self, DeltaRecord};
use v6store::{EpochState, EpochView};
use v6stream::{
    fold_content, Analytics, AsTag, Offer, PrefixAsTable, SharedResolver, StreamDriver,
};

/// Three routed /32s (two in DE, one in JP) plus addresses outside
/// any route, so per-AS operators see both attributed and unrouted
/// traffic.
fn resolver() -> SharedResolver {
    Arc::new(PrefixAsTable::new(vec![
        (
            0x2a00_0001u128 << 96,
            32,
            AsTag {
                index: 1,
                country: u16::from_be_bytes(*b"DE"),
            },
        ),
        (
            0x2a00_0002u128 << 96,
            32,
            AsTag {
                index: 2,
                country: u16::from_be_bytes(*b"DE"),
            },
        ),
        (
            0x2a00_0003u128 << 96,
            32,
            AsTag {
                index: 3,
                country: u16::from_be_bytes(*b"JP"),
            },
        ),
    ]))
}

/// One corpus mutation: upsert (add or week-change) or removal of a
/// pool address.
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { slot: usize, week: u32 },
    Remove { slot: usize },
}

/// A small address pool mixing EUI-64 IIDs (a handful of MACs, so
/// devices genuinely span networks) with opaque IIDs, spread over the
/// routed prefixes, several subnets, and unrouted space.
fn pool() -> Vec<u128> {
    let mut out = Vec::new();
    for prefix in [0x2a00_0001u128, 0x2a00_0002, 0x2a00_0003, 0x3fff_0001] {
        for subnet in 0..3u64 {
            for mac in [0x0012_3456_789au64, 0x0012_3456_aaaa, 0xdead_beef_0001] {
                let iid = v6addr::Iid::from_mac(v6addr::Mac::from_u64(mac));
                out.push((prefix << 96) | (u128::from(subnet) << 64) | u128::from(iid.as_u64()));
            }
            for iid in [0x1u64, 0x9e37_79b9_7f4a_7c15] {
                out.push((prefix << 96) | (u128::from(subnet) << 64) | u128::from(iid));
            }
        }
    }
    out
}

fn ops() -> impl Strategy<Value = Vec<Vec<Op>>> {
    // kind 0 removes, kinds 1-3 upsert: a 1:3 churn mix.
    let op = (0usize..4, 0usize..60, 0u32..8).prop_map(|(kind, slot, week)| {
        if kind == 0 {
            Op::Remove { slot }
        } else {
            Op::Upsert { slot, week }
        }
    });
    proptest::collection::vec(proptest::collection::vec(op, 0..12), 1..10)
}

/// Applies one epoch's ops to the corpus and returns the delta a
/// canonical producer (fold-checksumming serving layer) would emit.
fn advance(
    corpus: &mut BTreeMap<u128, u32>,
    state: &mut EpochState,
    epoch_ops: &[Op],
    epoch: u64,
) -> DeltaRecord {
    let pool = pool();
    for &op in epoch_ops {
        match op {
            Op::Upsert { slot, week } => {
                corpus.insert(pool[slot % pool.len()], week);
            }
            Op::Remove { slot } => {
                corpus.remove(&pool[slot % pool.len()]);
            }
        }
    }
    let entries: Vec<(u128, u32)> = corpus.iter().map(|(&b, &w)| (b, w)).collect();
    let checksum = entries
        .iter()
        .fold(0u64, |acc, &(bits, week)| fold_content(acc, bits, week));
    let delta = replica::delta_between(
        state,
        &EpochView {
            epoch,
            week: epoch,
            content_checksum: checksum,
            missing_shards: &[],
            entries: &entries,
            aliases: &[],
        },
    );
    replica::apply(state, &delta);
    delta
}

fn build_epochs(epochs: &[Vec<Op>]) -> (Vec<DeltaRecord>, Vec<Vec<(u128, u32)>>) {
    let mut corpus = BTreeMap::new();
    let mut state = EpochState::default();
    let mut deltas = Vec::new();
    let mut materialized = Vec::new();
    for (i, epoch_ops) in epochs.iter().enumerate() {
        deltas.push(advance(&mut corpus, &mut state, epoch_ops, i as u64 + 1));
        materialized.push(corpus.iter().map(|(&b, &w)| (b, w)).collect());
    }
    (deltas, materialized)
}

fn assert_equivalent(driver: &StreamDriver, entries: &[(u128, u32)]) {
    let batch = Analytics::from_entries(resolver(), entries);
    assert_eq!(
        driver.analytics().checksums(),
        batch.checksums(),
        "streaming state diverged from batch rebuild"
    );
}

proptest! {
    /// Clean delivery: equivalence at *every* epoch boundary, and the
    /// driver's maintained corpus checksum tracks the producer's.
    #[test]
    fn streaming_equals_batch_at_every_boundary(epochs in ops()) {
        let (deltas, materialized) = build_epochs(&epochs);
        let mut driver = StreamDriver::new(resolver());
        for (delta, entries) in deltas.iter().zip(&materialized) {
            prop_assert_eq!(driver.offer(delta), Offer::Applied(
                delta.removed.len() + delta.added.len()
            ));
            prop_assert_eq!(driver.content_checksum(), delta.content_checksum);
            assert_equivalent(&driver, entries);
        }
    }

    /// Re-delivering any prefix of history (duplicates, arbitrary
    /// stale reordering) never perturbs the state.
    #[test]
    fn duplicates_and_reordering_are_inert(epochs in ops(), dup in 0usize..1000) {
        let (deltas, materialized) = build_epochs(&epochs);
        let mut driver = StreamDriver::new(resolver());
        for (i, delta) in deltas.iter().enumerate() {
            driver.offer(delta);
            let stale = dup % (i + 1); // any already-applied delta
            prop_assert_eq!(driver.offer(&deltas[stale]), Offer::Duplicate);
            prop_assert_eq!(driver.content_checksum(), delta.content_checksum);
        }
        assert_equivalent(&driver, materialized.last().unwrap());
    }

    /// Dropping a delta either leaves a stream that provably
    /// converges back to the true corpus (every applied delta's
    /// checksum verified), or is *detected* as a gap — never a silent
    /// mis-application — and resync restores equivalence.
    #[test]
    fn gaps_are_detected_and_resync_recovers(epochs in ops(), drop in 0usize..1000) {
        let (deltas, materialized) = build_epochs(&epochs);
        if deltas.len() < 2 {
            continue;
        }
        let drop = drop % (deltas.len() - 1); // never the last one

        let mut driver = StreamDriver::new(resolver());
        for delta in &deltas[..drop] {
            driver.offer(delta);
        }
        let mut detected = false;
        for delta in &deltas[drop + 1..] {
            match driver.offer(delta) {
                Offer::Gap => { detected = true; break; }
                Offer::Applied(_) => {
                    // A delta only applies when its verified checksum
                    // matches — the stream re-converged despite the
                    // loss (e.g. the lost delta's sole change was
                    // overwritten by this one).
                    prop_assert_eq!(driver.content_checksum(), delta.content_checksum);
                }
                other => prop_assert!(false, "unexpected outcome {:?}", other),
            }
        }

        let last = materialized.last().unwrap();
        if detected {
            prop_assert!(driver.is_lagging());
            // Recovery: authoritative rebuild, then equivalence again.
            driver.resync(deltas.len() as u64, deltas.len() as u64, last);
            prop_assert!(!driver.is_lagging());
        } else {
            // Convergence without detection is only legitimate when the
            // final state is *actually* the true corpus.
            prop_assert_eq!(
                driver.content_checksum(),
                deltas.last().unwrap().content_checksum
            );
        }
        assert_equivalent(&driver, last);
    }
}
